"""RIPE benchmark tests (paper §6.6, Table 4)."""

import pytest

from repro.asan import ASanScheme
from repro.core import SGXBoundsScheme
from repro.mpx import MPXScheme
from repro.workloads import ripe


class TestAttacksWork:
    """Every attack must actually succeed when unprotected — otherwise the
    prevention numbers are meaningless (the paper only counts working
    attacks)."""

    @pytest.mark.parametrize("name", list(ripe.ATTACKS))
    def test_native_succeeds(self, name):
        assert ripe.run_attack(name, None) == ripe.SUCCEEDED


class TestSchemeOutcomes:
    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items() if family == "in-struct"])
    def test_in_struct_evades_everyone(self, name):
        """Object-granularity protection cannot see intra-object overflows."""
        for factory in (SGXBoundsScheme, ASanScheme, MPXScheme):
            assert ripe.run_attack(name, factory()) == ripe.SUCCEEDED

    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items()
        if family == "adjacent-direct"])
    def test_direct_adjacent_caught_by_all(self, name):
        for factory in (SGXBoundsScheme, ASanScheme, MPXScheme):
            assert ripe.run_attack(name, factory()) == ripe.PREVENTED

    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items()
        if family == "adjacent-laundered"])
    def test_laundered_pointers_blind_mpx_only(self, name):
        """Integer-laundered pointers strip MPX's bounds; SGXBounds' tag
        survives the cast (§3.2) and ASan's shadow doesn't care."""
        assert ripe.run_attack(name, MPXScheme()) == ripe.SUCCEEDED
        assert ripe.run_attack(name, SGXBoundsScheme()) == ripe.PREVENTED
        assert ripe.run_attack(name, ASanScheme()) == ripe.PREVENTED

    def test_boundless_mode_also_stops_hijacks(self):
        """Boundless memory redirects the overflow, so the function
        pointer is never corrupted: attack neither crashes nor succeeds."""
        outcome = ripe.run_attack("laundered_heap_funcptr",
                                  SGXBoundsScheme(boundless=True))
        assert outcome == ripe.FAILED


class TestTableTotals:
    def test_table4(self):
        table = ripe.ripe_table({
            "native": lambda: None,
            "sgxbounds": SGXBoundsScheme,
            "asan": ASanScheme,
            "mpx": MPXScheme,
        })
        assert ripe.prevented_count(table["native"]) == 0
        assert ripe.prevented_count(table["sgxbounds"]) == 8
        assert ripe.prevented_count(table["asan"]) == 8
        assert ripe.prevented_count(table["mpx"]) == 2

    def test_sixteen_attacks(self):
        assert len(ripe.ATTACKS) == 16
        families = [family for family, _ in ripe.ATTACKS.values()]
        assert families.count("in-struct") == 8
        assert families.count("adjacent-direct") == 2
        assert families.count("adjacent-laundered") == 6
