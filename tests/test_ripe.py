"""RIPE benchmark tests (paper §6.6, Table 4)."""

import pytest

from repro.asan import ASanScheme
from repro.core import SGXBoundsScheme
from repro.mpx import MPXScheme
from repro.workloads import ripe


class TestAttacksWork:
    """Every attack must actually succeed when unprotected — otherwise the
    prevention numbers are meaningless (the paper only counts working
    attacks)."""

    @pytest.mark.parametrize("name", list(ripe.ATTACKS))
    def test_native_succeeds(self, name):
        assert ripe.run_attack(name, None) == ripe.SUCCEEDED


class TestSchemeOutcomes:
    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items() if family == "in-struct"])
    def test_in_struct_evades_everyone(self, name):
        """Object-granularity protection cannot see intra-object overflows."""
        for factory in (SGXBoundsScheme, ASanScheme, MPXScheme):
            assert ripe.run_attack(name, factory()) == ripe.SUCCEEDED

    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items()
        if family == "adjacent-direct"])
    def test_direct_adjacent_caught_by_all(self, name):
        for factory in (SGXBoundsScheme, ASanScheme, MPXScheme):
            assert ripe.run_attack(name, factory()) == ripe.PREVENTED

    @pytest.mark.parametrize("name", [
        n for n, (family, _) in ripe.ATTACKS.items()
        if family == "adjacent-laundered"])
    def test_laundered_pointers_blind_mpx_only(self, name):
        """Integer-laundered pointers strip MPX's bounds; SGXBounds' tag
        survives the cast (§3.2) and ASan's shadow doesn't care."""
        assert ripe.run_attack(name, MPXScheme()) == ripe.SUCCEEDED
        assert ripe.run_attack(name, SGXBoundsScheme()) == ripe.PREVENTED
        assert ripe.run_attack(name, ASanScheme()) == ripe.PREVENTED

    def test_boundless_mode_also_stops_hijacks(self):
        """Boundless memory redirects the overflow, so the function
        pointer is never corrupted: attack neither crashes nor succeeds."""
        outcome = ripe.run_attack("laundered_heap_funcptr",
                                  SGXBoundsScheme(boundless=True))
        assert outcome == ripe.FAILED


#: The full Table-4 grid, verbatim: every attack id × every scheme.
#: Totals alone can hide a flipped pair (one false negative cancelling a
#: false positive); this pins each of the 64 cells individually.
_S, _P = ripe.SUCCEEDED, ripe.PREVENTED
TABLE4_GRID = {
    "instruct_stack_funcptr":   {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_stack_auth":      {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_heap_funcptr":    {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_heap_auth":       {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_data_funcptr":    {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_data_auth":       {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_bss_funcptr":     {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "instruct_bss_auth":        {"native": _S, "sgxbounds": _S, "asan": _S, "mpx": _S},
    "direct_stack_funcptr":     {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _P},
    "direct_stack_retaddr":     {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _P},
    "laundered_heap_funcptr":   {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
    "laundered_heap_auth":      {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
    "laundered_data_funcptr":   {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
    "laundered_data_auth":      {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
    "laundered_stack_funcptr":  {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
    "laundered_heap_memcpy":    {"native": _S, "sgxbounds": _P, "asan": _P, "mpx": _S},
}

_FACTORIES = {
    "native": lambda: None,
    "sgxbounds": SGXBoundsScheme,
    "asan": ASanScheme,
    "mpx": MPXScheme,
}


class TestTable4Grid:
    def test_grid_covers_every_attack(self):
        assert set(TABLE4_GRID) == set(ripe.ATTACKS)

    @pytest.mark.parametrize("scheme", list(_FACTORIES))
    def test_per_attack_outcomes_verbatim(self, scheme):
        """Each scheme's column must match the expected grid cell-for-cell
        — compare whole columns so a mismatch names the exact attack."""
        column = {name: ripe.run_attack(name, _FACTORIES[scheme]())
                  for name in ripe.ATTACKS}
        expected = {name: TABLE4_GRID[name][scheme]
                    for name in ripe.ATTACKS}
        assert column == expected

    def test_ripe_table_agrees_with_grid(self):
        """ripe_table (the Table-4 generator) must report exactly the
        grid, not merely matching totals."""
        table = ripe.ripe_table(_FACTORIES)
        for scheme, outcomes in table.items():
            assert outcomes == {name: TABLE4_GRID[name][scheme]
                                for name in ripe.ATTACKS}


class TestTableTotals:
    def test_table4(self):
        table = ripe.ripe_table({
            "native": lambda: None,
            "sgxbounds": SGXBoundsScheme,
            "asan": ASanScheme,
            "mpx": MPXScheme,
        })
        assert ripe.prevented_count(table["native"]) == 0
        assert ripe.prevented_count(table["sgxbounds"]) == 8
        assert ripe.prevented_count(table["asan"]) == 8
        assert ripe.prevented_count(table["mpx"]) == 2

    def test_sixteen_attacks(self):
        assert len(ripe.ATTACKS) == 16
        families = [family for family, _ in ripe.ATTACKS.values()]
        assert families.count("in-struct") == 8
        assert families.count("adjacent-direct") == 2
        assert families.count("adjacent-laundered") == 6
