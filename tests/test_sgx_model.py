"""Unit tests for the SGX cost model: caches, EPC, cycle accounting."""

import pytest

from repro.sgx import (
    Cache,
    CacheHierarchy,
    CostModel,
    EPC,
    Enclave,
    EnclaveConfig,
    LINE_SIZE,
    PerfCounters,
)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(1024, associativity=2)
        assert cache.access(5) is False
        assert cache.access(5) is True

    def test_lru_eviction_within_set(self):
        cache = Cache(2 * LINE_SIZE, associativity=2)   # one set, 2 ways
        assert cache.sets == 1
        cache.access(1)
        cache.access(2)
        cache.access(3)          # evicts 1 (LRU)
        assert cache.access(2) is True
        assert cache.access(1) is False

    def test_lru_refresh(self):
        cache = Cache(2 * LINE_SIZE, associativity=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)          # refresh 1
        cache.access(3)          # evicts 2, not 1
        assert cache.access(1) is True
        assert cache.access(2) is False

    def test_flush(self):
        cache = Cache(1024)
        cache.access(7)
        cache.flush()
        assert cache.access(7) is False


class TestHierarchy:
    def test_depths(self):
        h = CacheHierarchy(l1_bytes=LINE_SIZE, llc_bytes=64 * LINE_SIZE,
                           l1_assoc=1)
        c = PerfCounters()
        assert h.access(0, 8, c) == 2           # cold: memory
        assert h.access(0, 8, c) == 0           # L1 hit
        h.access(LINE_SIZE * 100, 8, c)         # evict L1 (same set)
        depth = h.access(0, 8, c)
        assert depth == 1                        # back from LLC

    def test_line_straddle_counts_both_lines(self):
        h = CacheHierarchy(4096, 65536)
        c = PerfCounters()
        h.access(LINE_SIZE - 4, 8, c)
        assert c.l1_accesses == 2


class TestEPC:
    def test_fault_then_resident(self):
        epc = EPC(4 * 4096)
        assert epc.touch(1) is True
        assert epc.touch(1) is False
        assert epc.faults == 1

    def test_eviction_at_capacity(self):
        epc = EPC(2 * 4096)
        epc.touch(1)
        epc.touch(2)
        epc.touch(3)                      # evicts 1
        assert epc.evictions == 1
        assert epc.touch(1) is True       # refault

    def test_lru_order(self):
        epc = EPC(2 * 4096)
        epc.touch(1)
        epc.touch(2)
        epc.touch(1)      # refresh
        epc.touch(3)      # evicts 2
        assert epc.touch(1) is False
        assert epc.touch(2) is True

    def test_sequential_faults_once_per_page(self):
        """Streaming touches each page once — the matrixmul pattern."""
        epc = EPC(8 * 4096)
        for page in range(100):
            epc.touch(page)
        assert epc.faults == 100
        assert epc.evictions == 100 - epc.capacity_pages


class TestEnclave:
    def test_traced_store_reaches_counters(self):
        enclave = Enclave()
        p = enclave.heap.malloc(64)
        enclave.space.write_u64(p, 1)
        assert enclave.counters.stores >= 1
        assert enclave.counters.l1_accesses >= 1

    def test_epc_faults_cost_cycles(self):
        small = Enclave(EnclaveConfig(epc_bytes=16 * 4096,
                                      llc_bytes=8 * LINE_SIZE,
                                      l1_bytes=2 * LINE_SIZE))
        big = Enclave(EnclaveConfig(epc_bytes=1 << 24,
                                    llc_bytes=8 * LINE_SIZE,
                                    l1_bytes=2 * LINE_SIZE))
        for enclave in (small, big):
            p = enclave.heap.mmap.alloc(1 << 20)
            for _ in range(3):   # re-walk to cause refaults in the small EPC
                for off in range(0, 1 << 20, 4096):
                    enclave.space.write_u32(p + off, off)
        assert small.counters.epc_faults > big.counters.epc_faults
        assert small.cycles() > big.cycles()

    def test_outside_sgx_has_no_epc(self):
        enclave = Enclave(EnclaveConfig().outside_sgx())
        assert enclave.epc is None
        p = enclave.heap.malloc(64)
        enclave.space.write_u64(p, 1)
        assert enclave.counters.epc_faults == 0

    def test_mee_cost_only_inside_enclave(self):
        cost = CostModel()
        counters = PerfCounters(llc_misses=10, l1_misses=10, l1_accesses=10,
                                loads=10)
        inside = cost.cycles_for(counters, enclave=True)
        outside = cost.cycles_for(counters, enclave=False)
        assert inside - outside == 10 * cost.mee_decrypt

    def test_guard_page_mapped(self):
        from repro.errors import GuardPageFault
        from repro.memory.layout import GUARD_PAGE_BASE
        enclave = Enclave()
        with pytest.raises(GuardPageFault):
            enclave.space.read_u8(GUARD_PAGE_BASE)

    def test_memory_report_keys(self):
        enclave = Enclave()
        report = enclave.memory_report()
        assert "peak_reserved_bytes" in report
        assert "epc_capacity_pages" in report

    def test_counters_snapshot_and_add(self):
        a = PerfCounters(instructions=5)
        b = PerfCounters(instructions=3, loads=1)
        a.add(b)
        assert a.instructions == 8
        assert a.snapshot()["loads"] == 1
        a.reset()
        assert a.instructions == 0
