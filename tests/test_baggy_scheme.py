"""Baggy Bounds extension tests (paper §2.2, implemented here)."""

import pytest

from repro.baggy import BaggyScheme
from repro.errors import BoundsViolation, SegmentationFault
from tests.util import run_c


class TestDetection:
    def test_far_overflow_raises_violation(self):
        """Arithmetic leaving the block by more than half a slot raises
        at the pointer-arithmetic site (Baggy checks arithmetic)."""
        src = """
        int main() {
            char *p = (char*)malloc(48);
            int i = 200;
            p[i] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation) as err:
            run_c(src, scheme=BaggyScheme())
        assert err.value.scheme == "baggy"

    def test_one_past_end_marked_and_faults_on_deref(self):
        """Index 64 of a 64-byte block: the pointer is OOB-marked (legal
        to hold, faults on dereference — Baggy's hardware-trap path)."""
        src = """
        int main() {
            char *p = (char*)malloc(48);
            int i = 64;
            p[i] = 1;
            return 0;
        }
        """
        with pytest.raises((BoundsViolation, SegmentationFault)):
            run_c(src, scheme=BaggyScheme())

    def test_end_pointer_loop_idiom_works(self):
        """`cursor < p + n` loops survive: the one-past-end pointer is
        marked but never dereferenced."""
        src = """
        int main() {
            int *p = (int*)malloc(8 * sizeof(int));
            for (int i = 0; i < 8; i++) p[i] = i;
            int s = 0;
            int *end = p + 8;
            for (int *c = p; c < end; c++) s += *c;
            return s;
        }
        """
        value, _ = run_c(src, scheme=BaggyScheme())
        assert value == sum(range(8))

    def test_padding_overflows_are_missed(self):
        """Baggy's documented weakness: allocation bounds, not object
        bounds — the power-of-two padding is accessible."""
        src = """
        int main() {
            char *p = (char*)malloc(48);
            int i = 60;          // past the object, inside the 64B block
            p[i] = 1;
            return p[i];
        }
        """
        value, _ = run_c(src, scheme=BaggyScheme())
        assert value == 1

    def test_exact_power_of_two_objects_fully_protected(self):
        src_ok = """
        int main() { char *p = (char*)malloc(64); p[63] = 1; return p[63]; }
        """
        value, _ = run_c(src_ok, scheme=BaggyScheme())
        assert value == 1
        src_bad = """
        int main() { char *p = (char*)malloc(64); int i = 80; p[i] = 1; return 0; }
        """
        with pytest.raises(BoundsViolation):
            run_c(src_bad, scheme=BaggyScheme())

    def test_underflow_detected(self):
        src = """
        int main() {
            char *p = (char*)malloc(64);
            int i = -1;
            return p[i];       // marked on arithmetic, faults on load
        }
        """
        with pytest.raises((BoundsViolation, SegmentationFault)):
            run_c(src, scheme=BaggyScheme())

    def test_libc_wrapper_checks(self):
        src = """
        int main() {
            char *p = (char*)malloc(48);
            memset(p, 1, 128);     // beyond the 64-byte block
            return 0;
        }
        """
        with pytest.raises(BoundsViolation, match="libc"):
            run_c(src, scheme=BaggyScheme())


class TestTransparency:
    def test_results_match_native(self):
        src = """
        struct Node { int v; struct Node *next; };
        int main() {
            struct Node *head = (struct Node*)0;
            for (int i = 0; i < 12; i++) {
                struct Node *n = (struct Node*)malloc(sizeof(struct Node));
                n->v = i; n->next = head; head = n;
            }
            int s = 0;
            while (head) { s += head->v; head = head->next; }
            return s;
        }
        """
        native, _ = run_c(src)
        protected, _ = run_c(src, scheme=BaggyScheme())
        assert protected == native

    def test_stack_and_globals_unchecked_but_functional(self):
        """This variant protects the heap (like the Low Fat prototype);
        stack/global accesses read table byte 0 and pass through."""
        src = """
        int g[8];
        int main() {
            int buf[8];
            for (int i = 0; i < 8; i++) { buf[i] = i; g[i] = i * 2; }
            int s = 0;
            for (int i = 0; i < 8; i++) s += buf[i] + g[i];
            return s;
        }
        """
        value, _ = run_c(src, scheme=BaggyScheme())
        assert value == sum(i + i * 2 for i in range(8))

    def test_free_clears_table(self):
        """After free, the table no longer claims the block, so stale
        pointers fall back to unchecked (matching Baggy's semantics)."""
        src = """
        int main() {
            char *p = (char*)malloc(32);
            free(p);
            char *q = (char*)malloc(32);   // buddy reuses the block
            q[0] = 5;
            return q[0];
        }
        """
        value, _ = run_c(src, scheme=BaggyScheme())
        assert value == 5


class TestOverheadCharacter:
    def test_padding_memory_overhead_reported(self):
        """Power-of-two rounding wastes memory (paper: ~12%)."""
        src = """
        int main() {
            for (int i = 0; i < 16; i++) {
                char *p = (char*)malloc(40);   // 64B blocks: 24B wasted
                p[0] = 1;
            }
            return 0;
        }
        """
        scheme = BaggyScheme()
        _, vm = run_c(src, scheme=scheme)
        report = scheme.memory_overhead_report(vm)
        assert report["padding_bytes"] == 16 * 24

    def test_perf_overhead_between_native_and_sgxbounds_neighborhood(self):
        """Baggy inserts table loads + mask math per access: measurable,
        same order of magnitude as the other software schemes."""
        from repro.harness.runner import run_workload, SCHEMES
        from repro.workloads import get
        SCHEMES.setdefault("baggy", BaggyScheme)
        native = run_workload(get("histogram"), "native", size="XS", threads=1)
        baggy = run_workload(get("histogram"), "baggy", size="XS", threads=1)
        assert baggy.ok and baggy.result == native.result
        assert 1.0 < baggy.cycles / native.cycles < 5.0
