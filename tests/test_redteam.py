"""Redteam subsystem tests: templates, triage, matrix, storm, leakage."""

import pytest

from repro.core import SGXBoundsScheme
from repro.core.boundless import LEAK_TALLY_CAP, BoundlessCache
from repro.redteam import matrix as matrix_mod
from repro.redteam import storm as storm_mod
from repro.redteam.templates import (
    ATTACK_CLASSES,
    compile_catalog,
    compile_twins,
)
from repro.redteam.triage import (
    CRASH,
    DETECTED,
    EXPLOITED,
    LABELS,
    NO_EFFECT,
    triage,
)
from repro.telemetry import Telemetry
from tests.util import run_c

CATALOG = compile_catalog()
TWINS = compile_twins()
BY_NAME = {spec.name: spec for spec in CATALOG}


class TestCatalog:
    def test_names_unique(self):
        names = [s.name for s in CATALOG + TWINS]
        assert len(names) == len(set(names))

    def test_classes_valid(self):
        for spec in CATALOG + TWINS:
            assert spec.attack_class in ATTACK_CLASSES

    def test_every_class_represented_and_twinned(self):
        attack_classes = {s.attack_class for s in CATALOG}
        twin_classes = {s.attack_class for s in TWINS}
        assert attack_classes == set(ATTACK_CLASSES)
        assert twin_classes == set(ATTACK_CLASSES)

    def test_kinds_consistent(self):
        for spec in CATALOG + TWINS:
            if spec.kind == "program":
                assert spec.source and not spec.requests
            else:
                assert spec.app and spec.requests and not spec.source


class TestProgramTriage:
    def test_native_in_struct_hijack(self):
        rec = triage(BY_NAME["instruct_stack_funcptr"], "native", "abort")
        assert rec.label == "control-flow-hijack"

    def test_in_struct_invisible_to_object_granularity(self):
        for scheme in ("sgxbounds", "asan", "mpx", "baggy"):
            rec = triage(BY_NAME["instruct_stack_funcptr"], scheme, "abort")
            assert rec.label in EXPLOITED, (scheme, rec.label)

    def test_sgxbounds_detects_direct_with_postmortem(self):
        rec = triage(BY_NAME["direct_stack_funcptr"], "sgxbounds", "abort")
        assert rec.label == DETECTED
        assert rec.evidence["violations"] >= 1
        assert rec.evidence["postmortem"]["trigger"] == "BoundsViolation"

    def test_mpx_blind_to_laundered_sgxbounds_not(self):
        spec = BY_NAME["laundered_heap_funcptr"]
        assert triage(spec, "mpx", "abort").label == "control-flow-hijack"
        assert triage(spec, "sgxbounds", "abort").label == DETECTED

    def test_baggy_oob_trap_counts_as_detection(self):
        rec = triage(BY_NAME["direct_heap_neighbour"], "baggy", "abort")
        assert rec.label == DETECTED
        assert rec.evidence.get("oob_trap") is True

    def test_baggy_blind_within_padding(self):
        rec = triage(BY_NAME["offby8_heap_pad"], "baggy", "abort")
        assert rec.label == "silent-corruption"

    def test_temporal_only_asan(self):
        spec = BY_NAME["uaf_read_recycled"]
        assert triage(spec, "asan", "abort").label == DETECTED
        for scheme in ("native", "sgxbounds", "mpx", "baggy"):
            assert triage(spec, scheme, "abort").label == "info-leak"

    def test_double_free_crashes_everywhere(self):
        for scheme in ("native", "sgxbounds", "asan"):
            rec = triage(BY_NAME["double_free"], scheme, "abort")
            assert rec.label == CRASH
            assert rec.evidence["exception"] == "DoubleFree"

    def test_asan_misses_redzone_jumping_underflow(self):
        rec = triage(BY_NAME["underflow_read_jump"], "asan", "abort")
        assert rec.label == "info-leak"

    def test_boundless_contains_and_measures(self):
        """Boundless turns the underflow info-leak into a contained,
        *measured* event: label detected, nonzero leak tally."""
        spec = BY_NAME["underflow_read_jump"]
        contained = triage(spec, "sgxbounds", "boundless")
        assert contained.label == DETECTED
        assert contained.evidence["leaked_bytes"] > 0
        aborted = triage(spec, "sgxbounds", "abort")
        assert aborted.evidence["leaked_bytes"] == 0


class TestInterfaceTriage:
    def test_heartbleed_native_leaks_marker(self):
        rec = triage(BY_NAME["iface_apache_heartbleed"], "native", "abort")
        assert rec.label == "info-leak"
        assert rec.evidence["leak_marker_seen"] is True

    def test_heartbleed_sgxbounds_abort_detected(self):
        rec = triage(BY_NAME["iface_apache_heartbleed"], "sgxbounds",
                     "abort")
        assert rec.label == DETECTED

    def test_heartbleed_boundless_serves_zeros_counts_leak(self):
        """Under boundless the response carries manufactured zeros, not
        the secret — and the overlay priced the crossing reads."""
        rec = triage(BY_NAME["iface_apache_heartbleed"], "sgxbounds",
                     "boundless")
        assert rec.label == DETECTED
        assert rec.evidence.get("leak_marker_seen") is False
        assert rec.evidence["leaked_bytes"] > 0

    def test_memcached_dos_crashes_native(self):
        rec = triage(BY_NAME["iface_memcached_auth_dos"], "native", "abort")
        assert rec.label == CRASH

    def test_twins_no_false_positives(self):
        for spec in TWINS:
            for scheme in ("native", "sgxbounds", "asan", "mpx", "baggy"):
                rec = triage(spec, scheme, "abort")
                assert rec.label == NO_EFFECT, (spec.name, scheme, rec.label)


class TestMatrix:
    @pytest.fixture(scope="class")
    def result(self):
        subset = tuple(s for s in CATALOG if s.kind == "program")
        twins = tuple(s for s in TWINS if s.kind == "program")
        return matrix_mod.run_matrix(catalog=subset, twins=twins,
                                     under_load=False)

    def test_grid_shape(self, result):
        data, _ = result
        for cls, row in data["grid"].items():
            assert set(row) == set(matrix_mod.MATRIX_SCHEMES)
            for cell in row.values():
                assert 0 <= cell["detected"] <= cell["total"]

    def test_breakdown_accounts_every_record(self, result):
        data, _ = result
        total = sum(sum(row.values())
                    for row in data["triage_breakdown"].values())
        assert total == len(data["records"])
        for row in data["triage_breakdown"].values():
            assert set(row) == set(LABELS)

    def test_deterministic(self, result):
        subset = tuple(s for s in CATALOG if s.kind == "program")
        twins = tuple(s for s in TWINS if s.kind == "program")
        again = matrix_mod.run_matrix(catalog=subset, twins=twins,
                                      under_load=False)
        assert again[0] == result[0]
        assert again[1] == result[1]

    def test_document_envelope(self, result):
        doc = matrix_mod.matrix_document(result[0])
        assert doc["name"] == "redteam_matrix"
        assert doc["schema_version"] == 1
        assert doc["data"]["grid"] == result[0]["grid"]


class TestStorm:
    def test_attack_payloads_per_app(self):
        payloads = storm_mod.attack_payloads("memcached", CATALOG)
        assert payloads and all(isinstance(p, bytes) for p in payloads)
        with pytest.raises(ValueError):
            storm_mod.availability_under_attack("sgxbounds", app="sqlite_kv",
                                                catalog=CATALOG)

    def test_campaign_deterministic_and_bounded(self):
        one = storm_mod.availability_under_attack("sgxbounds",
                                                  catalog=CATALOG)
        two = storm_mod.availability_under_attack("sgxbounds",
                                                  catalog=CATALOG)
        assert one == two
        assert 0.0 <= one["availability"] <= 1.0
        assert one["attacks_injected"] > 0

    def test_storm_attacks_do_not_change_default_storm(self):
        """A storm campaign without storm_attacks is byte-identical to
        the pre-redteam behaviour (config field defaults to empty)."""
        from repro.fleet.campaign import CampaignConfig
        config = CampaignConfig(storm=(5, 15, 1.0))
        assert config.storm_attacks == ()


class _LeakVM:
    """Minimal stand-in for the leak-accounting hooks."""

    def __init__(self, request_id=None, telemetry=None):
        if request_id is not None:
            self.request_id = request_id
        self.telemetry = telemetry


class TestLeakAccounting:
    def test_note_oblivious_read_totals_and_per_request(self):
        cache = BoundlessCache()
        cache.note_oblivious_read(_LeakVM(request_id=7), 10)
        cache.note_oblivious_read(_LeakVM(request_id=7), 5)
        cache.note_oblivious_read(_LeakVM(request_id=9), 1)
        assert cache.oblivious_reads == 3
        assert cache.leaked_bytes == 16
        assert cache.leaked_by_request == {7: 15, 9: 1}
        stats = cache.stats()
        assert stats["leaked_bytes"] == 16
        assert stats["requests_with_leaks"] == 2

    def test_tally_cap_bounds_memory(self):
        cache = BoundlessCache()
        for rid in range(LEAK_TALLY_CAP + 10):
            cache.note_oblivious_read(_LeakVM(request_id=rid), 1)
        assert len(cache.leaked_by_request) == LEAK_TALLY_CAP
        assert cache.leak_tally_dropped == 10
        assert cache.leaked_bytes == LEAK_TALLY_CAP + 10  # totals keep going

    def test_telemetry_counters_fire_when_attached(self):
        telemetry = Telemetry()
        cache = BoundlessCache()
        cache.note_oblivious_read(_LeakVM(telemetry=telemetry), 42)
        snapshot = telemetry.metrics_snapshot()
        assert snapshot["boundless.oblivious_reads"]["value"] == 1
        assert snapshot["boundless.leaked_bytes"]["value"] == 42

    def test_boundless_run_counts_reads_abort_counts_none(self):
        src = """
        int main() {
            char *p = (char*)malloc(16);
            int x = p[64] & 255;     // failure-oblivious zero read
            return x;
        }
        """
        scheme = SGXBoundsScheme(boundless=True)
        value, _ = run_c(src, scheme=scheme)
        assert value == 0
        assert scheme.overlay.oblivious_reads >= 1
        assert scheme.overlay.leaked_bytes >= 1

        strict = SGXBoundsScheme()
        from repro.errors import BoundsViolation
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=strict)
        assert strict.overlay.leaked_bytes == 0

    def test_in_bounds_run_counter_identical(self):
        """Zero-cost when off: a clean run leaves every leak counter and
        telemetry key untouched."""
        src = """
        int main() {
            char *p = (char*)malloc(16);
            for (int i = 0; i < 16; i++) p[i] = (char)i;
            return p[3];
        }
        """
        telemetry = Telemetry()
        scheme = SGXBoundsScheme(boundless=True)
        value, _ = run_c(src, scheme=scheme, telemetry=telemetry)
        assert value == 3
        assert scheme.overlay.oblivious_reads == 0
        assert scheme.overlay.leaked_bytes == 0
        snapshot = telemetry.metrics_snapshot()
        assert "boundless.oblivious_reads" not in snapshot
        assert "boundless.leaked_bytes" not in snapshot
