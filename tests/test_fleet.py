"""Fleet lifecycle tests: breakers, crash loops, watchdog, restart cost,
and campaign determinism."""

import json

import pytest

from repro.fleet import (
    CampaignConfig,
    CircuitBreaker,
    EnclaveWorker,
    Request,
    Balancer,
    SLOTracker,
    Supervisor,
    run_campaign,
)
from repro.fleet import balancer as bal_mod
from repro.fleet import supervisor as sup_mod
from repro.sgx import ColdStartModel


class _StubEnclave:
    def __init__(self, pages):
        self.pages = pages

    def cold_start_cycles(self, model):
        return model.restart_cycles(self.pages)


class _StubVM:
    def __init__(self, pages):
        self.enclave = _StubEnclave(pages)


class _StubWorker:
    """Just enough worker for supervisor/balancer unit tests."""

    def __init__(self, wid, pages=4):
        self.wid = wid
        self.vm = _StubVM(pages)
        self.submitted = []

    def submit(self, rid, payload):
        self.submitted.append((rid, payload))


class TestCircuitBreaker:
    def test_closed_to_open_after_threshold(self):
        b = CircuitBreaker(threshold=2, cooldown=10)
        assert b.allow(0)
        b.record_failure(0)
        assert b.state == bal_mod.CLOSED
        b.record_failure(1)
        assert b.state == bal_mod.OPEN
        assert b.opens == 1
        assert not b.allow(5)                   # cooling down

    def test_half_open_admits_single_probe(self):
        b = CircuitBreaker(threshold=1, cooldown=10)
        b.record_failure(0)                     # open until 10
        assert b.allow(10)                      # cooldown over -> half-open
        assert b.state == bal_mod.HALF_OPEN
        b.on_dispatch()                         # the one probe in flight
        assert not b.allow(11)                  # no second probe

    def test_probe_success_closes(self):
        b = CircuitBreaker(threshold=1, cooldown=10)
        b.record_failure(0)
        b.allow(10)
        b.on_dispatch()
        b.record_success()
        assert b.state == bal_mod.CLOSED
        assert b.allow(11)

    def test_probe_failure_reopens(self):
        b = CircuitBreaker(threshold=3, cooldown=10)
        b.record_failure(0)
        b.record_failure(0)
        b.record_failure(0)                     # open (threshold)
        b.allow(10)
        b.on_dispatch()
        b.record_failure(12)                    # probe failed: reopen now
        assert b.state == bal_mod.OPEN
        assert b.opens == 2
        assert not b.allow(15)
        assert b.allow(22)                      # 12 + cooldown

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(threshold=3, cooldown=10)
        b.record_failure(0)
        b.record_failure(1)
        b.record_success()
        b.record_failure(2)
        b.record_failure(3)
        assert b.state == bal_mod.CLOSED        # streak broken, never 3

    def test_repeated_probe_failures_accumulate_opens(self):
        """A flapping worker cycles open -> half-open -> open; every
        failed probe is one more open with a fresh full cooldown."""
        b = CircuitBreaker(threshold=1, cooldown=10)
        b.record_failure(0)                     # open #1 until 10
        for cycle in range(1, 4):
            probe_at = cycle * 10 + cycle       # past the latest cooldown
            assert b.allow(probe_at)
            assert b.state == bal_mod.HALF_OPEN
            b.on_dispatch()
            b.record_failure(probe_at)          # probe dies: reopen
            assert b.state == bal_mod.OPEN
            assert b.opens == cycle + 1
            assert not b.allow(probe_at + 9)    # full cooldown again
        assert b.opens == 4

    def test_close_after_probe_requires_full_streak_to_reopen(self):
        """A successful probe fully resets the breaker: the old failure
        streak never leaks into the next open decision."""
        b = CircuitBreaker(threshold=2, cooldown=10)
        b.record_failure(0)
        b.record_failure(1)                     # open
        b.allow(11)
        b.on_dispatch()
        b.record_success()                      # probe served: closed
        assert b.state == bal_mod.CLOSED
        b.record_failure(12)                    # one failure: still closed
        assert b.state == bal_mod.CLOSED
        b.record_failure(13)                    # full streak needed again
        assert b.state == bal_mod.OPEN


class TestSupervisorLifecycle:
    def _sup(self, **kw):
        kw.setdefault("cold_start", ColdStartModel())
        kw.setdefault("tick_cycles", 5_000)
        return Supervisor([0, 1], **kw)

    def test_starting_promotes_to_healthy(self):
        sup = self._sup(startup_ticks=1)
        assert sup.status(0) == sup_mod.STARTING
        assert not sup.dispatchable(0)
        assert sup.running(0)                   # VM executes while booting
        sup.tick(0)
        assert sup.status(0) == sup_mod.STARTING
        sup.tick(1)
        assert sup.status(0) == sup_mod.HEALTHY
        assert sup.dispatchable(0)

    def test_outcomes_degrade_and_restore(self):
        sup = self._sup(startup_ticks=0)
        sup.tick(0)
        sup.on_outcome(0, "error")
        assert sup.status(0) == sup_mod.DEGRADED
        assert sup.dispatchable(0)              # degraded still serves
        sup.on_outcome(0, "served")
        assert sup.status(0) == sup_mod.HEALTHY

    def test_restart_cost_lands_on_the_tick_clock(self):
        """ready_at reflects cold_start_cycles / tick_cycles: the crash's
        working set is paid down in simulated time, not instantly."""
        sup = self._sup(startup_ticks=0)
        sup.tick(0)
        worker = _StubWorker(0, pages=4)
        cost = sup.on_crash(worker, now=10, reason="BoundsViolation")
        # build 120k + attestation 60k + 4 pages * 30k = 300k cycles.
        assert cost == 300_000
        record = sup.records[0]
        assert record.status == sup_mod.RESTARTING
        assert record.ready_at == 10 + 60       # 300k / 5k ticks
        assert sup.summary()["restart_cycles"] == 300_000
        # Not dispatchable until the replacement has cold-started.
        assert sup.tick(50) == []
        assert not sup.dispatchable(0)
        assert sup.tick(70) == [0]              # reboot fires
        assert sup.status(0) == sup_mod.STARTING
        sup.tick(70)
        assert sup.status(0) == sup_mod.HEALTHY

    def test_scaled_rewarm_stretches_downtime(self):
        cheap = self._sup(startup_ticks=0)
        dear = self._sup(startup_ticks=0, rewarm_scale=8.0)
        cheap.on_crash(_StubWorker(0, pages=8), now=0, reason="X")
        dear.on_crash(_StubWorker(0, pages=8), now=0, reason="X")
        assert dear.records[0].ready_at > cheap.records[0].ready_at
        assert dear.total_restart_cycles > cheap.total_restart_cycles

    def test_bigger_working_set_costs_more(self):
        sup = self._sup(startup_ticks=0)
        small = sup.on_crash(_StubWorker(0, pages=2), now=0, reason="X")
        large = sup.on_crash(_StubWorker(1, pages=64), now=0, reason="X")
        assert large > small

    def test_crash_loop_marks_dead(self):
        sup = self._sup(startup_ticks=0, crash_loop_k=3,
                        crash_loop_window=60)
        worker = _StubWorker(0)
        assert sup.on_crash(worker, now=0, reason="X") is not None
        assert sup.on_crash(worker, now=5, reason="X") is not None
        assert sup.on_crash(worker, now=9, reason="X") is None
        assert sup.status(0) == sup_mod.DEAD
        assert sup.deaths == 1
        assert sup.alive_count() == 1
        # Dead workers never reboot.
        assert sup.tick(1_000) == []
        assert sup.status(0) == sup_mod.DEAD

    def test_spread_out_crashes_stay_alive(self):
        sup = self._sup(startup_ticks=0, crash_loop_k=3,
                        crash_loop_window=5)
        worker = _StubWorker(0)
        for now in (0, 10, 20, 30):
            assert sup.on_crash(worker, now=now, reason="X") is not None
        assert sup.deaths == 0

    def test_long_campaign_prunes_history_but_not_lifetime_totals(self):
        """Crash bookkeeping over many crash-loop windows: the pruned
        timestamp list stays O(k) forever while the lifetime counters
        keep the full story — a worker that crashes steadily but below
        the loop rate is never misdiagnosed as crash-looping."""
        sup = self._sup(startup_ticks=0, crash_loop_k=3,
                        crash_loop_window=50)
        worker = _StubWorker(0)
        crashes = 10                            # spans ~6 windows
        for i in range(crashes):
            assert sup.on_crash(worker, now=i * 30, reason="X") is not None
            sup.tick(i * 30 + 29)               # ticks prune too
        record = sup.records[0]
        assert sup.deaths == 0
        assert record.crashes == crashes        # lifetime total survives
        assert record.restarts == crashes
        assert len(record.crash_ticks) <= 2     # pruned to < k forever
        assert len(record.crash_reasons) == crashes

    def test_tick_pruning_forgets_stale_crashes(self):
        sup = self._sup(startup_ticks=0, crash_loop_k=3,
                        crash_loop_window=50)
        worker = _StubWorker(0)
        sup.on_crash(worker, now=0, reason="X")
        sup.on_crash(worker, now=5, reason="X")
        sup.tick(200)                           # both far outside the window
        record = sup.records[0]
        assert record.crash_ticks == []
        assert record.crashes == 2

    def test_burst_after_quiet_history_still_dies(self):
        """Pruning must not mask a real crash loop: a k-burst inside one
        window kills the worker no matter how long the quiet spread-out
        history before it."""
        sup = self._sup(startup_ticks=0, crash_loop_k=3,
                        crash_loop_window=50)
        worker = _StubWorker(0)
        for i in range(5):                      # quiet era: 1 per window
            assert sup.on_crash(worker, now=i * 100, reason="X") is not None
        assert sup.on_crash(worker, now=600, reason="X") is not None
        assert sup.on_crash(worker, now=610, reason="X") is not None
        assert sup.on_crash(worker, now=620, reason="X") is None
        assert sup.status(0) == sup_mod.DEAD
        assert sup.deaths == 1
        assert sup.records[0].crashes == 8


class TestBalancer:
    def _fleet(self, n=2, **kw):
        sup = Supervisor(range(n), cold_start=ColdStartModel(),
                         startup_ticks=0)
        sup.tick(0)                             # everyone healthy
        workers = [_StubWorker(wid) for wid in range(n)]
        return workers, sup, Balancer(workers, sup, **kw)

    def test_round_robin_alternates(self):
        workers, _, bal = self._fleet(queue_cap=1)
        for rid in range(4):
            bal.offer(Request(rid, b"x", arrival=0))
        bal.dispatch(0)
        assert [r for r, _ in workers[0].submitted] == [0]
        assert [r for r, _ in workers[1].submitted] == [1]

    def test_least_outstanding_prefers_idle(self):
        workers, _, bal = self._fleet(policy="least-outstanding",
                                      queue_cap=2)
        bal.offer(Request(0, b"x", arrival=0))
        bal.dispatch(0)
        assert workers[0].submitted             # lowest wid on a tie
        bal.offer(Request(1, b"x", arrival=0))
        bal.dispatch(0)
        assert workers[1].submitted             # 0 is busy, 1 idle

    def test_crash_retries_then_fails(self):
        workers, sup, bal = self._fleet(max_attempts=2)
        bal.offer(Request(7, b"x", arrival=0))
        bal.dispatch(0)
        sup.on_crash(workers[0], 1, "X")
        assert bal.on_worker_crash(0, 7, 1) == []   # retried, not failed
        assert bal.pending[0].attempts == 1
        bal.dispatch(2)                         # worker 0 down -> worker 1
        assert workers[1].submitted == [(7, b"x")]
        sup.on_crash(workers[1], 3, "X")
        terminal = bal.on_worker_crash(1, 7, 3)
        assert [r.status for r in terminal] == ["failed"]
        assert terminal[0].detail == "crash; retries exhausted"

    def test_hedged_requeue_preserves_order(self):
        workers, sup, bal = self._fleet(n=1, queue_cap=3,
                                        hedge_stranded=True)
        for rid in range(3):
            bal.offer(Request(rid, b"x", arrival=0))
        bal.dispatch(0)                         # rid 0 in flight, 1-2 queued
        sup.on_crash(workers[0], 1, "X")
        bal.on_worker_crash(0, 0, 1)
        # Queued requests keep their relative order at the front; the
        # retried in-flight request (which consumed an attempt) follows.
        assert [r.rid for r in bal.pending] == [1, 2, 0]

    def test_deadline_expires_only_waiting_requests(self):
        workers, _, bal = self._fleet(n=1, queue_cap=2)
        old = Request(0, b"x", arrival=0)
        young = Request(1, b"x", arrival=50)
        bal.offer(old)
        bal.offer(young)
        bal.dispatch(55)                        # old in flight, young queued
        assert bal.expire(60, deadline_ticks=60) == []
        expired = bal.expire(110, deadline_ticks=60)
        assert expired == [young]
        assert young.detail == "deadline"
        # old is in flight: the worker is serving it, so it never expires.
        assert old.status is None
        assert bal.inflight[0] is old

    def test_open_breaker_blocks_dispatch(self):
        workers, _, bal = self._fleet(n=2, breaker_threshold=1,
                                      breaker_cooldown=100)
        bal.breakers[0].record_failure(0)       # worker 0 tripped
        for rid in range(2):
            bal.offer(Request(rid, b"x", arrival=0))
        bal.dispatch(1)
        assert not workers[0].submitted
        assert [r for r, _ in workers[1].submitted] == [0]


class TestSLOTracker:
    def _done(self, rid, status, arrival, completed):
        req = Request(rid, b"", arrival)
        req.status = status
        req.completed_at = completed
        return req

    def test_summary_accounting(self):
        slo = SLOTracker(tick_cycles=5_000)
        slo.on_submitted(4)
        slo.on_terminal(self._done(0, "served", 0, 0))
        slo.on_terminal(self._done(1, "served", 0, 9))
        slo.on_terminal(self._done(2, "error", 0, 1))
        slo.on_terminal(self._done(3, "failed", 0, 2))
        summary = slo.summary()
        assert summary["submitted"] == 4
        assert summary["served"] == 2
        assert summary["error_replies"] == 1
        assert summary["failed"] == 1
        assert summary["availability"] == 0.5
        # 1 tick -> 5k cycles, 10 ticks -> 50k; p99 covers the slow one.
        assert summary["latency_p50_cycles"] >= 5_000
        assert summary["latency_p99_cycles"] >= 50_000

    def test_no_served_requests_has_no_percentiles(self):
        slo = SLOTracker(tick_cycles=5_000)
        slo.on_submitted(1)
        slo.on_terminal(self._done(0, "failed", 0, 5))
        summary = slo.summary()
        assert summary["availability"] == 0.0
        assert summary["latency_p99_cycles"] is None


class TestWorkerServes:
    def test_blocking_worker_serves_one_request(self):
        from repro.harness.chaos import PROFILES
        from repro.harness.experiments import APP_CONFIG
        from repro.minic import compile_source

        profile = PROFILES["memcached"]
        mod = profile.module
        module = compile_source(mod.SOURCE, "memcached")
        worker = EnclaveWorker(0, module, "sgxbounds",
                               policy="drop-request", config=APP_CONFIG)
        payload = mod.workload(mod.SIZES["XS"])[0]
        worker.submit(42, payload)
        outcomes = []
        for _ in range(200):
            outcomes.extend(worker.run_tick(5_000).outcomes)
            if outcomes:
                break
        assert outcomes == [(42, "served")]
        assert worker.outstanding == 0
        assert worker.served == 1


class TestCampaigns:
    def test_seeded_campaigns_are_byte_identical(self):
        config = CampaignConfig(policy="abort", workers=2, fault_rate=0.2,
                                seed=77, size="XS")
        a = json.dumps(run_campaign(config).as_dict(), sort_keys=True)
        b = json.dumps(run_campaign(config).as_dict(), sort_keys=True)
        assert a == b

    def test_different_seeds_differ(self):
        base = CampaignConfig(policy="abort", workers=2, fault_rate=0.2,
                              seed=77, size="XS")
        other = CampaignConfig(policy="abort", workers=2, fault_rate=0.2,
                               seed=78, size="XS")
        a = json.dumps(run_campaign(base).as_dict(), sort_keys=True)
        b = json.dumps(run_campaign(other).as_dict(), sort_keys=True)
        assert a != b

    def test_watchdog_kills_hung_worker(self):
        config = CampaignConfig(policy="drop-request", workers=2,
                                fault_rate=0.0, seed=5, size="XS",
                                watchdog_budget=20_000,
                                hang=(3, 0, 1_000_000))
        result = run_campaign(config)
        assert result.watchdog_kills >= 1
        reasons = result.supervisor["per_worker"][0]["crash_reasons"]
        assert "WatchdogTimeout" in reasons
        # The fleet route[s] around the hang: traffic still gets served.
        assert result.slo["served"] > 0

    def test_abort_pays_restarts_drop_request_does_not(self):
        kw = dict(workers=2, fault_rate=0.2, seed=1234, size="XS")
        abort = run_campaign(CampaignConfig(policy="abort", **kw))
        drop = run_campaign(CampaignConfig(policy="drop-request", **kw))
        assert abort.crashes > 0
        assert abort.supervisor["restart_cycles"] > 0
        assert drop.crashes == 0
        assert drop.supervisor["restart_cycles"] == 0
        assert drop.slo["availability"] > abort.slo["availability"]

    def test_restart_cost_scales_with_rewarm(self):
        kw = dict(policy="abort", workers=2, fault_rate=0.2, seed=1234,
                  size="XS")
        cheap = run_campaign(CampaignConfig(rewarm_scale=1.0, **kw))
        dear = run_campaign(CampaignConfig(rewarm_scale=8.0, **kw))
        assert dear.supervisor["restart_cycles"] \
            > cheap.supervisor["restart_cycles"]
        assert dear.slo["availability"] < cheap.slo["availability"]

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet app"):
            run_campaign(CampaignConfig(app="postgres"))
