"""Fault-injection engine, violation policies, and recovery tests."""

import pytest

from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation, RequestAborted
from repro.faults import FaultInjector, LengthField, RequestFuzzer, derive
from repro.harness.chaos import chaos_availability, run_chaos_server
from repro.harness.report import render_violation
from repro.sgx.epc import EPC
from repro.vm import VM
from repro.vm import policy as violation_policy
from repro.vm.scheme import SchemeRuntime
from repro.workloads.netsim import ERROR_MARKER, NetworkSim
from tests.util import run_c


class TestPolicyModule:
    def test_validate_accepts_all_known(self):
        for p in violation_policy.ALL_POLICIES:
            assert violation_policy.validate(p) == p

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown violation policy"):
            violation_policy.validate("panic")

    def test_scheme_constructor_validates(self):
        with pytest.raises(ValueError):
            SchemeRuntime(policy="nope")


class TestHandleViolation:
    def _err(self):
        return BoundsViolation("test", 0x1000, 0x800, 0xC00, 4,
                               access="write")

    def test_abort_raises_with_context(self):
        scheme = SchemeRuntime(policy="abort")
        with pytest.raises(BoundsViolation) as info:
            scheme.handle_violation(None, self._err())
        assert info.value.policy == "abort"
        assert info.value.outcome == "aborted"
        assert scheme.violations == 1
        assert scheme.violation_log[0]["address"] == 0x1000

    def test_log_and_continue_records_and_returns(self):
        scheme = SchemeRuntime(policy="log-and-continue")
        scheme.handle_violation(None, self._err())
        scheme.handle_violation(None, self._err())
        assert scheme.violations == 2
        assert [v["outcome"] for v in scheme.violation_log] == ["logged"] * 2

    def test_drop_request_wraps_in_request_aborted(self):
        scheme = SchemeRuntime(policy="drop-request")
        with pytest.raises(RequestAborted) as info:
            scheme.handle_violation(None, self._err())
        assert isinstance(info.value.violation, BoundsViolation)
        assert info.value.violation.outcome == "request-dropped"

    def test_violation_log_is_bounded(self):
        from repro.vm.scheme import VIOLATION_LOG_CAP
        scheme = SchemeRuntime(policy="log-and-continue")
        for _ in range(VIOLATION_LOG_CAP + 50):
            scheme.handle_violation(None, self._err())
        assert len(scheme.violation_log) == VIOLATION_LOG_CAP
        assert scheme.violations == VIOLATION_LOG_CAP + 50

    def test_drop_request_without_checkpoint_degrades_to_abort(self):
        """A violation outside request handling (no net_recv checkpoint)
        must still fail-stop, not hang or get swallowed."""
        src = """
        int main() {
            char *p = (char*)malloc(8);
            p[64] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=SGXBoundsScheme(policy="drop-request"))

    def test_render_violation_mentions_key_fields(self):
        scheme = SchemeRuntime(policy="log-and-continue")
        scheme.handle_violation(None, self._err())
        text = render_violation(scheme.violation_log[0])
        assert "0x00001000" in text
        assert "log-and-continue" in text
        assert "write" in text


class TestRequestFuzzer:
    REQS = [bytes((1, 4)) + b"\x08\x00" + b"abcdefgh" for _ in range(40)]

    def test_deterministic_per_seed(self):
        a = RequestFuzzer(7, 0.5, weights={"bit-flip": 1.0}).apply(self.REQS)
        b = RequestFuzzer(7, 0.5, weights={"bit-flip": 1.0}).apply(self.REQS)
        c = RequestFuzzer(8, 0.5, weights={"bit-flip": 1.0}).apply(self.REQS)
        assert a == b
        assert a != c

    def test_rate_zero_is_identity(self):
        fuzzer = RequestFuzzer(7, 0.0, weights={"bit-flip": 1.0})
        assert fuzzer.apply(self.REQS) == self.REQS
        assert fuzzer.stats()["injected_total"] == 0

    def test_rate_one_corrupts_everything(self):
        fuzzer = RequestFuzzer(7, 1.0, weights={"bit-flip": 1.0})
        out = fuzzer.apply(self.REQS)
        assert all(x != y for x, y in zip(out, self.REQS))
        assert fuzzer.stats()["injected_total"] == len(self.REQS)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz strategy"):
            RequestFuzzer(7, 0.5, weights={"explode": 1.0})

    def test_length_field_patch(self):
        field = LengthField(offset=2, width=2)
        patched = field.patch(self.REQS[0], 0x1234)
        assert patched[2:4] == (0x1234).to_bytes(2, "little")
        assert patched[:2] == self.REQS[0][:2]
        assert patched[4:] == self.REQS[0][4:]

    def test_negative_length_needs_signed_field(self):
        field = LengthField(offset=0, width=4, signed=True)
        fuzzer = RequestFuzzer(7, 1.0, length_field=field,
                               weights={"negative-length": 1.0})
        out = fuzzer.apply([b"\x10\x00\x00\x00" + b"x" * 16])
        value = int.from_bytes(out[0][:4], "little", signed=True)
        assert value < 0

    def test_oob_probe_uses_attack_factory(self):
        fuzzer = RequestFuzzer(7, 1.0, attacks=(lambda: b"ATTACK",),
                               weights={"oob-probe": 1.0})
        assert fuzzer.apply(self.REQS)[0] == b"ATTACK"

    def test_derive_is_stable_and_salted(self):
        assert derive(1, "a") == derive(1, "a")
        assert derive(1, "a") != derive(1, "b")
        assert derive(1, "a") != derive(2, "a")


class TestCrossSchemeDeterminism:
    """The fuzzer mutates requests *before* the scheme runtime sees them,
    so the mutation stream must be a pure function of (seed, workload) —
    identical bytes no matter which scheme runs afterwards, and immune to
    whatever a scheme's own execution does to global RNG state."""

    REQS = [bytes((i & 0xFF, 4)) + b"\x08\x00" + b"abcdefgh"
            for i in range(40)]

    def _stream(self):
        from repro.workloads.apps.memcached import cve_2011_4971_request
        fuzzer = RequestFuzzer(derive(99, "xscheme"), 0.5,
                               LengthField(offset=2, width=2),
                               attacks=(cve_2011_4971_request,),
                               weights={"bit-flip": 0.4,
                                        "inflate-length": 0.3,
                                        "oob-probe": 0.3})
        return fuzzer.apply(self.REQS)

    def test_streams_identical_under_every_scheme_runtime(self):
        from repro.harness.runner import SCHEMES
        src = """
        int main() {
            char *p = (char*)malloc(32);
            for (int i = 0; i < 32; i++) p[i] = (char)i;
            return p[7];
        }
        """
        reference = self._stream()
        for name, factory in SCHEMES.items():
            # Execute a full instrumented run first: if a scheme leaked
            # entropy into shared RNG state, the next stream would drift.
            value, _ = run_c(src, scheme=factory() if name != "native"
                             else None)
            assert value == 7
            assert self._stream() == reference, name

    def test_chaos_fuzzer_stats_identical_across_schemes(self):
        """End to end: the same seeded chaos campaign injects the exact
        same fault mix whichever scheme serves it (the scheme changes the
        *outcome*, never the *input stream*)."""
        from repro.harness.runner import SCHEMES
        stats = {name: run_chaos_server(
                     "memcached", scheme=name, policy="drop-request",
                     fault_rate=0.2, size="XS", seed=1234)
                 .resilience["fuzzer"]
                 for name in SCHEMES}
        reference = stats["native"]
        assert reference["injected_total"] > 0
        for name, mine in stats.items():
            assert mine == reference, name


class TestFaultInjector:
    def test_tag_flip_changes_only_tag_bits(self):
        inj = FaultInjector(3, tag_flip_rate=1.0)
        ptr = (0x00000040 << 32) | 0x00000010
        out = inj.corrupt_pointer(None, ptr)
        assert out != ptr
        assert out & 0xFFFFFFFF == 0x10      # address half untouched
        assert inj.tag_flips == 1

    def test_untagged_pointer_never_flipped(self):
        inj = FaultInjector(3, tag_flip_rate=1.0)
        assert inj.corrupt_pointer(None, 0x1234) == 0x1234

    def test_epc_flush_spike(self):
        epc = EPC(16 * 4096)
        for page in range(8):
            epc.touch(page)
        assert epc.resident_pages == 8
        flushed = epc.flush()
        assert flushed == 8
        assert epc.resident_pages == 0
        assert epc.evictions == 8
        # Re-touching refaults.
        before = epc.faults
        epc.touch(0)
        assert epc.faults == before + 1


class TestNetworkSimHardening:
    def test_default_behaviour_unchanged(self):
        net = NetworkSim()
        conn = net.connect(b"one", b"two")
        assert net.recv(conn, 64) == b"one"
        net.send(conn, b"resp")
        assert net.sent(conn) == [b"resp"]
        assert net.pending(conn) == 1

    def test_retry_requeues_with_backoff(self):
        net = NetworkSim(retry_limit=2, backoff_cycles=100, seed=5)
        conn = net.connect(b"bad")
        raw = net.recv(conn, 64)
        assert net.fail_request(conn, raw) is True     # retry 1
        assert net.pending(conn) == 1
        assert net.recv(conn, 64) == b"bad"
        assert net.fail_request(conn, raw) is True     # retry 2
        assert net.fail_request(conn, raw) is False    # exhausted
        stats = net.stats()
        assert stats["retries"] == 2
        assert stats["failed"] == 1
        assert stats["errors"] == 1
        assert stats["backoff_cycles"] >= 300          # 100 + 200 + jitter

    def test_error_marker_not_counted_as_response(self):
        net = NetworkSim()
        conn = net.connect(b"bad")
        raw = net.recv(conn, 64)
        assert net.fail_request(conn, raw) is False
        assert net.sent(conn) == [ERROR_MARKER]
        stats = net.stats()
        assert stats["responses"] == 0
        assert stats["availability"] == 0.0

    def test_availability_accounting(self):
        net = NetworkSim()
        conn = net.connect(b"a", b"b", b"c", b"d")
        for _ in range(3):
            net.recv(conn, 64)
            net.send(conn, b"ok")
        assert net.stats()["availability"] == 0.75
        assert net.unserved() == 1

    def test_identical_payloads_get_separate_retry_budgets(self):
        """Two identical requests on one connection must not share (and
        so undercount) a retry budget: attempts are keyed per message."""
        net = NetworkSim(retry_limit=1)
        conn = net.connect(b"same", b"same")
        first = net.recv(conn, 64)
        assert net.fail_request(conn, first) is True   # first's retry 1
        assert net.recv(conn, 64) == b"same"           # second message
        # A fresh message gets its own budget, even with an equal payload.
        assert net.fail_request(conn, b"same") is True
        assert net.recv(conn, 64) == b"same"           # first retried
        assert net.fail_request(conn, b"same") is False  # first exhausted
        assert net.stats()["retries"] == 2
        assert net.stats()["failed"] == 1

    def test_attempts_cleaned_up_after_delivery_moves_on(self):
        """Once a later message is delivered and the earlier one is no
        longer queued, its retry-budget entry is reclaimed."""
        net = NetworkSim(retry_limit=3)
        conn = net.connect(b"first", b"second")
        raw = net.recv(conn, 64)
        net.fail_request(conn, raw)                    # first requeued
        assert len(net._attempts) == 1
        net.recv(conn, 64)                             # second delivered;
        assert len(net._attempts) == 1                 # first still queued
        net.recv(conn, 64)                             # first redelivered
        net.recv(conn, 64) is None
        # Connection has moved past "first": its budget entry is garbage.
        net.push(conn, b"third")
        net.recv(conn, 64)
        assert net._attempts == {}

    def test_partial_read_keeps_message_identity(self):
        net = NetworkSim()
        conn = net.connect(b"abcdefgh", b"tail")
        assert net.recv(conn, 3) == b"abc"
        # Mid-read: the split tail is the same message, not a new request.
        assert net.pending(conn) == 2
        assert net.unserved() == 1
        assert net.partially_delivered() == 1
        assert net.stats()["delivered"] == 0
        assert net.recv(conn, 3) == b"def"
        assert net.recv(conn, 64) == b"gh"
        assert net.stats()["delivered"] == 1
        assert net.partially_delivered() == 0
        assert net.recv(conn, 64) == b"tail"
        assert net.stats()["delivered"] == 2

    def test_stats_separate_error_replies_from_errors(self):
        """A served response after retries is not an error, even though
        an ERROR_MARKER would be; the two streams are counted apart."""
        net = NetworkSim(retry_limit=0)
        conn = net.connect(b"bad")
        raw = net.recv(conn, 64)
        net.fail_request(conn, raw)
        stats = net.stats()
        assert stats["errors"] == 1
        assert stats["error_replies"] == 1
        assert stats["responses"] == 0
        # A normal reply moves responses, not error_replies.
        net.push(conn, b"good")
        net.recv(conn, 64)
        net.send(conn, b"ok")
        stats = net.stats()
        assert stats["responses"] == 1
        assert stats["error_replies"] == 1

    def test_per_conn_stats_breakdown(self):
        net = NetworkSim()
        healthy = net.connect(b"a", b"b")
        broken = net.connect(b"bad")
        for _ in range(2):
            net.recv(healthy, 64)
            net.send(healthy, b"ok")
        raw = net.recv(broken, 64)
        net.fail_request(broken, raw)
        stats = net.stats(per_conn=True)
        assert stats["responses"] == 2                 # aggregate intact
        per = stats["per_conn"]
        assert per[healthy]["responses"] == 2
        assert per[healthy]["errors"] == 0
        assert per[broken]["responses"] == 0
        assert per[broken]["errors"] == 1
        assert "per_conn" not in net.stats()           # opt-in only


class TestChaosRuns:
    def test_chaos_report_is_seed_deterministic(self):
        _, a = chaos_availability(apps=("memcached",), size="XS", seed=42)
        _, b = chaos_availability(apps=("memcached",), size="XS", seed=42)
        assert a == b

    def test_availability_ordering_memcached(self):
        records = {}
        for policy in ("abort", "drop-request", "boundless"):
            r = run_chaos_server("memcached", policy=policy, fault_rate=0.2,
                                 size="XS", seed=1234)
            records[policy] = r.resilience["net"]["availability"]
        assert records["drop-request"] > records["abort"]
        assert records["boundless"] > records["abort"]

    def test_drop_request_recovery_end_to_end(self):
        r = run_chaos_server("memcached", policy="drop-request",
                             fault_rate=0.2, size="XS", seed=1234)
        assert r.ok
        assert r.resilience["dropped_requests"] > 0
        assert r.resilience["recovered_requests"] > 0
        net = r.resilience["net"]
        assert net["availability"] > 0.5
        assert r.resilience["fuzzer"]["injected_total"] > 0

    def test_zero_fault_rate_full_availability(self):
        for policy in ("abort", "drop-request"):
            r = run_chaos_server("memcached", policy=policy, fault_rate=0.0,
                                 size="XS", seed=1234)
            assert r.ok
            assert r.resilience["net"]["availability"] == 1.0
            assert r.resilience["dropped_requests"] == 0

    def test_epc_spikes_fire_and_cost_cycles(self):
        calm = run_chaos_server("memcached", policy="drop-request",
                                fault_rate=0.0, size="XS", seed=1234,
                                epc_spike_rate=0.0)
        spiky = run_chaos_server("memcached", policy="drop-request",
                                 fault_rate=0.0, size="XS", seed=1234,
                                 epc_spike_rate=1.0)
        assert spiky.resilience["faults"]["epc_spikes"] > 0
        assert spiky.cycles > calm.cycles
