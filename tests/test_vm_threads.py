"""Multithreading tests: spawn/join, locks, determinism, MPX races (§4.1)."""

import pytest

from repro.errors import VMError
from repro.mpx import MPXScheme
from tests.util import run_c


class TestSpawnJoin:
    def test_parallel_sum(self):
        src = """
        int results[4];
        int partial[1];
        int worker(int idx) {
            int s = 0;
            for (int i = idx * 100; i < (idx + 1) * 100; i++) s += i;
            results[idx] = s;
            return 0;
        }
        int main() {
            int tids[4];
            for (int t = 0; t < 4; t++) tids[t] = spawn(worker, t);
            for (int t = 0; t < 4; t++) join(tids[t]);
            int total = 0;
            for (int t = 0; t < 4; t++) total += results[t];
            return total;
        }
        """
        value, _ = run_c(src)
        assert value == sum(range(400))

    def test_join_returns_thread_result(self):
        src = """
        int worker(int x) { return x * x; }
        int main() { int t = spawn(worker, 9); return join(t); }
        """
        value, _ = run_c(src)
        assert value == 81

    def test_threads_interleave(self):
        """With a small quantum both threads make progress concurrently."""
        src = """
        int log[64];
        int pos;
        int worker(int tag) {
            for (int i = 0; i < 8; i++) { log[pos] = tag; pos = pos + 1; }
            return 0;
        }
        int main() {
            int t = spawn(worker, 2);
            for (int i = 0; i < 8; i++) { log[pos] = 1; pos = pos + 1; }
            join(t);
            // count switches between tags
            int switches = 0;
            for (int i = 1; i < pos; i++)
                if (log[i] != log[i-1]) switches++;
            return switches;
        }
        """
        value, _ = run_c(src, quantum=10)
        assert value >= 1

    def test_deterministic_schedule(self):
        src = """
        int counter;
        int worker(int n) {
            for (int i = 0; i < n; i++) counter = counter + 1;
            return counter;
        }
        int main() {
            int a = spawn(worker, 50);
            int b = spawn(worker, 50);
            return join(a) * 1000 + join(b);
        }
        """
        first, _ = run_c(src, quantum=7)
        second, _ = run_c(src, quantum=7)
        assert first == second    # same quantum -> same interleaving


class TestLocks:
    def test_mutex_protects_counter(self):
        src = """
        int lock[1];
        int counter;
        int worker(int n) {
            for (int i = 0; i < n; i++) {
                mutex_lock(lock);
                counter = counter + 1;
                mutex_unlock(lock);
            }
            return 0;
        }
        int main() {
            int a = spawn(worker, 30);
            int b = spawn(worker, 30);
            join(a); join(b);
            return counter;
        }
        """
        value, _ = run_c(src, quantum=3)
        assert value == 60

    def test_deadlock_detected(self):
        src = """
        int lock[1];
        int main() {
            mutex_lock(lock);
            mutex_lock(lock);   // self-deadlock
            return 0;
        }
        """
        with pytest.raises(VMError, match="deadlock"):
            run_c(src)

    def test_atomic_builtin_semantics(self):
        """Unlocked increments under coarse quanta lose updates; the test
        documents that data races are actually expressible."""
        src = """
        int counter;
        int worker(int n) {
            for (int i = 0; i < n; i++) counter = counter + 1;
            return 0;
        }
        int main() {
            int a = spawn(worker, 40);
            int b = spawn(worker, 40);
            join(a); join(b);
            return counter;
        }
        """
        value, _ = run_c(src, quantum=1)
        assert value <= 80    # may lose updates — that's the point


class TestMPXMultithreadHazard:
    """Paper §4.1: MPX's pointer/bounds updates are not atomic; a thread
    switch between the pointer store and its bndstx publishes stale bounds
    (false positives/negatives).  SGXBounds is immune: pointer and bound
    share one 64-bit word."""

    RACY = """
    int small[2];
    int big[64];
    int *shared;
    int flip(int rounds) {
        for (int i = 0; i < rounds; i++) {
            shared = small;
            shared = big;
        }
        return 0;
    }
    int reader(int rounds) {
        int sink = 0;
        for (int i = 0; i < rounds; i++) {
            int *p = shared;
            sink += p[1];     // always within both objects
        }
        return sink;
    }
    int main() {
        shared = big;
        int w = spawn(flip, 60);
        int r = spawn(reader, 60);
        join(w); join(r);
        return 0;
    }
    """

    def test_mpx_race_can_misfire(self):
        """Under some interleaving the reader sees pointer/bounds skew.
        We assert the run either completes or raises an MPX violation —
        and that across a quantum sweep at least one misfire occurs."""
        from repro.errors import BoundsViolation
        misfired = 0
        for quantum in (1, 2, 3, 5, 7):
            scheme = MPXScheme()
            try:
                run_c(self.RACY, scheme=scheme, quantum=quantum)
            except BoundsViolation as err:
                assert err.scheme == "mpx"
                misfired += 1
        assert misfired >= 1, "expected at least one MPX race false positive"

    def test_sgxbounds_immune_to_the_same_race(self):
        from repro.core import SGXBoundsScheme
        for quantum in (1, 2, 3, 5, 7):
            value, _ = run_c(self.RACY, scheme=SGXBoundsScheme(),
                             quantum=quantum)
            assert value == 0
