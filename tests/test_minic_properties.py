"""Property-based tests: MiniC + VM semantics against Python oracles, and
the core end-to-end invariant — instrumentation never changes results."""

from hypothesis import given, settings, strategies as st

from repro.core import SGXBoundsScheme
from repro.minic import compile_source
from repro.vm import run_module
from tests.util import run_c

M64 = (1 << 64) - 1


def _to_signed(value):
    return value - (1 << 64) if value & (1 << 63) else value


# -- arithmetic expressions ----------------------------------------------------
_INT_OPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def int_exprs(draw, depth=0):
    """A MiniC integer expression plus its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=-1000, max_value=1000))
        return (f"({value})", value)
    op = draw(st.sampled_from(_INT_OPS))
    left_src, left_val = draw(int_exprs(depth=depth + 1))
    right_src, right_val = draw(int_exprs(depth=depth + 1))
    table = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
    }
    return (f"({left_src} {op} {right_src})", table[op](left_val, right_val))


class TestExpressionSemantics:
    @given(int_exprs())
    @settings(max_examples=40, deadline=None)
    def test_int_expressions_match_python(self, expr):
        source, expected = expr
        value, _ = run_c(f"int main() {{ return {source}; }}")
        assert _to_signed(value) == ((_to_signed(expected & M64)))

    @given(st.integers(min_value=-999, max_value=999),
           st.integers(min_value=1, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_division_truncates_toward_zero(self, a, b):
        value, _ = run_c(f"int main() {{ return ({a}) / ({b}); }}")
        assert _to_signed(value) == int(a / b)
        value, _ = run_c(f"int main() {{ return ({a}) % ({b}); }}")
        assert _to_signed(value) == a - int(a / b) * b

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=30, deadline=None)
    def test_shifts_match(self, shift, value):
        got, _ = run_c(f"int main() {{ return ((uint){value} << {shift}) "
                       f">> {shift}; }}")
        assert got == ((value << shift) & M64) >> shift


# -- array programs under instrumentation ------------------------------------------
class TestInstrumentationInvariance:
    """For any in-bounds access pattern, SGXBounds must be invisible."""

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                              st.integers(min_value=-100, max_value=100)),
                    min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_store_load_sequences(self, writes):
        body = "\n".join(f"    a[{idx}] = {val};" for idx, val in writes)
        src = f"""
        int main() {{
            int *a = (int*)malloc(16 * sizeof(int));
            for (int i = 0; i < 16; i++) a[i] = 0;
        {body}
            int s = 0;
            for (int i = 0; i < 16; i++) s += a[i] * (i + 1);
            free(a);
            return s;
        }}
        """
        native, _ = run_c(src)
        protected, _ = run_c(src, scheme=SGXBoundsScheme())
        assert native == protected
        # Python oracle.
        cells = [0] * 16
        for idx, val in writes:
            cells[idx] = val
        expected = sum(v * (i + 1) for i, v in enumerate(cells))
        assert _to_signed(native) == expected

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_malloc_sizes_and_strides(self, count, stride):
        src = f"""
        int main() {{
            char *p = (char*)malloc({count * stride});
            for (int i = 0; i < {count}; i++) p[i * {stride}] = (char)(i + 1);
            int s = 0;
            for (int i = 0; i < {count}; i++) s += p[i * {stride}];
            free(p);
            return s;
        }}
        """
        native, _ = run_c(src)
        for scheme in (SGXBoundsScheme(), SGXBoundsScheme(boundless=True)):
            protected, _ = run_c(src, scheme=scheme)
            assert protected == native
        assert native == sum(range(1, count + 1))

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_boundary_is_exact(self, extra):
        """Access at size-1 always fine; at size+extra always caught."""
        from repro.errors import BoundsViolation
        import pytest
        size = 16
        ok_src = f"""
        int main() {{
            char *p = (char*)malloc({size});
            p[{size - 1}] = 1;
            return p[{size - 1}];
        }}
        """
        value, _ = run_c(ok_src, scheme=SGXBoundsScheme())
        assert value == 1
        bad_src = f"""
        int main() {{
            char *p = (char*)malloc({size});
            p[{size + extra}] = 1;
            return 0;
        }}
        """
        with pytest.raises(BoundsViolation):
            run_c(bad_src, scheme=SGXBoundsScheme())
