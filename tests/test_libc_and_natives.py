"""libc wrapper + core-native tests, including the netsim layer."""

import pytest

from repro.errors import VMError
from repro.workloads import NetworkSim
from tests.util import build, run_c


class TestStringFunctions:
    def test_strncpy_pads_with_zeros(self):
        src = """
        int main() {
            char buf[16];
            memset(buf, 0x55, 16);
            strncpy(buf, "ab", 8);
            int zeros = 0;
            for (int i = 2; i < 8; i++) if (buf[i] == 0) zeros++;
            return zeros;
        }
        """
        value, _ = run_c(src)
        assert value == 6

    def test_strchr_not_found_returns_null(self):
        src = """
        int main() {
            char *s = "hello";
            char *p = strchr(s, 'z');
            return p == (char*)0;
        }
        """
        value, _ = run_c(src)
        assert value == 1

    def test_memcmp_ordering(self):
        src = """
        int main() {
            char a[4]; char b[4];
            memset(a, 1, 4); memset(b, 2, 4);
            int lt = memcmp(a, b, 4) < 0;
            int gt = memcmp(b, a, 4) > 0;
            int eq = memcmp(a, a, 4) == 0;
            return lt * 100 + gt * 10 + eq;
        }
        """
        value, _ = run_c(src)
        assert value == 111

    def test_memmove_is_available(self):
        src = """
        int main() {
            char buf[16];
            strcpy(buf, "abcdef");
            memmove(buf + 2, buf, 4);
            buf[7] = 0;
            return strcmp(buf, "abababe") != 0;  // contents shifted
        }
        """
        run_c(src)    # exercises the alias; exact C semantics not asserted

    def test_strcat_preserves_tag_arithmetic(self):
        """strcat writes through dst+len(dst): under SGXBounds that
        arithmetic must stay inside the tag (wrapper-level §3.2)."""
        from repro.core import SGXBoundsScheme
        src = """
        int main() {
            char *buf = (char*)malloc(32);
            strcpy(buf, "abc");
            strcat(buf, "defg");
            return strlen(buf);
        }
        """
        value, _ = run_c(src, scheme=SGXBoundsScheme())
        assert value == 7


class TestCoreNatives:
    def test_rand_is_deterministic_per_seed(self):
        src = """
        int main() {
            srand(42);
            int a = rand();
            srand(42);
            int b = rand();
            return a == b;
        }
        """
        value, _ = run_c(src)
        assert value == 1

    def test_clock_monotonic(self):
        src = """
        int main() {
            int t0 = clock();
            int x = 0;
            for (int i = 0; i < 100; i++) x += i;
            int t1 = clock();
            return t1 > t0 && x == 4950;
        }
        """
        value, _ = run_c(src)
        assert value == 1

    def test_print_output_captured(self):
        _, vm = run_c('int main() { puts("line"); print_int(7); return 0; }')
        assert vm.output() == "line\n7"

    def test_unknown_function_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError, match="unknown function"):
            run_c("int main() { frobnicate(1); return 0; }")


class TestNetworkSim:
    def test_message_queueing(self):
        net = NetworkSim()
        conn = net.connect(b"one", b"two")
        assert net.recv(conn, 100) == b"one"
        assert net.pending(conn) == 1
        assert net.recv(conn, 100) == b"two"
        assert net.recv(conn, 100) is None

    def test_partial_reads_resume(self):
        net = NetworkSim()
        conn = net.connect(b"abcdef")
        assert net.recv(conn, 4) == b"abcd"
        assert net.recv(conn, 4) == b"ef"

    def test_send_recorded_per_connection(self):
        net = NetworkSim()
        a = net.connect()
        b = net.connect()
        net.send(a, b"to-a")
        net.send(b, b"to-b")
        assert net.sent(a) == [b"to-a"]
        assert net.sent(b) == [b"to-b"]

    def test_vm_without_net_rejects_net_calls(self):
        with pytest.raises(VMError, match="no network"):
            run_c("int main() { char b[8]; return net_recv(0, b, 8); }")

    def test_recv_eof_returns_zero(self):
        from repro.vm import VM
        src = "int main() { char b[8]; return net_recv(0, b, 8); }"
        module = build(src)
        vm = VM()
        vm.net = NetworkSim()
        vm.net.connect()        # empty connection: immediate EOF
        vm.load(module)
        assert vm.run("main") == 0
