"""Golden-output regression tests for the CLI experiments.

``tests/goldens/*.txt`` pins the exact stdout of
``python -m repro <experiment> --seed 7 --size XS`` for the six
simulation experiments.  Two properties are enforced:

* **fastpath ON matches the goldens** — the predecoded interpreter
  reproduces the pre-fastpath output byte for byte (the goldens were
  captured with identity against the reference loop already proven);
* **fastpath OFF matches the goldens too** (spot-check) — so the
  reference loop, now off the default path, cannot silently rot.

Timing lines are excluded: five experiments print theirs to stderr
(``_STDERR_TIMING`` in :mod:`repro.__main__`), which we do not capture;
chaos prints ``[chaos: N.Ns]`` to stdout and it is stripped on both
sides of the diff.

To regenerate after an intentional output change::

    for c in fleet chaos recover redteam overload observe; do
      PYTHONPATH=src python -m repro $c --seed 7 --size XS \
        > tests/goldens/$c.txt 2>/dev/null
    done
    sed -i '/^\\[chaos: [0-9.]*s\\]$/d' tests/goldens/chaos.txt
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
GOLDENS = Path(__file__).resolve().parent / "goldens"

EXPERIMENTS = ("fleet", "chaos", "recover", "redteam", "overload", "observe")

_TIMING = re.compile(r"^\[chaos: [0-9.]+s\]$", re.MULTILINE)


def _run_cli(experiment: str, fastpath: bool) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_VM_FASTPATH"] = "1" if fastpath else "0"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment,
         "--seed", "7", "--size", "XS"],
        capture_output=True, text=True, env=env, cwd=str(REPO),
        timeout=300)
    assert proc.returncode == 0, \
        f"{experiment} exited {proc.returncode}:\n{proc.stderr[-2000:]}"
    return _TIMING.sub("", proc.stdout).rstrip("\n")


def _golden(experiment: str) -> str:
    return (GOLDENS / f"{experiment}.txt").read_text().rstrip("\n")


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_golden_fastpath_on(experiment):
    assert _run_cli(experiment, fastpath=True) == _golden(experiment), (
        f"'python -m repro {experiment} --seed 7 --size XS' drifted from "
        f"tests/goldens/{experiment}.txt with the fast path on")


@pytest.mark.parametrize("experiment", ("fleet", "chaos", "redteam"))
def test_golden_fastpath_off(experiment):
    """Reference-loop spot-check: the non-default interpreter must keep
    producing the same pinned output (full six-way OFF coverage lives in
    the differential oracle; three subprocesses keep this cheap)."""
    assert _run_cli(experiment, fastpath=False) == _golden(experiment), (
        f"'python -m repro {experiment}' drifted from the golden with "
        f"REPRO_VM_FASTPATH=0 — the reference interpreter has rotted")
