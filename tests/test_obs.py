"""Request-observatory tests: causal trace propagation, exact tick
decomposition, burn-rate fire/clear semantics, exposition rendering,
empty-histogram guards, and the zero-cost-when-off guarantee."""

import json

import pytest

from repro.fleet.campaign import CampaignConfig, run_campaign
from repro.fleet.slo import SLOTracker
from repro.obs import (
    DEFAULT_RULES,
    AttributionLedger,
    BurnRateEngine,
    BurnRateRule,
    COMPONENTS,
    Observability,
    decompose_trace,
    render_exposition,
    scheme_tax,
)
from repro.obs.trace import FleetTracer, mint_trace_id
from repro.telemetry.tracer import SpanTracer
from repro.workloads.netsim import NetworkSim


def _campaign(obs=None, **overrides):
    defaults = dict(app="memcached", scheme="sgxbounds", workers=2,
                    fault_rate=0.0, seed=7, size="XS")
    defaults.update(overrides)
    return run_campaign(CampaignConfig(**defaults), obs=obs)


class TestTraceIdentity:
    def test_trace_ids_deterministic_and_distinct(self):
        assert mint_trace_id(1234, 0) == mint_trace_id(1234, 0)
        assert mint_trace_id(1234, 0) != mint_trace_id(1234, 1)
        assert mint_trace_id(1234, 0) != mint_trace_id(99, 0)
        assert len(mint_trace_id(0, 0)) == 16

    def test_one_root_per_rid_client_retry_branches(self):
        tracer = FleetTracer(seed=1)
        tid = tracer.submit(5, 0)
        assert tracer.submit(5, 3) == tid       # same root, new branch
        trace = tracer.get(5)
        kinds = [h.kind for h in trace.hops]
        assert kinds.count("client_submit") == 1
        assert kinds.count("client_retry") == 1

    def test_first_terminal_wins_later_become_zombies(self):
        tracer = FleetTracer(seed=1)
        tracer.submit(9, 0)
        tracer.terminal(9, 4, "served", wid=0)
        tracer.terminal(9, 9, "served", wid=1)  # hedged duplicate
        trace = tracer.get(9)
        assert trace.status == "served"
        assert trace.terminal_tick == 4
        assert [h.kind for h in trace.hops].count("reply") == 1
        assert [h.kind for h in trace.hops].count("zombie_done") == 1

    def test_max_traces_bound_counts_drops(self):
        tracer = FleetTracer(seed=1, max_traces=2)
        assert tracer.submit(0, 0) is not None
        assert tracer.submit(1, 0) is not None
        assert tracer.submit(2, 0) is None
        tracer.hop(2, "dispatch", 1, wid=0)
        assert tracer.dropped_traces == 1
        assert tracer.dropped_hops == 1


class TestNetsimPropagation:
    def test_trace_rides_the_frame(self):
        net = NetworkSim()
        conn = net.connect()
        net.push(conn, b"GET a\n", trace="feedface00000001")
        assert net.recv(conn, 64) is not None
        assert net.last_recv_trace == "feedface00000001"

    def test_trace_survives_maxlen_splits(self):
        net = NetworkSim()
        conn = net.connect()
        net.push(conn, b"A" * 10, trace="cafe")
        for _ in range(5):
            assert net.recv(conn, 2) is not None
            assert net.last_recv_trace == "cafe"

    def test_trace_survives_per_mid_retry(self):
        net = NetworkSim(retry_limit=3)
        conn = net.connect()
        net.push(conn, b"GET a\n", trace="beef")
        assert net.recv(conn, 64) is not None
        assert net.fail_request(conn, b"GET a\n")   # re-queue same mid
        assert net.recv(conn, 64) is not None
        assert net.last_recv_trace == "beef"

    def test_trace_dropped_when_attempts_exhausted(self):
        net = NetworkSim(retry_limit=0)
        conn = net.connect()
        net.push(conn, b"GET a\n", trace="dead")
        assert net.recv(conn, 64) is not None
        assert not net.fail_request(conn, b"GET a\n")  # exhausted
        assert not net._traces


class TestFleetPropagation:
    def test_campaign_traces_cover_every_request(self):
        obs = Observability(seed=7)
        result = _campaign(obs)
        slo = result.slo
        summary = obs.tracer.summary()
        assert summary["traces"] == slo["submitted"]
        assert summary["terminal"] == summary["traces"]
        assert summary["dropped_traces"] == 0

    def test_crash_requeue_keeps_one_root(self):
        obs = Observability(seed=1234)
        result = _campaign(obs, policy="abort", fault_rate=0.2, seed=1234)
        assert result.crashes > 0
        requeued = [t for t in obs.tracer.traces.values()
                    if any(h.kind == "requeue" for h in t.hops)]
        assert requeued, "abort campaign should hedge crashed requests"
        for trace in requeued:
            kinds = [h.kind for h in trace.hops]
            assert kinds.count("client_submit") == 1
            assert kinds.count("reply") <= 1

    def test_failover_promotion_noted(self):
        # The recovery experiment's loose-interval replica cell: crash
        # loops run a worker to death, so a standby is promoted.
        obs = Observability(seed=77)
        result = _campaign(obs, policy="abort", fault_rate=0.25, seed=77,
                           workers=2, workload_kwargs=(("set_every", 2),),
                           crash_loop_k=2, crash_loop_window=200,
                           recovery="replica", checkpoint_interval=40)
        assert result.recovery["replica"]["promotions"] > 0
        assert any(kind == "failover_promoted"
                   for _, kind, _ in obs.tracer.notes)


class TestDecomposition:
    def test_components_sum_exactly_to_end_to_end(self):
        obs = Observability(seed=1234)
        _campaign(obs, policy="abort", fault_rate=0.2, seed=1234, size="S")
        assert obs.attribution.rows, "campaign should settle requests"
        for row in obs.attribution.rows:
            assert sum(row[c] for c in COMPONENTS) == row["total_ticks"]

    def test_open_trace_decomposes_to_none(self):
        tracer = FleetTracer(seed=1)
        tracer.submit(0, 0)
        assert decompose_trace(tracer.get(0)) is None

    def test_same_tick_service_is_one_enclave_tick(self):
        tracer = FleetTracer(seed=1)
        tracer.submit(0, 3)
        tracer.hop(0, "dispatch", 3, wid=0)
        tracer.terminal(0, 3, "served", wid=0)
        row = decompose_trace(tracer.get(0))
        assert row["total_ticks"] == 1
        assert row["enclave_compute"] == 1
        assert row["queue_wait"] == 0

    def test_retry_amplification_charged_to_wasted_service(self):
        tracer = FleetTracer(seed=1)
        tracer.submit(0, 0)
        tracer.hop(0, "dispatch", 2, wid=0)       # 2 ticks queue wait
        tracer.hop(0, "requeue", 5, wid=0)        # 3 ticks wasted service
        tracer.hop(0, "dispatch", 6, wid=1)       # 1 tick re-queue wait
        tracer.terminal(0, 8, "served", wid=1)    # 2+1 ticks real service
        row = decompose_trace(tracer.get(0))
        assert row["queue_wait"] == 2
        assert row["retry_amplification"] == 4
        assert row["enclave_compute"] == 3
        assert row["total_ticks"] == 9
        assert row["attempts"] == 2


class TestEmptyGuards:
    def test_empty_slo_summary_is_json_safe(self):
        summary = SLOTracker(tick_cycles=5_000).summary()
        assert summary["latency_p50_cycles"] is None
        assert summary["latency_mean_cycles"] is None
        json.dumps(summary, allow_nan=False)

    def test_empty_rollup_is_none_not_nan(self):
        rollup = AttributionLedger().rollup()
        assert rollup["served"] == 0
        assert rollup["mean_total_ticks"] is None
        assert rollup["mean_components"] is None
        assert rollup["mean_counters"] is None
        json.dumps(rollup, allow_nan=False)

    def test_scheme_tax_none_when_either_side_empty(self):
        empty = AttributionLedger().rollup()
        assert scheme_tax(empty, empty) is None

    def test_exposition_skips_none_slo_fields(self):
        text = render_exposition(slo=SLOTracker(tick_cycles=5_000).summary())
        assert "latency_p50" not in text
        assert "repro_slo_served 0" in text


class TestBurnRate:
    def _engine(self):
        return BurnRateEngine(rules=(
            BurnRateRule("fast", slo_target=0.9, long_window=4,
                         short_window=2, threshold=2.0),))

    def test_fires_only_when_both_windows_burn(self):
        engine = self._engine()
        good, bad = 0, 0
        for tick in range(4):                    # healthy warmup
            good += 10
            engine.observe(tick, good, bad)
        assert engine.fired == 0
        for tick in range(4, 8):                 # sustained failures
            bad += 10
            engine.observe(tick, good, bad)
        assert engine.fired == 1
        assert engine.active_rules() == ["fast"]

    def test_clears_with_hysteresis(self):
        engine = self._engine()
        good, bad = 0, 0
        for tick in range(6):
            bad += 10
            engine.observe(tick, good, bad)
        assert engine.active_rules() == ["fast"]
        for tick in range(6, 16):                # full recovery
            good += 10
            engine.observe(tick, good, bad)
        assert engine.cleared == 1
        assert engine.active_rules() == []
        events = [a["event"] for a in engine.alerts]
        assert events == ["fire", "clear"]

    def test_short_spike_without_sustained_burn_does_not_page(self):
        # One unlucky tick blows the short window way past threshold,
        # but the long window stays under it — no page.
        engine = BurnRateEngine(rules=(
            BurnRateRule("fast", slo_target=0.9, long_window=8,
                         short_window=1, threshold=2.0),))
        good, bad = 0, 0
        for tick in range(12):
            good += 10
            engine.observe(tick, good, bad)
        bad += 10
        engine.observe(12, good, bad)
        assert engine.fired == 0

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            BurnRateRule("bad", short_window=10, long_window=5)
        with pytest.raises(ValueError):
            BurnRateRule("bad", slo_target=1.5)

    def test_naive_overload_fires_protected_silent(self):
        fired = {}
        for mode in ("naive", "protected"):
            obs = Observability(seed=1234)
            _campaign(obs, workers=3, fault_rate=0.1, seed=1234,
                      size="S", arrivals_per_tick=8, deadline_ticks=20,
                      overload=mode, max_ticks=2_000)
            fired[mode] = obs.burn.fired
        assert fired["naive"] > 0
        assert fired["protected"] == 0


class TestExposition:
    def test_render_is_sorted_and_typed(self):
        obs = Observability(seed=7)
        _campaign(obs)
        text = render_exposition(burn=obs.burn, tracer=obs.tracer)
        lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert lines == sorted(lines)
        assert "# TYPE repro_trace_requests counter" in text
        assert 'repro_burn_alert_active{rule="fast-burn"} 0' in text

    def test_drop_counters_published(self):
        tracer = FleetTracer(seed=1, max_traces=1)
        tracer.submit(0, 0)
        tracer.submit(1, 0)                     # dropped
        text = render_exposition(tracer=tracer, span_dropped=3)
        assert "repro_trace_dropped_traces 1" in text
        assert "repro_trace_dropped_events 3" in text

    def test_histograms_are_cumulative(self):
        from repro.telemetry.metrics import MetricsRegistry
        registry = MetricsRegistry()
        hist = registry.histogram("lat.cycles", bounds=(1, 2, 4))
        for v in (1, 1, 3, 100):
            hist.observe(v)
        text = render_exposition(registry=registry)
        assert 'repro_lat_cycles_bucket{le="1"} 2' in text
        assert 'repro_lat_cycles_bucket{le="4"} 3' in text
        assert 'repro_lat_cycles_bucket{le="+Inf"} 4' in text
        assert "repro_lat_cycles_count 4" in text


class TestSpanTracerClose:
    def test_open_spans_close_at_their_own_pid_end(self):
        tracer = SpanTracer()
        tracer.pid = 1
        tracer.begin(0, "crashed_run", ts=100)   # never ends (crash)
        tracer.pid = 2
        tracer.complete(0, "long_run", 0, 50_000)
        tracer.close_open_spans()
        crashed = [e for e in tracer.events if e["name"] == "crashed_run"]
        assert crashed and crashed[0]["dur"] == 0
        assert crashed[0]["ts"] == 100


class TestZeroCostWhenOff:
    def test_result_identical_with_and_without_obs(self):
        plain = _campaign().as_dict()
        obs = Observability(seed=7)
        observed = _campaign(obs).as_dict()
        assert "obs" not in plain
        assert "obs" in observed
        observed.pop("obs")
        assert observed == plain

    def test_disabled_handle_is_inert(self):
        disabled = Observability(enabled=False, seed=7)
        result = _campaign(disabled).as_dict()
        assert "obs" not in result
        assert len(disabled.tracer) == 0

    def test_summary_attached_when_enabled(self):
        obs = Observability(seed=7)
        result = _campaign(obs)
        doc = result.as_dict()["obs"]
        assert doc["trace"]["traces"] > 0
        assert doc["attribution"]["served"] > 0
        assert doc["burn"]["fired"] == 0         # healthy fleet is silent

    def test_exact_decomposition_round_trips_json(self):
        obs = Observability(seed=7)
        result = _campaign(obs)
        json.dumps(result.as_dict(), allow_nan=False)


class TestFastpathInvariance:
    def test_scheme_tax_fastpath_invariant(self, monkeypatch):
        """The attribution pipeline must be blind to which interpreter
        ran: scheme_tax diffs PerfCounters means, and the predecoded
        fast path guarantees counter identity, so the whole tax document
        — deltas, priced components, shares — must match bit for bit
        between REPRO_VM_FASTPATH=0 and =1."""
        taxes = {}
        for flag in ("0", "1"):
            monkeypatch.setenv("REPRO_VM_FASTPATH", flag)
            rollups = {}
            for scheme in ("native", "sgxbounds"):
                obs = Observability(seed=7)
                _campaign(obs, scheme=scheme, policy="drop-request")
                rollups[scheme] = obs.attribution.rollup()
            taxes[flag] = scheme_tax(rollups["sgxbounds"],
                                     rollups["native"])
        assert taxes["1"] is not None
        assert taxes["1"] == taxes["0"]
