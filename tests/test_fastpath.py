"""Edge-path coverage for the predecoded interpreter.

The differential oracle (test_vm_differential.py) proves identity in
bulk; this file aims the fast path at the places where predecoding
could plausibly diverge from the reference loop:

* atomics (ATOMICRMW/CMPXCHG) on scheme-tagged pointers — the handler
  must strip tags exactly like the reference's ``& M32``;
* traps raised *inside* fused handlers (division by zero mid-chain,
  bounds violations inside gep+load fusion) — counters at the moment of
  the exception must match the reference instruction for instruction;
* blocking natives (mutex_lock/join returning BLOCK_RETRY) resuming at
  a call that sits mid-basic-block, across tiny scheduler quanta that
  force the undecoded tail loop;
* hoisted preheader checks (passes/loop_hoist.py) interacting with
  bnd/gep fusion;
* the per-function code cache: reuse while identity holds, re-predecode
  when ``fn.code`` is replaced, and fusion-site accounting.
"""

from __future__ import annotations

import pytest

from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation, TrapError
from repro.ir import Function, IRBuilder, Module
from repro.mpx import MPXScheme
from repro.vm import VM
from repro.vm.fastpath import FUSE_MAX, compile_function

from tests.util import build, run_c


def _counters(vm):
    return vm.enclave.finalize().snapshot()


def _run_pair(source, make_scheme=lambda: None, **vm_kwargs):
    """Run one MiniC program on both interpreters; return the two VMs
    plus the two results (``make_scheme`` builds a fresh scheme per run
    — scheme runtimes accumulate violation state)."""
    ref_result, ref_vm = run_c(source, make_scheme(), fastpath=False,
                               **vm_kwargs)
    fast_result, fast_vm = run_c(source, make_scheme(), fastpath=True,
                                 **vm_kwargs)
    assert fast_result == ref_result
    assert fast_vm.output() == ref_vm.output()
    assert _counters(fast_vm) == _counters(ref_vm)
    return ref_vm, fast_vm


# ---------------------------------------------------------------------------
# Atomics on tagged pointers
# ---------------------------------------------------------------------------

def _atomics_module() -> Module:
    """Hand-built IR: MiniC has no atomic surface, so emit it directly."""
    module = Module("atomics")
    fn = Function("main", [])
    b = IRBuilder(fn, fn.block("entry"))
    p = b.call("malloc", [b.k(32)])
    b.store(b.k(100), p, size=8)
    old1 = b.atomicrmw("add", p, b.k(7), size=8)
    old2 = b.atomicrmw("sub", p, b.k(3), size=8)
    old3 = b.atomicrmw("xchg", p, b.k(41), size=8)
    hit = b.cmpxchg(p, b.k(41), b.k(1000), size=8)   # matches -> swaps
    miss = b.cmpxchg(p, b.k(5), b.k(2), size=8)      # stale -> no swap
    q = b.gep(p, b.k(1), scale=4, offset=8)          # 4-byte lane
    narrow = b.atomicrmw("add", q, b.k(9), size=4)
    final = b.load(p, size=8)
    acc = b.add(old1, old2)
    for term in (old3, hit, miss, narrow, final):
        acc = b.add(acc, term)
    b.call("free", [p], want_result=False)
    b.ret(acc)
    module.add_function(fn)
    return module


@pytest.mark.parametrize("scheme_cls", [None, SGXBoundsScheme, MPXScheme])
def test_atomics_identity(scheme_cls):
    results = {}
    for fastpath in (False, True):
        scheme = scheme_cls() if scheme_cls else None
        module = _atomics_module()
        module = scheme.instrument(module) if scheme else module.clone()
        module.finalize()
        vm = VM(scheme=scheme, fastpath=fastpath)
        vm.load(module)
        results[fastpath] = (vm.run("main", ()), _counters(vm))
    assert results[True] == results[False]
    # 100+107+104+41+1000+0+1000 sanity-checks the atomic semantics
    # themselves, not just interpreter agreement.
    assert results[True][0] == 2352


# ---------------------------------------------------------------------------
# Traps inside fused handlers
# ---------------------------------------------------------------------------

def test_divide_by_zero_mid_chain():
    """The LOAD feeding the DIV and the DIV itself sit in one fused
    chain; the trap must surface with reference-identical counters."""
    src = """
    int z;
    int main() {
        int a = 3;
        int b = a + 4;
        return b / z;      // z == 0 at runtime, never constant-folded
    }
    """
    refs = {}
    for fastpath in (False, True):
        module = build(src)
        vm = VM(fastpath=fastpath)
        vm.load(module)
        with pytest.raises(TrapError):
            vm.run("main", ())
        refs[fastpath] = _counters(vm)
    assert refs[True] == refs[False]


def test_violation_inside_gep_load_fusion():
    src = """
    int main() {
        int *p = (int*)malloc(16);
        int i = 2;
        i = i * 4;                 // i == 8: one past the last element
        return p[i];
    }
    """
    contexts = {}
    for fastpath in (False, True):
        scheme = SGXBoundsScheme()
        module = build(src, scheme)
        vm = VM(scheme=scheme, fastpath=fastpath)
        vm.load(module)
        with pytest.raises(BoundsViolation) as err:
            vm.run("main", ())
        contexts[fastpath] = (err.value.context(), _counters(vm))
    assert contexts[True] == contexts[False]


# ---------------------------------------------------------------------------
# Blocking natives and slice boundaries
# ---------------------------------------------------------------------------

_CONTENTION_SRC = """
int lock[1];
int counter;
int worker(int n) {
    for (int i = 0; i < n; i++) {
        mutex_lock(lock);
        counter = counter + 1;
        mutex_unlock(lock);
    }
    return counter;
}
int main() {
    int a = spawn(worker, 25);
    int b = spawn(worker, 25);
    int c = spawn(worker, 25);
    int r = join(a) + join(b) + join(c);
    return counter * 1000 + (r & 511);
}
"""


@pytest.mark.parametrize("quantum", [1, 2, 3, 7, 64])
def test_block_retry_resume_identity(quantum):
    """mutex_lock/join return BLOCK_RETRY and the thread later resumes
    at a CALL that sits mid-basic-block.  Tiny quanta additionally force
    the fast path into its undecoded tail loop (quantum < FUSE_MAX) on
    almost every slice; scheduling order must still match exactly."""
    _run_pair(_CONTENTION_SRC, quantum=quantum)


def test_tail_loop_matches_reference_under_scheme():
    _run_pair(_CONTENTION_SRC, make_scheme=SGXBoundsScheme, quantum=2)


# ---------------------------------------------------------------------------
# Hoisted preheader checks under fusion
# ---------------------------------------------------------------------------

_HOIST_SRC = """
int main() {
    int *a = (int*)malloc(64 * sizeof(int));
    int sum = 0;
    for (int i = 0; i < 64; i++) a[i] = i;
    for (int i = 0; i < 64; i++) sum += a[i];
    free(a);
    return sum & 4095;
}
"""


def test_hoisted_checks_identity():
    """loop_hoist replaces per-iteration checks with one preheader check
    whose bnd/gep sequence is itself fusion bait; both configurations
    must stay reference-identical, and hoisting must demonstrably have
    fired (fewer bounds checks) so the test exercises what it claims."""
    executed = {}
    for hoist in (False, True):
        make = lambda h=hoist: SGXBoundsScheme(optimize_hoist=h)
        ref_vm, fast_vm = _run_pair(_HOIST_SRC, make_scheme=make)
        executed[hoist] = _counters(fast_vm)["instructions"]
    # Hoisting must demonstrably have fired: dropping 2 x 64 in-loop
    # clamp sequences shows up directly in the instruction count.
    assert executed[True] < executed[False]


# ---------------------------------------------------------------------------
# Predecode cache and fusion accounting
# ---------------------------------------------------------------------------

def test_fastcode_cached_and_invalidated():
    module = build("int main() { return 40 + 2; }")
    vm = VM(fastpath=True)
    program = vm.load(module)
    fn = module.functions["main"]
    fc1 = program.fast_for(fn, vm)
    assert program.fast_for(fn, vm) is fc1          # cache hit
    fn.code = list(fn.code)                          # identity change
    fc2 = program.fast_for(fn, vm)
    assert fc2 is not fc1                            # re-predecoded
    assert program.fast_for(fn, vm) is fc2


def test_fusion_sites_recorded():
    scheme = SGXBoundsScheme()
    module = build(_HOIST_SRC, scheme)
    vm = VM(scheme=scheme, fastpath=True)
    vm.load(module)
    fn = module.functions["main"]
    fc = compile_function(vm, fn, fn.consts)
    assert sum(fc.fusion_sites.values()) > 0
    assert fc.fusion_sites.get("cmp_br", 0) > 0      # loop back-edges
    # Fused sites really carry their advertised cost, and no site ever
    # exceeds the dispatch loop's quantum guard.
    assert any(c > 1 for c in fc.costs)
    assert max(fc.costs) <= FUSE_MAX


def test_calls_never_fused():
    """BLOCK_RETRY re-executes the CALL by index: every CALL must keep a
    cost-1 unfused handler even when surrounded by straight-line code."""
    from repro.ir import ops
    module = build("""
    int f(int x) { return x + 1; }
    int main() {
        int a = 1;
        int b = a + 2;
        int c = f(b);
        int d = c + 3;
        return d;
    }
    """)
    vm = VM(fastpath=True)
    vm.load(module)
    fn = module.functions["main"]
    fc = compile_function(vm, fn, fn.consts)
    for i, ins in enumerate(fn.code):
        if ins.op == ops.CALL:
            assert fc.costs[i] == 1
            assert fc.handlers[i] is fc.plain[i]
