"""Metadata-management API tests (paper §4.3, Table 2)."""

import pytest

from repro.core import DoubleFreeGuard, MetadataManager, SGXBoundsScheme
from repro.core.metadata import OBJ_GLOBAL, OBJ_HEAP, OBJ_STACK
from repro.errors import DoubleFree
from repro.minic import compile_source
from repro.vm import VM


def run_with(manager, src, **scheme_kwargs):
    scheme = SGXBoundsScheme(metadata=manager, **scheme_kwargs)
    module = scheme.instrument(compile_source(src)).finalize()
    vm = VM(scheme=scheme)
    vm.load(module)
    return vm.run("main"), vm, scheme


class TestHooks:
    def test_on_create_fires_for_heap_and_globals(self):
        manager = MetadataManager()
        seen = []
        manager.on_create(lambda vm, base, size, t, tagged:
                          seen.append((t, size)))
        run_with(manager, """
        int g_thing[4];
        int main() { char *p = (char*)malloc(24); p[0] = 1; return 0; }
        """)
        kinds = {t for t, _ in seen}
        assert OBJ_HEAP in kinds
        assert OBJ_GLOBAL in kinds
        assert (OBJ_HEAP, 24) in seen

    def test_on_create_fires_for_stack_when_hooks_registered(self):
        manager = MetadataManager()
        seen = []
        manager.on_create(lambda vm, base, size, t, tagged:
                          seen.append(t))
        run_with(manager, """
        int main() { int buf[4]; buf[0] = 1; return buf[0]; }
        """)
        assert OBJ_STACK in seen

    def test_on_delete_fires_on_free(self):
        manager = MetadataManager()
        deleted = []
        manager.on_delete(lambda vm, tagged: deleted.append(tagged))
        run_with(manager, """
        int main() { free(malloc(8)); free(malloc(8)); return 0; }
        """)
        assert len(deleted) == 2

    def test_on_access_fires_on_violation_slow_path(self):
        manager = MetadataManager()
        accesses = []
        manager.on_access(lambda vm, addr, size, tagged, kind:
                          accesses.append(kind))
        _, _, scheme = run_with(manager, """
        int main() {
            char *p = (char*)malloc(8);
            p[20] = 1;          // out of bounds -> slow path
            return 0;
        }
        """, boundless=True)
        assert accesses == ["write"]


class TestMetadataItems:
    def test_items_reserve_space_after_lb(self):
        manager = MetadataManager()
        manager.register_item("color")
        manager.register_item("owner")
        assert manager.extra_bytes == 8

    def test_item_read_write_roundtrip(self):
        manager = MetadataManager()
        manager.register_item("color")
        scheme = SGXBoundsScheme(metadata=manager)
        vm = VM(scheme=scheme)
        tagged = scheme.malloc(vm, 40)
        manager.write_item(vm, tagged, "color", 0xC0FFEE)
        assert manager.read_item(vm, tagged, "color") == 0xC0FFEE

    def test_items_do_not_disturb_bounds(self):
        manager = MetadataManager()
        manager.register_item("x")
        manager.register_item("y")
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            for (int i = 0; i < 4; i++) a[i] = i;
            int s = 0;
            for (int i = 0; i < 4; i++) s += a[i];
            free(a);
            return s;
        }
        """
        value, _, _ = run_with(manager, src)
        assert value == 6

    def test_duplicate_item_rejected(self):
        manager = MetadataManager()
        manager.register_item("x")
        with pytest.raises(ValueError):
            manager.register_item("x")


class TestDoubleFreeGuard:
    def test_detects_double_free(self):
        manager = MetadataManager()
        DoubleFreeGuard(manager)
        with pytest.raises(DoubleFree):
            run_with(manager, """
            int main() {
                char *p = (char*)malloc(16);
                free(p);                        // magic cleared here
                char *q = (char*)malloc(64);    // different size class
                free(p);                        // stale free: magic gone
                return 0;
            }
            """)

    def test_honest_programs_unaffected(self):
        manager = MetadataManager()
        guard = DoubleFreeGuard(manager)
        value, _, _ = run_with(manager, """
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i++) {
                int *p = (int*)malloc(32);
                p[0] = i;
                total += p[0];
                free(p);
            }
            return total;
        }
        """)
        assert value == 45
        assert guard.detected == 0
