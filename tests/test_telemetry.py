"""Telemetry subsystem tests: metrics, tracer, profiler, zero-overhead.

The invariants the subsystem promises:

* deterministic — two identical seeded runs emit byte-identical traces
  and metrics snapshots (the clock is retired simulated instructions,
  never wall time);
* zero-cost-when-off — a VM with no telemetry (or a disabled handle)
  produces the exact same PerfCounters as before the subsystem existed,
  and even an *enabled* handle never charges simulated counters;
* exportable — the trace is a valid Chrome ``trace_event`` document and
  the metrics/attribution payloads are strict JSON.

``REPRO_TRACE`` / ``REPRO_METRICS`` env vars point the schema tests at
externally emitted files (the CI smoke job exercises the CLI this way).
"""

import dataclasses
import json
import math
import os
import warnings

import pytest

from repro.harness.chaos import run_chaos_server
from repro.harness.profile import normalize_target, profile_experiment
from repro.harness.runner import (RunResult, geomean, overhead,
                                  run_server, run_workload)
from repro.sgx.counters import COUNTER_FIELDS, PerfCounters
from repro.telemetry import (Telemetry, attribute_overhead,
                             exponential_bounds, flame_rows, get_default,
                             set_default, to_jsonable)
from repro.telemetry.metrics import (DEFAULT_BOUNDS, Histogram,
                                     MetricsRegistry)
from repro.telemetry.tracer import SpanTracer
from repro.workloads import get
from repro.workloads.apps import memcached


def _run(telemetry=None, workload="histogram", scheme="sgxbounds"):
    return run_workload(get(workload), scheme, size="XS", threads=1,
                        telemetry=telemetry)


# ---------------------------------------------------------------------------
class TestMetrics:
    def test_exponential_bounds(self):
        assert exponential_bounds(1, 2, 5) == (1, 2, 4, 8, 16)
        assert DEFAULT_BOUNDS[0] == 1 and DEFAULT_BOUNDS[-1] == 2 ** 23
        with pytest.raises(ValueError):
            exponential_bounds(0, 2, 4)
        with pytest.raises(ValueError):
            exponential_bounds(1, 1, 4)

    def test_histogram_bucket_math(self):
        h = Histogram("h", bounds=(1, 2, 4, 8))
        for v in (1, 2, 2, 3, 4, 8, 9, 100):
            h.observe(v)
        # Buckets are upper-inclusive: (..1], (1..2], (2..4], (4..8], (8..
        assert h.counts == [1, 2, 2, 1, 2]
        assert h.count == 8
        assert h.total == sum((1, 2, 2, 3, 4, 8, 9, 100))
        snap = h.snapshot()
        assert snap["bounds"] == [1, 2, 4, 8]
        assert sum(snap["counts"]) == snap["count"]

    def test_histogram_percentile_bucket(self):
        h = Histogram("h", bounds=(1, 2, 4, 8))
        assert math.isnan(h.percentile_bucket(0.5))
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.percentile_bucket(0.25) == 1
        assert h.percentile_bucket(0.5) == 2
        assert h.percentile_bucket(1.0) == float("inf")
        with pytest.raises(ValueError):
            h.percentile_bucket(0.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(4, 2, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))

    def test_registry_get_or_create_and_conflicts(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(3)
        assert reg.counter("a") is c and c.value == 3
        reg.gauge("g").set(7)
        reg.histogram("h").observe(5)
        assert len(reg) == 3
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.counter("h")
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a"] == {"kind": "counter", "value": 3}
        assert snap["g"] == {"kind": "gauge", "value": 7}


# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_orphan_close(self):
        t = SpanTracer()
        t.begin(0, "outer", 0)
        t.begin(0, "inner", 10)
        t.end(0, "inner", 20)
        t.end(0, "outer", 30)
        # Rollback-style mismatch: "lost" never closed explicitly.
        t.begin(0, "outer2", 40)
        t.begin(0, "lost", 50)
        t.end(0, "outer2", 60)
        spans = [(e["name"], e["ts"], e["dur"]) for e in t.events]
        assert spans == [("inner", 10, 10), ("outer", 0, 30),
                         ("lost", 50, 10), ("outer2", 40, 20)]

    def test_unwind_to_depth(self):
        t = SpanTracer()
        for i, name in enumerate(("a", "b", "c")):
            t.begin(1, name, i * 10)
        t.unwind(1, 1, 100)
        assert [e["name"] for e in t.events] == ["c", "b"]
        t.end(1, "a", 110)
        assert t.events[-1]["name"] == "a"

    def test_event_cap_counts_dropped(self):
        t = SpanTracer(max_events=2)
        for i in range(5):
            t.instant(f"e{i}", i)
        assert len(t.events) == 2 and t.dropped == 3
        assert t.chrome_trace()["otherData"]["dropped_events"] == 3

    def test_close_open_spans_on_crash(self):
        t = SpanTracer()
        t.begin(0, "dies", 5)
        t.instant("violation", 50)
        doc = t.chrome_trace()
        span = [e for e in doc["traceEvents"] if e["name"] == "dies"][0]
        assert span["dur"] == 45


# ---------------------------------------------------------------------------
def _assert_chrome_schema(doc):
    """Chrome trace_event JSON-object-format invariants."""
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] in ("ms", "ns")
    for event in doc["traceEvents"]:
        assert event["ph"] in ("X", "i", "M"), event
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] in ("t", "p", "g")
    # Must round-trip as strict JSON.
    json.loads(json.dumps(doc, allow_nan=False))


class TestRunIntegration:
    def test_span_determinism_two_identical_runs(self):
        docs, snaps = [], []
        for _ in range(2):
            telemetry = Telemetry()
            _run(telemetry)
            docs.append(telemetry.chrome_trace())
            snaps.append(telemetry.metrics_snapshot())
        assert json.dumps(docs[0], sort_keys=True) \
            == json.dumps(docs[1], sort_keys=True)
        assert snaps[0] == snaps[1]

    def test_chrome_trace_schema_from_run(self):
        telemetry = Telemetry()
        _run(telemetry)
        doc = telemetry.chrome_trace()
        _assert_chrome_schema(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "main" in names          # function spans
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "function" in cats and "native" in cats

    def test_zero_overhead_when_off(self):
        # Counters must be identical whether telemetry is absent,
        # disabled, or even enabled (it only observes, never charges).
        absent = _run()
        disabled = _run(Telemetry(enabled=False))
        enabled = _run(Telemetry())
        assert absent.counters == disabled.counters == enabled.counters
        assert absent.cycles == disabled.cycles == enabled.cycles
        assert absent.peak_reserved == enabled.peak_reserved

    def test_disabled_telemetry_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        _run(telemetry)
        assert len(telemetry.registry) == 0
        assert telemetry.chrome_trace()["traceEvents"] == []

    def test_function_profile_covers_run(self):
        telemetry = Telemetry()
        result = _run(telemetry, workload="kmeans")
        profile = telemetry.functions.snapshot()
        assert "main" in profile
        total = sum(row["instructions"] for row in profile.values())
        assert total == result.counters["instructions"]
        for row in profile.values():
            assert row["calls_entered"] >= 0
            assert row["instructions"] >= 0

    def test_scheme_metrics_published(self):
        telemetry = Telemetry()
        _run(telemetry, scheme="sgxbounds")
        snap = telemetry.metrics_snapshot()
        assert snap["sgxbounds.metadata_bytes"]["value"] > 0
        assert snap["sgx.instructions"]["value"] > 0
        assert "epc.peak_resident" in snap

    def test_request_spans_from_server_run(self):
        telemetry = Telemetry()
        requests = memcached.workload(memcached.SIZES["XS"])
        result = run_server(memcached.SOURCE, [requests], "sgxbounds",
                            memcached.SIZES["XS"], name="memcached",
                            telemetry=telemetry)
        assert result.ok
        doc = telemetry.chrome_trace()
        _assert_chrome_schema(doc)
        req_spans = [e for e in doc["traceEvents"]
                     if e.get("cat") == "request"]
        assert len(req_spans) >= memcached.SIZES["XS"] - 1
        snap = telemetry.metrics_snapshot()
        assert snap["net.requests_received"]["value"] \
            == memcached.SIZES["XS"]
        assert snap["net.responses"]["value"] == memcached.SIZES["XS"]

    def test_chaos_run_records_drops_and_violations(self):
        telemetry = Telemetry()
        result = run_chaos_server("memcached", policy="drop-request",
                                  fault_rate=0.3, size="XS",
                                  telemetry=telemetry)
        assert result.ok
        snap = telemetry.metrics_snapshot()
        assert snap["violations.sgxbounds"]["value"] > 0
        assert snap["vm.requests_dropped"]["value"] > 0
        doc = telemetry.chrome_trace()
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "violation" in cats and "recovery" in cats

    def test_default_telemetry_hook(self):
        telemetry = Telemetry()
        set_default(telemetry)
        try:
            assert get_default() is telemetry
            _run()   # no explicit handle: the default applies
        finally:
            set_default(None)
        assert get_default() is None
        assert len(telemetry.registry) > 0


# ---------------------------------------------------------------------------
class TestAttribution:
    def test_attribute_overhead_shares(self):
        telemetry_native, telemetry_sgxb = Telemetry(), Telemetry()
        _run(telemetry_native, workload="kmeans", scheme="native")
        _run(telemetry_sgxb, workload="kmeans", scheme="sgxbounds")
        attribution = attribute_overhead(telemetry_sgxb.functions.snapshot(),
                                         telemetry_native.functions.snapshot())
        totals, shares = attribution["totals"], attribution["shares"]
        assert totals["total_cycles"] > 0
        assert totals["total_cycles"] == (totals["check_cycles"]
                                          + totals["cache_cycles"]
                                          + totals["epc_fault_cycles"])
        assert math.isclose(sum(shares.values()), 1.0)
        # The instrumented run really did execute extra instructions
        # (the inlined checks) somewhere.
        assert any(row["delta"]["instructions"] > 0
                   for row in attribution["functions"].values())

    def test_mpx_bounds_checks_attributed(self):
        # bounds_checks counts the explicit BNDCL/BNDCU ops, an
        # MPX-only artifact — SGXBounds checks are plain instructions.
        telemetry = Telemetry()
        _run(telemetry, workload="kmeans", scheme="mpx")
        profile = telemetry.functions.snapshot()
        assert sum(row["bounds_checks"] for row in profile.values()) > 0

    def test_flame_rows_sorted_hottest_first(self):
        telemetry = Telemetry()
        _run(telemetry, workload="kmeans")
        rows = flame_rows(telemetry.functions.snapshot(), limit=5)
        instr = [row[2] for row in rows]
        assert instr == sorted(instr, reverse=True)
        assert len(rows) <= 5

    def test_profile_experiment_single_workload(self):
        data, text = profile_experiment("histogram", size="XS",
                                        schemes=("native", "sgxbounds"))
        assert "Overhead attribution" in text and "Flame table" in text
        runs = data["metrics"]["histogram"]["schemes"]
        attribution = runs["sgxbounds"]["attribution"]
        assert attribution["totals"]["total_cycles"] > 0
        _assert_chrome_schema(data["trace"])
        # Each run got its own process lane.
        assert {e["pid"] for e in data["trace"]["traceEvents"]} == {1, 2}
        # The whole payload must survive a strict JSON dump.
        json.dumps(to_jsonable(data), allow_nan=False)

    def test_normalize_target(self):
        assert normalize_target("fig07") == "fig7"
        assert normalize_target("FIG1") == "fig1"
        assert normalize_target("kmeans") == "kmeans"

    def test_profile_unknown_target(self):
        with pytest.raises(KeyError):
            profile_experiment("no-such-thing")


# ---------------------------------------------------------------------------
class TestResultsEmission:
    def test_to_jsonable_flattens_harness_objects(self):
        r = RunResult("w", "native", "XS", 1)
        r.cycles = 7
        flat = to_jsonable({("a", 1): r, "nan": float("nan"),
                            "set": {3, 1, 2}, "bytes": b"\xff"})
        assert flat["a/1"]["cycles"] == 7
        assert flat["nan"] is None
        assert flat["set"] == [1, 2, 3]
        assert flat["bytes"] == "\xff"
        json.dumps(flat, allow_nan=False)

    def test_emit_result_roundtrip(self, tmp_path):
        from repro.telemetry.results import emit_result
        path = emit_result("unit", {"x": 1}, meta={"size": "XS"},
                           directory=tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["name"] == "unit"
        assert doc["data"] == {"x": 1}
        assert doc["meta"] == {"size": "XS"}


# ---------------------------------------------------------------------------
class TestSatellites:
    def test_counter_fields_match_dataclass(self):
        # The precomputed tuple must stay in lockstep with the dataclass.
        assert COUNTER_FIELDS == tuple(
            f.name for f in dataclasses.fields(PerfCounters))

    def test_counters_fast_paths(self):
        a, b = PerfCounters(), PerfCounters()
        a.instructions, a.llc_misses = 10, 3
        b.instructions, b.epc_faults = 5, 2
        a.add(b)
        assert a.instructions == 15 and a.epc_faults == 2
        snap = a.snapshot()
        assert snap == {name: getattr(a, name) for name in
                        (f.name for f in dataclasses.fields(PerfCounters))}
        a.reset()
        assert all(v == 0 for v in a.snapshot().values())

    def test_overhead_empty_results_warns(self):
        with pytest.warns(UserWarning, match="empty result"):
            assert overhead([]) == {}

    def test_overhead_zero_baseline_is_nan(self):
        base = RunResult("w", "native", "XS", 1)
        base.result = 0
        instrumented = RunResult("w", "sgxbounds", "XS", 1)
        instrumented.result = 0
        instrumented.cycles = 50
        with pytest.warns(UserWarning, match="zero-cycles baseline"):
            table = overhead([base, instrumented])
        assert math.isnan(table["w"]["sgxbounds"])

    def test_geomean_edge_cases(self):
        with pytest.warns(UserWarning, match="no positive finite"):
            assert math.isnan(geomean([]))
        with pytest.warns(UserWarning):
            assert math.isnan(geomean([float("nan"), None, -1.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isclose(geomean([2.0, float("nan"), 8.0]), 4.0)


# ---------------------------------------------------------------------------
#: CI smoke hooks: validate externally emitted artifacts.
TRACE_PATH = os.environ.get("REPRO_TRACE")
METRICS_PATH = os.environ.get("REPRO_METRICS")


@pytest.mark.skipif(not TRACE_PATH, reason="REPRO_TRACE not set")
def test_external_trace_file_schema():
    with open(TRACE_PATH) as fh:
        doc = json.load(fh)
    _assert_chrome_schema(doc)
    assert doc["traceEvents"], "emitted trace is empty"


@pytest.mark.skipif(not METRICS_PATH, reason="REPRO_METRICS not set")
def test_external_metrics_file_schema():
    with open(METRICS_PATH) as fh:
        doc = json.load(fh)
    assert doc["baseline"] in doc["schemes"]
    for workload, per in doc["metrics"].items():
        runs = per["schemes"]
        for scheme, run in runs.items():
            if scheme == per["baseline"]:
                continue
            attribution = run["attribution"]
            assert set(attribution["shares"]) \
                == {"check", "cache", "epc_fault"}
            assert attribution["totals"]["total_cycles"] >= 0
            assert attribution["functions"], \
                f"{workload}/{scheme}: no per-function attribution"
