"""Differential-identity oracle: fastpath vs reference interpreter.

The predecoded dispatcher (:mod:`repro.vm.fastpath`) is only legal if it
is *observationally indistinguishable* from the reference loop
(``VM._run_reference``) — byte-identical stdout, identical PerfCounters,
identical violation and forensics records, identical crash types — for
every program, every scheme, every policy.  This module is that proof
obligation, at three granularities:

1. every registered suite workload (XS) under every scheme;
2. the scheme x policy matrix on a real server app with an exploit
   request, down to flight-recorder JSONL and postmortem equality;
3. a seeded fuzz corpus (>= 200 generated MiniC programs per seed,
   ``tests/genprog.py``) through both interpreters.

Any drift between the loops fails here first; keep this file green
before trusting any benchmark number the fast path produces.
"""

from __future__ import annotations

import pytest

from repro.forensics import Forensics
from repro.harness.runner import run_server, run_workload
from repro.vm import policy
from repro.workloads import all_workloads, get
from repro.workloads.apps import apache, memcached

from tests.genprog import corpus
from tests.util import run_c

PROTECTED_SCHEMES = ("sgxbounds", "asan", "mpx", "baggy")

#: Fuzz corpus sizing: the ISSUE's oracle floor is 200 programs per seed.
FUZZ_SEEDS = (2017, 40917)
FUZZ_COUNT = 200


def _run_pair(workload, scheme, **kwargs):
    ref = run_workload(workload, scheme, fastpath=False, **kwargs)
    fast = run_workload(workload, scheme, fastpath=True, **kwargs)
    return ref, fast


def _assert_results_identical(ref, fast, label):
    assert fast.output == ref.output, f"{label}: stdout drift"
    assert fast.result == ref.result, f"{label}: exit value drift"
    assert fast.crashed == ref.crashed, f"{label}: crash-type drift"
    assert fast.counters == ref.counters, f"{label}: PerfCounters drift"
    assert fast.violation == ref.violation, f"{label}: violation drift"
    assert fast.scheme_report == ref.scheme_report, \
        f"{label}: scheme report drift"


# ---------------------------------------------------------------------------
# 1. Every registered workload
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name",
                         [w.name for w in all_workloads()])
def test_workload_identity_native(name):
    ref, fast = _run_pair(get(name), "native", size="XS")
    _assert_results_identical(ref, fast, f"{name}/native")


def test_workload_identity_all_schemes():
    """Full workload x protected-scheme sweep in one pass (XS).

    One test rather than 116 parametrized cells: each cell is cheap and
    a drift report names the exact cell anyway.
    """
    for workload in all_workloads():
        for scheme in PROTECTED_SCHEMES:
            ref, fast = _run_pair(workload, scheme, size="XS")
            _assert_results_identical(
                ref, fast, f"{workload.name}/{scheme}")


# ---------------------------------------------------------------------------
# 2. Scheme x policy matrix with violation/forensics records
# ---------------------------------------------------------------------------

def _server_cell(scheme, pol, fastpath):
    forensics = Forensics()
    result = run_server(
        memcached.SOURCE,
        [[memcached.make_request(1, b"k", b"v" * 8),
          memcached.cve_2011_4971_request(),
          memcached.make_request(2, b"k")]],
        scheme, 4, name="memcached", policy=pol,
        forensics=forensics, fastpath=fastpath)
    return result, forensics


@pytest.mark.parametrize("scheme", PROTECTED_SCHEMES)
@pytest.mark.parametrize("pol", policy.ALL_POLICIES)
def test_scheme_policy_matrix(scheme, pol):
    ref, ref_fx = _server_cell(scheme, pol, fastpath=False)
    fast, fast_fx = _server_cell(scheme, pol, fastpath=True)
    label = f"memcached/{scheme}/{pol}"
    _assert_results_identical(ref, fast, label)
    assert fast.resilience == ref.resilience, f"{label}: resilience drift"
    # Forensics must match record-for-record: the flight recorder's JSONL
    # dump covers event order, timestamps (instruction counts) and every
    # detail field; postmortems cover stack capture at the violation site.
    assert fast_fx.recorder.to_jsonl() == ref_fx.recorder.to_jsonl(), \
        f"{label}: flight-recorder drift"
    assert fast_fx.postmortems == ref_fx.postmortems, \
        f"{label}: postmortem drift"


def test_apache_heartbleed_identity():
    """Second server app, different overflow shape (Heartbleed-style
    over-read followed by a legitimate request)."""
    requests = [apache.heartbleed_request(), apache.static_get()]
    for pol in (policy.ABORT, policy.BOUNDLESS):
        ref = run_server(apache.SOURCE, [list(requests)], "sgxbounds",
                         4, name="apache", policy=pol, fastpath=False)
        fast = run_server(apache.SOURCE, [list(requests)], "sgxbounds",
                          4, name="apache", policy=pol, fastpath=True)
        _assert_results_identical(ref, fast, f"apache/sgxbounds/{pol}")


# ---------------------------------------------------------------------------
# 3. Generated-program fuzz corpus
# ---------------------------------------------------------------------------

def _counters(vm):
    return vm.enclave.finalize().snapshot()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_identity(seed):
    """>= 200 seeded random programs per seed, both interpreters."""
    mismatches = []
    for k, source in enumerate(corpus(seed, FUZZ_COUNT)):
        ref_result, ref_vm = run_c(source, fastpath=False)
        fast_result, fast_vm = run_c(source, fastpath=True)
        if (fast_result != ref_result
                or fast_vm.output() != ref_vm.output()
                or _counters(fast_vm) != _counters(ref_vm)):
            mismatches.append(k)
    assert not mismatches, (
        f"seed {seed}: programs {mismatches} diverged — reproduce with "
        f"tests.genprog.corpus({seed}, {FUZZ_COUNT})[k]")


def test_fuzz_identity_under_sgxbounds():
    """Sample of the corpus under instrumentation: exercises bnd_access
    fusion, tagged-pointer GEPs and the clamped-access paths the native
    runs never reach."""
    from repro.core import SGXBoundsScheme
    for k, source in enumerate(corpus(7, 25)):
        ref_result, ref_vm = run_c(source, SGXBoundsScheme(),
                                   fastpath=False)
        fast_result, fast_vm = run_c(source, SGXBoundsScheme(),
                                     fastpath=True)
        assert fast_result == ref_result, f"program {k}: exit value drift"
        assert fast_vm.output() == ref_vm.output(), \
            f"program {k}: stdout drift"
        assert _counters(fast_vm) == _counters(ref_vm), \
            f"program {k}: counters drift"


def test_corpus_is_deterministic():
    assert corpus(99, 10) == corpus(99, 10)
    assert corpus(99, 10) != corpus(100, 10)
