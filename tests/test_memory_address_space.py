"""Unit tests for the paged 32-bit address space."""

import pytest

from repro.errors import GuardPageFault, OutOfMemory, SegmentationFault
from repro.memory import (
    AddressSpace,
    PERM_GUARD,
    PERM_READ,
    PERM_RW,
    layout,
)


@pytest.fixture
def space():
    return AddressSpace()


class TestMapping:
    def test_map_and_rw(self, space):
        space.map(0x10000, 0x2000)
        space.write(0x10010, b"hello")
        assert space.read(0x10010, 5) == b"hello"

    def test_unmapped_read_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.read(0x50000, 1)

    def test_unmapped_write_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.write(0x50000, b"x")

    def test_map_rounds_to_pages(self, space):
        region = space.map(0x10000, 100)
        assert region.size == layout.PAGE_SIZE

    def test_unaligned_map_rejected(self, space):
        with pytest.raises(ValueError):
            space.map(0x10001, 0x1000)

    def test_double_map_rejected(self, space):
        space.map(0x10000, 0x1000)
        with pytest.raises(OutOfMemory):
            space.map(0x10000, 0x1000)

    def test_unmap_releases(self, space):
        space.map(0x10000, 0x1000)
        space.unmap(0x10000, 0x1000)
        with pytest.raises(SegmentationFault):
            space.read(0x10000, 1)

    def test_unmap_unmapped_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.unmap(0x10000, 0x1000)

    def test_reserved_accounting(self, space):
        space.map(0x10000, 0x3000)
        assert space.reserved_bytes == 0x3000
        space.unmap(0x10000, 0x3000)
        assert space.reserved_bytes == 0
        assert space.peak_reserved == 0x3000

    def test_beyond_32bit_rejected(self, space):
        with pytest.raises(OutOfMemory):
            space.map(0xFFFFF000, 0x2000)


class TestPermissions:
    def test_readonly_write_faults(self, space):
        space.map(0x10000, 0x1000, PERM_READ)
        assert space.read(0x10000, 4) == b"\x00" * 4
        with pytest.raises(SegmentationFault):
            space.write(0x10000, b"x")

    def test_guard_page_faults_both_ways(self, space):
        space.map(0x10000, 0x1000, PERM_GUARD)
        with pytest.raises(GuardPageFault):
            space.read(0x10000, 1)
        with pytest.raises(GuardPageFault):
            space.write(0x10000, b"x")

    def test_guard_counts_as_mapped(self, space):
        space.map(0x10000, 0x1000, PERM_GUARD)
        assert space.is_mapped(0x10000)
        assert not space.is_accessible(0x10000)

    def test_protect_changes_perms(self, space):
        space.map(0x10000, 0x1000, PERM_RW)
        space.protect(0x10000, 0x1000, PERM_READ)
        with pytest.raises(SegmentationFault):
            space.write(0x10000, b"x")


class TestTypedAccess:
    def test_u8_u16_u32_u64_roundtrip(self, space):
        space.map(0x10000, 0x1000)
        space.write_u8(0x10000, 0xAB)
        space.write_u16(0x10010, 0xBEEF)
        space.write_u32(0x10020, 0xDEADBEEF)
        space.write_u64(0x10030, 0x0123456789ABCDEF)
        assert space.read_u8(0x10000) == 0xAB
        assert space.read_u16(0x10010) == 0xBEEF
        assert space.read_u32(0x10020) == 0xDEADBEEF
        assert space.read_u64(0x10030) == 0x0123456789ABCDEF

    def test_f64_roundtrip(self, space):
        space.map(0x10000, 0x1000)
        space.write_f64(0x10008, -2.5e10)
        assert space.read_f64(0x10008) == -2.5e10

    def test_little_endian(self, space):
        space.map(0x10000, 0x1000)
        space.write_u32(0x10000, 0x11223344)
        assert space.read(0x10000, 4) == b"\x44\x33\x22\x11"

    def test_values_masked_to_width(self, space):
        space.map(0x10000, 0x1000)
        space.write_u8(0x10000, 0x1FF)
        assert space.read_u8(0x10000) == 0xFF

    def test_cross_page_access(self, space):
        space.map(0x10000, 0x2000)
        space.write_u64(0x10FFC, 0x1122334455667788)
        assert space.read_u64(0x10FFC) == 0x1122334455667788

    def test_cross_page_into_unmapped_faults(self, space):
        space.map(0x10000, 0x1000)
        with pytest.raises(SegmentationFault):
            space.write_u64(0x10FFC, 1)

    def test_cstring(self, space):
        space.map(0x10000, 0x1000)
        space.write(0x10000, b"hello\x00world")
        assert space.read_cstring(0x10000) == b"hello"

    def test_fill(self, space):
        space.map(0x10000, 0x1000)
        space.fill(0x10000, 0x5A, 64)
        assert space.read(0x10000, 64) == b"\x5A" * 64


class TestTracerAndCommit:
    def test_tracer_sees_accesses(self, space):
        events = []
        space.map(0x10000, 0x1000)
        space.tracer = lambda a, s, w: events.append((a, s, w))
        space.write_u32(0x10000, 1)
        space.read_u32(0x10000)
        assert events == [(0x10000, 4, True), (0x10000, 4, False)]

    def test_commit_limit_enforced(self):
        space = AddressSpace(commit_limit=2 * layout.PAGE_SIZE)
        space.map(0x10000, 0x4000)
        space.write_u8(0x10000, 1)
        space.write_u8(0x11000, 1)
        with pytest.raises(OutOfMemory):
            space.write_u8(0x12000, 1)

    def test_commit_limit_counts_materialized_not_reserved(self):
        space = AddressSpace(commit_limit=2 * layout.PAGE_SIZE)
        space.map(0x10000, 0x100000)   # large reservation is fine
        space.write_u8(0x10000, 1)     # only materialization counts
