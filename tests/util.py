"""Shared test helpers: compile-and-run MiniC under any scheme."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.ir import Module, verify_module
from repro.minic import compile_source
from repro.sgx import Enclave, EnclaveConfig
from repro.vm import VM
from repro.vm.scheme import SchemeRuntime


def build(source: str, scheme: Optional[SchemeRuntime] = None,
          verify: bool = True) -> Module:
    """Compile MiniC and apply ``scheme``'s instrumentation."""
    module = compile_source(source)
    if scheme is not None:
        module = scheme.instrument(module)
    else:
        module = module.clone()
    if verify:
        verify_module(module)
    return module.finalize()


def run_c(source: str, scheme: Optional[SchemeRuntime] = None,
          config: Optional[EnclaveConfig] = None, entry: str = "main",
          args: Sequence[object] = (), **vm_kwargs) -> Tuple[int, VM]:
    """Compile, instrument, load and run; returns (exit value, vm)."""
    module = build(source, scheme)
    enclave = Enclave(config) if config is not None else None
    vm = VM(enclave=enclave, scheme=scheme, **vm_kwargs)
    vm.load(module)
    result = vm.run(entry, args)
    vm.enclave.finalize()
    return result, vm
