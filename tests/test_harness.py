"""Harness tests: runner, overhead computation, report formatting."""

import math

import pytest

from repro.harness import report
from repro.harness.runner import (
    RunResult,
    geomean,
    overhead,
    run_workload,
    sweep,
)
from repro.sgx import EnclaveConfig
from repro.workloads import get


class TestRunner:
    def test_run_workload_native(self):
        r = run_workload(get("histogram"), "native", size="XS", threads=1)
        assert r.ok
        assert r.cycles > 0
        assert r.counters["instructions"] > 0
        assert r.peak_reserved > 0

    def test_expected_oracle_agrees(self):
        workload = get("histogram")
        r = run_workload(workload, "native", size="XS", threads=2)
        assert r.result == workload.expected(*workload.args_for("XS", 2))

    def test_instrumented_matches_native(self):
        workload = get("linear_regression")
        native = run_workload(workload, "native", size="XS", threads=1)
        for scheme in ("sgxbounds", "asan", "mpx"):
            r = run_workload(workload, scheme, size="XS", threads=1)
            assert r.ok and r.result == native.result, scheme

    def test_crash_recorded_not_raised(self):
        config = EnclaveConfig(commit_limit_bytes=32 * 1024)
        r = run_workload(get("dedup"), "native", size="M", config=config)
        assert not r.ok
        assert r.crashed == "OOM"

    def test_scheme_kwargs_forwarded(self):
        r = run_workload(get("histogram"), "sgxbounds", size="XS",
                         scheme_kwargs={"optimize_safe": False,
                                        "optimize_hoist": False})
        assert r.ok

    def test_deterministic_cycles(self):
        a = run_workload(get("histogram"), "sgxbounds", size="XS", threads=2)
        b = run_workload(get("histogram"), "sgxbounds", size="XS", threads=2)
        assert a.cycles == b.cycles
        assert a.counters == b.counters


class TestOverhead:
    def test_overhead_ratios(self):
        results = sweep([get("histogram")], schemes=("native", "sgxbounds"),
                        size="XS", threads=1)
        table = overhead(results)
        row = table["histogram"]
        assert row["native"] == 1.0
        assert row["sgxbounds"] > 1.0

    def test_crashed_runs_become_none(self):
        results = [RunResult("w", "native", "S", 1),
                   RunResult("w", "mpx", "S", 1)]
        results[0].cycles = 100
        results[0].result = 5
        results[1].crashed = "OOM"
        table = overhead(results)
        assert table["w"]["mpx"] is None

    def test_result_mismatch_raises(self):
        results = [RunResult("w", "native", "S", 1),
                   RunResult("w", "asan", "S", 1)]
        results[0].cycles = results[1].cycles = 100
        results[0].result = 5
        results[1].result = 6
        with pytest.raises(AssertionError):
            overhead(results)

    def test_geomean(self):
        assert math.isclose(geomean([1.0, 4.0]), 2.0)
        assert math.isclose(geomean([2.0, 2.0, 2.0]), 2.0)
        assert math.isnan(geomean([]))
        assert math.isclose(geomean([2.0, None]), 2.0)


class TestReport:
    def test_overhead_table_renders(self):
        table = {"alpha": {"native": 1.0, "sgxbounds": 1.2},
                 "beta": {"native": 1.0, "sgxbounds": None}}
        text = report.overhead_table("T", table, ("native", "sgxbounds"))
        assert "alpha" in text
        assert "crash" in text
        assert "gmean" in text

    def test_series_table_renders(self):
        text = report.series_table("S", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "2.50" in text
        assert "crash" in text

    def test_defense_table_mentions_memory_safety(self):
        assert "Memory safety" in report.DEFENSE_TABLE
