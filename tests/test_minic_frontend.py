"""Unit tests for the MiniC lexer and parser."""

import pytest

from repro.errors import CompileError
from repro.minic.lexer import tokenize
from repro.minic.parser import parse
from repro.minic import ast_nodes as ast
from repro.minic import ctypes as ct


class TestLexer:
    def test_numbers(self):
        kinds = [(t.kind, t.value) for t in tokenize("42 0x1F 3.5 1e3")[:-1]]
        assert kinds == [("int", 42), ("int", 31), ("float", 3.5),
                         ("float", 1000.0)]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while _bar2")
        assert tokens[0].kind == "kw"
        assert tokens[1] == tokens[1]._replace(kind="ident", value="foo")
        assert tokens[2].kind == "kw"
        assert tokens[3].value == "_bar2"

    def test_string_escapes(self):
        token = tokenize(r'"a\n\t\x41\0"')[0]
        assert token.value == b"a\n\tA\x00"

    def test_char_literals(self):
        assert tokenize("'a'")[0].value == ord("a")
        assert tokenize(r"'\n'")[0].value == 10

    def test_comments_skipped(self):
        tokens = tokenize("1 // line\n/* block\nmore */ 2")
        values = [t.value for t in tokens[:-1]]
        assert values == [1, 2]

    def test_operators_maximal_munch(self):
        values = [t.value for t in tokenize("a<<=b>>c->d++")[:-1]]
        assert "<<=" in values and ">>" in values and "->" in values \
            and "++" in values

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"oops')

    def test_bad_char(self):
        with pytest.raises(CompileError):
            tokenize("a $ b")


class TestParser:
    def test_function_and_params(self):
        unit, _ = parse("int add(int a, int b) { return a + b; }")
        fn = unit.decls[0]
        assert isinstance(fn, ast.FuncDef)
        assert fn.name == "add"
        assert [p[0] for p in fn.params] == ["a", "b"]

    def test_struct_definition(self):
        _, structs = parse("struct P { int x; double d; char tag[4]; };")
        struct = structs["P"]
        assert struct.offsets["x"] == 0
        assert struct.offsets["d"] == 8
        assert struct.offsets["tag"] == 16
        assert struct.size == 24

    def test_struct_alignment_padding(self):
        _, structs = parse("struct Q { char c; int x; };")
        assert structs["Q"].offsets["x"] == 8
        assert structs["Q"].size == 16

    def test_pointer_and_array_types(self):
        unit, _ = parse("int **pp; double mat[3][4];")
        pp, mat = unit.decls
        assert isinstance(pp.ctype, ct.Pointer)
        assert isinstance(pp.ctype.pointee, ct.Pointer)
        assert isinstance(mat.ctype, ct.Array)
        assert mat.ctype.count == 3
        assert mat.ctype.elem.count == 4

    def test_global_initializers(self):
        unit, _ = parse('int a = 5; int arr[3] = {1,2}; char *s = "hi";')
        assert isinstance(unit.decls[0].init, ast.Num)
        assert isinstance(unit.decls[1].init, ast.InitList)
        assert isinstance(unit.decls[2].init, ast.Str)

    def test_precedence(self):
        unit, _ = parse("int f() { return 1 + 2 * 3; }")
        ret = unit.decls[0].body.stmts[0]
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_ternary_and_logical(self):
        unit, _ = parse("int f(int x) { return x > 0 && x < 9 ? 1 : 2; }")
        ret = unit.decls[0].body.stmts[0]
        assert isinstance(ret.value, ast.Cond)
        assert ret.value.cond.op == "&&"

    def test_for_with_decl(self):
        unit, _ = parse("int f() { for (int i = 0; i < 4; i++) {} return 0; }")
        loop = unit.decls[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Decl)

    def test_cast_vs_paren(self):
        unit, _ = parse("int f(int x) { return (int)x + (x); }")
        ret = unit.decls[0].body.stmts[0]
        assert isinstance(ret.value.left, ast.Cast)
        assert isinstance(ret.value.right, ast.Ident)

    def test_member_chains(self):
        unit, _ = parse(
            "struct P { int x; };"
            "int f(struct P *p) { return p->x; }")
        ret = unit.decls[0].body.stmts[0]
        assert isinstance(ret.value, ast.Member)
        assert ret.value.arrow

    def test_sizeof_forms(self):
        unit, _ = parse("int f(int x) { return sizeof(int) + sizeof(x); }")
        ret = unit.decls[0].body.stmts[0]
        assert isinstance(ret.value.left, ast.SizeofType)
        assert isinstance(ret.value.right, ast.SizeofExpr)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected"):
            parse("int f() { return 1 }")

    def test_break_outside_loop_caught_in_codegen(self):
        from repro.minic import compile_source
        with pytest.raises(CompileError, match="break"):
            compile_source("int f() { break; return 0; }")

    def test_do_while(self):
        unit, _ = parse("int f() { int i = 0; do { i++; } while (i < 3); return i; }")
        assert isinstance(unit.decls[0].body.stmts[1], ast.DoWhile)

    def test_struct_redefinition_rejected(self):
        with pytest.raises(CompileError, match="redefined"):
            parse("struct A { int x; }; struct A { int y; };")
