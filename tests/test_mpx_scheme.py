"""Intel MPX scheme tests: bounds checks, BD/BT mechanics, blow-ups."""

import pytest

from repro.errors import BoundsViolation, OutOfMemory
from repro.mpx import MPXScheme
from repro.sgx import EnclaveConfig
from tests.util import run_c


class TestDetection:
    def test_heap_overflow_detected(self):
        src = """
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            int i = 8;
            a[i] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation) as err:
            run_c(src, scheme=MPXScheme())
        assert err.value.scheme == "mpx"

    def test_stack_overflow_detected(self):
        src = """
        int main() {
            int buf[4];
            int i = 5;
            buf[i] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_global_overflow_detected(self):
        src = """
        int g[4];
        int main() { int i = 9; g[i] = 1; return 0; }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_underflow_detected(self):
        src = """
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            int i = -1;
            return a[i];
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_intra_object_precision(self):
        """MPX tracks pointer bounds, not object redzones: a pointer that
        walks from one heap object into the next is caught even if the
        target is valid memory (unlike the ASan wild-access miss)."""
        src = """
        int main() {
            char *a = (char*)malloc(16);
            char *b = (char*)malloc(16);
            a[31] = 1;    // lands inside b's allocation, OOB for a
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_bounds_travel_through_memory(self):
        """Fig. 4c lines 11/15: pointers stored to and loaded from memory
        keep their bounds via bndstx/bndldx."""
        src = """
        int *cell[1];
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            cell[0] = a;            // bndstx
            int *b = cell[0];       // bndldx
            return b[6];            // OOB through the reloaded pointer
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_bounds_travel_through_calls(self):
        src = """
        int peek(int *p, int i) { return p[i]; }
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            return peek(a, 4);
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme())

    def test_in_bounds_program_correct(self):
        src = """
        struct Node { int v; struct Node *next; };
        int main() {
            struct Node *head = (struct Node*)0;
            for (int i = 0; i < 10; i++) {
                struct Node *n = (struct Node*)malloc(sizeof(struct Node));
                n->v = i; n->next = head; head = n;
            }
            int s = 0;
            while (head) { s += head->v; head = head->next; }
            return s;
        }
        """
        value, _ = run_c(src, scheme=MPXScheme())
        assert value == sum(range(10))


class TestBoundsTables:
    def test_bt_allocated_on_pointer_store(self):
        src = """
        int *cell[1];
        int main() {
            int *a = (int*)malloc(16);
            cell[0] = a;
            return 0;
        }
        """
        scheme = MPXScheme()
        run_c(src, scheme=scheme)
        assert scheme.bounds_tables >= 1

    def test_no_pointer_stores_no_bt(self):
        """Array-streaming code (histogram-like) allocates no bounds
        tables — why Phoenix kernels are cheap under MPX (§6.2)."""
        src = """
        int main() {
            int *a = (int*)malloc(64 * sizeof(int));
            int s = 0;
            for (int i = 0; i < 64; i++) a[i] = i;
            for (int i = 0; i < 64; i++) s += a[i];
            return s;
        }
        """
        scheme = MPXScheme()
        run_c(src, scheme=scheme)
        assert scheme.bounds_tables == 0

    def test_bt_memory_overhead_reported(self):
        src = """
        int *cells[32];
        int main() {
            for (int i = 0; i < 32; i++) cells[i] = (int*)malloc(16);
            return 0;
        }
        """
        scheme = MPXScheme()
        _, vm = run_c(src, scheme=scheme)
        report = scheme.memory_overhead_report(vm)
        assert report["bounds_tables"] >= 1
        assert report["bt_reserved_bytes"] == \
            report["bounds_tables"] * scheme.bt_size

    def test_pointer_spread_allocates_many_bts(self):
        """Pointers scattered across address regions need one BT each —
        the SQLite blow-up mechanism."""
        src = """
        int main() {
            // Pointer stores into far-apart mmap'd slabs.
            for (int i = 0; i < 6; i++) {
                char **slab = (char**)malloc(300000);
                slab[0] = (char*)slab;
            }
            return 0;
        }
        """
        scheme = MPXScheme()
        run_c(src, scheme=scheme)
        assert scheme.bounds_tables >= 4

    def test_bt_blowup_crashes_small_enclave(self):
        """With a commit limit (enclave memory), BT metadata exhausts
        memory — the paper's MPX crash mode (Fig. 1, dedup in Fig. 7)."""
        src = """
        int main() {
            // Dense pointer arrays: every 8-byte slot stores a pointer, so
            // MPX needs a 32-byte BT entry per slot (4x the app data).
            for (int i = 0; i < 12; i++) {
                char **slab = (char**)malloc(65536);
                for (int j = 0; j < 8192; j++)
                    slab[j] = (char*)slab;
            }
            return 0;
        }
        """
        config = EnclaveConfig(commit_limit_bytes=3 * 1024 * 1024)
        with pytest.raises(OutOfMemory):
            run_c(src, scheme=MPXScheme(), config=config)
        # The same program fits comfortably natively.
        value, _ = run_c(src, scheme=None, config=config)
        assert value == 0
