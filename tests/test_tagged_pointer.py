"""Unit + property tests for the tagged-pointer codec (paper §3.1-3.2)."""

from hypothesis import given, strategies as st

from repro.core import (
    bounds_violated,
    extract_p,
    extract_ub,
    is_tagged,
    pointer_arith,
    specify_bounds,
    unpack,
)

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
deltas = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class TestCodec:
    def test_pack_unpack(self):
        tagged = specify_bounds(0x1000, 0x1040)
        assert extract_p(tagged) == 0x1000
        assert extract_ub(tagged) == 0x1040
        assert unpack(tagged) == (0x1000, 0x1040)

    def test_untagged_detection(self):
        assert not is_tagged(0x1234)
        assert is_tagged(specify_bounds(0x1234, 0x1300))

    def test_in_bounds_ok(self):
        tagged = specify_bounds(0x1000, 0x1040)
        assert not bounds_violated(tagged, lower=0x1000, size=8)

    def test_upper_violation(self):
        tagged = specify_bounds(0x103C, 0x1040)
        assert bounds_violated(tagged, lower=0x1000, size=8)

    def test_exactly_at_upper_is_violation(self):
        tagged = specify_bounds(0x1040, 0x1040)
        assert bounds_violated(tagged, lower=0x1000, size=1)

    def test_lower_violation(self):
        tagged = specify_bounds(0x0FF8, 0x1040)
        assert bounds_violated(tagged, lower=0x1000, size=8)

    def test_last_valid_byte(self):
        tagged = specify_bounds(0x103F, 0x1040)
        assert not bounds_violated(tagged, lower=0x1000, size=1)


class TestPointerArith:
    def test_simple_increment(self):
        tagged = specify_bounds(0x1000, 0x1040)
        moved = pointer_arith(tagged, 8)
        assert extract_p(moved) == 0x1008
        assert extract_ub(moved) == 0x1040

    def test_negative_delta_keeps_tag(self):
        """A 64-bit subtraction would borrow into the tag; clamped
        arithmetic must not (paper §3.2)."""
        tagged = specify_bounds(0x1000, 0x1040)
        moved = pointer_arith(tagged, -8)
        assert extract_ub(moved) == 0x1040
        assert extract_p(moved) == 0x0FF8

    def test_overflow_delta_cannot_corrupt_tag(self):
        """Attacker-sized deltas wrap in the low 32 bits only."""
        tagged = specify_bounds(0x1000, 0x1040)
        moved = pointer_arith(tagged, 1 << 33)
        assert extract_ub(moved) == 0x1040

    @given(p=addresses, size=st.integers(min_value=1, max_value=1 << 20),
           delta=deltas)
    def test_property_tag_preserved(self, p, size, delta):
        upper = (p + size) & 0xFFFFFFFF
        tagged = specify_bounds(p, upper)
        moved = pointer_arith(tagged, delta)
        assert extract_ub(moved) == upper
        assert extract_p(moved) == (p + delta) & 0xFFFFFFFF

    @given(p=addresses, size=st.integers(min_value=1, max_value=1 << 20))
    def test_property_pack_roundtrip(self, p, size):
        upper = (p + size) & 0xFFFFFFFF
        tagged = specify_bounds(p, upper)
        assert unpack(tagged) == (p, upper)

    @given(p=addresses)
    def test_property_int_cast_is_identity(self, p):
        """Casting tagged pointer -> int -> pointer preserves bounds — the
        §3.2 'immune to arbitrary type casts' property: the cast *is* the
        identity on the 64-bit value."""
        tagged = specify_bounds(p, (p + 64) & 0xFFFFFFFF)
        as_int = tagged & ((1 << 64) - 1)
        assert extract_ub(as_int) == extract_ub(tagged)

    @given(p=st.integers(min_value=0, max_value=0xFFFF_FF00),
           lower_pad=st.integers(min_value=0, max_value=64),
           size=st.integers(min_value=1, max_value=255),
           offset=st.integers(min_value=-512, max_value=512),
           access=st.sampled_from([1, 2, 4, 8]))
    def test_property_violation_iff_outside(self, p, lower_pad, size, offset,
                                            access):
        lower = max(0, p - lower_pad)
        upper = p + size
        tagged = specify_bounds((p + offset) & 0xFFFFFFFF, upper)
        pointer = (p + offset) & 0xFFFFFFFF
        expected = pointer < lower or pointer + access > upper
        assert bounds_violated(tagged, lower, access) == expected
