"""AddressSanitizer scheme tests: redzones, quarantine, shadow mechanics."""

import pytest

from repro.asan import ASanScheme, GRANULE, object_shadow, shadow_address
from repro.asan.shadow import granule_ok
from repro.errors import BoundsViolation, DoubleFree
from repro.memory.layout import ASAN_SHADOW_BASE, ASAN_SHADOW_SIZE
from tests.util import run_c


class TestShadowCodec:
    def test_shadow_address_mapping(self):
        assert shadow_address(0) == ASAN_SHADOW_BASE
        assert shadow_address(8) == ASAN_SHADOW_BASE + 1
        assert shadow_address(0x1000) == ASAN_SHADOW_BASE + 0x200

    def test_object_shadow_partial_tail(self):
        assert object_shadow(8) == b"\x00"
        assert object_shadow(11) == b"\x00\x03"
        assert object_shadow(16) == b"\x00\x00"

    def test_granule_ok_partial(self):
        assert granule_ok(3, address=0, size=3)
        assert not granule_ok(3, address=0, size=4)
        assert not granule_ok(3, address=2, size=2)
        assert not granule_ok(0xFA, address=0, size=1)


class TestDetection:
    def test_heap_overflow_hits_redzone(self):
        src = """
        int main() {
            char *p = (char*)malloc(16);
            p[16] = 1;      // first redzone byte
            return 0;
        }
        """
        with pytest.raises(BoundsViolation) as err:
            run_c(src, scheme=ASanScheme())
        assert err.value.scheme == "asan"

    def test_heap_underflow_hits_left_redzone(self):
        src = """
        int main() {
            char *p = (char*)malloc(16);
            char *q = p - 1;
            *q = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=ASanScheme())

    def test_partial_granule_tail(self):
        """Object of 11 bytes: byte 10 is fine, byte 11 is not."""
        ok = """
        int main() { char *p = (char*)malloc(11); p[10] = 1; return p[10]; }
        """
        bad = """
        int main() { char *p = (char*)malloc(11); p[11] = 1; return 0; }
        """
        value, _ = run_c(ok, scheme=ASanScheme())
        assert value == 1
        with pytest.raises(BoundsViolation):
            run_c(bad, scheme=ASanScheme())

    def test_stack_overflow_detected(self):
        src = """
        int main() {
            char buf[8];
            int i = 9;
            buf[i] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=ASanScheme())

    def test_global_overflow_detected(self):
        src = """
        char g[8];
        int main() { int i = 12; g[i] = 1; return 0; }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=ASanScheme())

    def test_use_after_free_detected(self):
        """The quarantine keeps freed memory poisoned (temporal safety —
        something SGXBounds does not give)."""
        src = """
        int main() {
            int *p = (int*)malloc(32);
            p[0] = 5;
            free(p);
            return p[0];     // use-after-free
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=ASanScheme())

    def test_double_free_detected(self):
        src = """
        int main() {
            int *p = (int*)malloc(32);
            free(p);
            free(p);
            return 0;
        }
        """
        with pytest.raises(DoubleFree):
            run_c(src, scheme=ASanScheme())

    def test_far_wild_access_not_guaranteed(self):
        """ASan only poisons redzones: a far-out access into another live
        mapping is a known miss (granularity limit) — document it."""
        src = """
        int main() {
            char *a = (char*)malloc(16);
            char *b = (char*)malloc(16);
            // Jump from a's buffer exactly onto b's valid bytes.
            char *wild = b;
            *wild = 1;
            return 0;
        }
        """
        value, _ = run_c(src, scheme=ASanScheme())
        assert value == 0


class TestRuntime:
    def test_shadow_reserved_at_attach(self):
        from repro.vm import VM
        scheme = ASanScheme()
        vm = VM(scheme=scheme)
        assert vm.enclave.space.reserved_bytes >= ASAN_SHADOW_SIZE

    def test_quarantine_delays_reuse(self):
        from repro.vm import VM
        scheme = ASanScheme()
        vm = VM(scheme=scheme)
        p = scheme.malloc(vm, 64)
        scheme.free(vm, p)
        q = scheme.malloc(vm, 64)
        assert q != p    # the freed block is quarantined, not recycled

    def test_quarantine_cap_evicts(self):
        from repro.vm import VM
        scheme = ASanScheme(quarantine_bytes=512)
        vm = VM(scheme=scheme)
        frees = vm.enclave.heap.total_frees
        for _ in range(20):
            scheme.free(vm, scheme.malloc(vm, 64))
        assert vm.enclave.heap.total_frees > frees   # old entries drained

    def test_libc_range_checks_shadow(self):
        src = """
        int main() {
            char *p = (char*)malloc(8);
            memset(p, 0, 32);   // spills into the redzone
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=ASanScheme())

    def test_in_bounds_program_unaffected(self):
        src = """
        int main() {
            int acc = 0;
            for (int round = 0; round < 3; round++) {
                int *p = (int*)malloc(64 * sizeof(int));
                for (int i = 0; i < 64; i++) p[i] = i;
                for (int i = 0; i < 64; i++) acc += p[i];
                free(p);
            }
            return acc / 3;
        }
        """
        value, _ = run_c(src, scheme=ASanScheme())
        assert value == sum(range(64))
