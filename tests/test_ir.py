"""Unit tests for the IR layer: builder, verifier, finalize, printer."""

import pytest

from repro.errors import IRVerifyError
from repro.ir import (
    Function,
    GlobalVar,
    IRBuilder,
    Module,
    ops,
    print_function,
    print_module,
    verify_module,
)


def _simple_fn(name="f"):
    fn = Function(name, ["x"])
    b = IRBuilder(fn, fn.block("entry"))
    return fn, b


class TestBuilder:
    def test_register_allocation(self):
        fn, b = _simple_fn()
        r1 = b.add(0, b.k(1))
        r2 = b.mul(r1, r1)
        assert r2 > r1 > 0
        assert fn.nregs == r2 + 1

    def test_constants_pooled(self):
        fn, b = _simple_fn()
        assert b.k(42) == b.k(42)
        assert b.k(42) != b.k(43)

    def test_const_encoding_negative(self):
        fn, b = _simple_fn()
        op = b.k(7)
        assert op < 0
        assert fn.consts[-op - 1] == 7


class TestFinalize:
    def test_branch_targets_resolved(self):
        fn, b = _simple_fn()
        b.jmp("next")
        b.set_block(b.new_block("next"))
        b.ret(b.k(0))
        fn.finalize()
        assert fn.code[0].t1 == fn.block_index["next"]

    def test_frame_layout(self):
        fn, b = _simple_fn()
        a1 = b.alloca(24)
        a2 = b.alloca(10, align=8)
        b.ret(None)
        fn.finalize()
        offsets = [ins.c for ins in fn.code if ins.op == ops.ALLOCA]
        assert offsets[0] == 0
        assert offsets[1] == 24
        assert fn.frame_size >= 24 + 10 + Function.RET_SLOT
        assert fn.frame_size % 8 == 0

    def test_unknown_branch_target_rejected(self):
        fn, b = _simple_fn()
        b.jmp("nowhere")
        with pytest.raises(IRVerifyError):
            fn.finalize()

    def test_clone_is_independent(self):
        fn, b = _simple_fn()
        b.ret(b.k(1))
        clone = fn.clone()
        clone.blocks[0].instrs[0].a = clone.intern_const(2)
        assert fn.consts == clone.consts[:len(fn.consts)] or True
        assert fn.blocks[0].instrs[0] is not clone.blocks[0].instrs[0]


class TestVerifier:
    def _module_with(self, fn):
        m = Module()
        m.add_function(fn)
        return m

    def test_valid_module_passes(self):
        fn, b = _simple_fn()
        b.ret(0)
        verify_module(self._module_with(fn))

    def test_missing_terminator(self):
        fn, b = _simple_fn()
        b.add(0, b.k(1))
        with pytest.raises(IRVerifyError, match="terminator"):
            verify_module(self._module_with(fn))

    def test_out_of_range_register(self):
        fn, b = _simple_fn()
        b.add(999, b.k(1))
        b.ret(0)
        with pytest.raises(IRVerifyError, match="out of range"):
            verify_module(self._module_with(fn))

    def test_terminator_mid_block(self):
        fn, b = _simple_fn()
        b.ret(0)
        b.add(0, b.k(1))
        b.ret(0)
        with pytest.raises(IRVerifyError, match="mid-block"):
            verify_module(self._module_with(fn))

    def test_unknown_global_reference(self):
        fn, b = _simple_fn()
        b.mov(b.gref("nope"))
        b.ret(0)
        with pytest.raises(IRVerifyError, match="unknown global"):
            verify_module(self._module_with(fn))

    def test_unknown_function_reference(self):
        fn, b = _simple_fn()
        b.mov(b.fref("nope"))
        b.ret(0)
        with pytest.raises(IRVerifyError, match="unknown function"):
            verify_module(self._module_with(fn))

    def test_bad_access_size(self):
        fn, b = _simple_fn()
        b.load(0, size=3)
        b.ret(0)
        with pytest.raises(IRVerifyError, match="size"):
            verify_module(self._module_with(fn))

    def test_gep_offset_not_an_operand(self):
        """GEP's byte offset is a literal, not a register reference."""
        fn, b = _simple_fn()
        b.gep(0, offset=10_000)    # way beyond any register index
        b.ret(0)
        verify_module(self._module_with(fn))


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module()
        fn, b = _simple_fn()
        b.ret(0)
        m.add_function(fn)
        fn2, b2 = _simple_fn()
        b2.ret(0)
        with pytest.raises(IRVerifyError):
            m.add_function(fn2)

    def test_string_interning(self):
        m = Module()
        var = m.add_string(b"hello")
        assert m.globals[var.name].init == b"hello\x00"
        assert var.size == 6

    def test_global_init_too_large(self):
        with pytest.raises(IRVerifyError):
            GlobalVar("g", 2, b"toolong")

    def test_stats(self):
        m = Module()
        fn, b = _simple_fn()
        b.ret(0)
        m.add_function(fn)
        stats = m.stats()
        assert stats["functions"] == 1
        assert stats["instructions"] == 1


class TestPrinter:
    def test_function_dump_mentions_blocks(self):
        fn, b = _simple_fn("pretty")
        v = b.add(0, b.k(5))
        b.store(v, 0, size=4)
        b.ret(v)
        text = print_function(fn)
        assert "define pretty" in text
        assert "entry:" in text
        assert "add" in text
        assert "u32" in text

    def test_module_dump(self):
        m = Module("demo")
        m.add_string(b"s")
        fn, b = _simple_fn()
        b.ret(0)
        m.add_function(fn)
        text = print_module(m)
        assert "; module demo" in text
        assert "global" in text
