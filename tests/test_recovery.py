"""Stateful recovery: sealing, WAL, checkpoints, replay, dedup, failover.

Unit tests for the durability ladder of :mod:`repro.recovery` plus the
fleet hooks it rides on (worker-side idempotency, supervisor crash-window
pruning).  The replay tests drive real enclave workers — compiled
recovery-enabled apps — and assert *byte identity* between recovered
state and a shadow oracle, which is the property the campaign audit
enforces at scale.
"""

import json

import pytest

from repro.fleet import CampaignConfig, EnclaveWorker, Supervisor, run_campaign
from repro.minic import compile_source
from repro.recovery import (
    CheckpointStore,
    WALRecord,
    WriteAheadLog,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.sgx import (
    EnclaveConfig,
    SealIntegrityError,
    SealRollbackError,
    SealedBlob,
    SealingModel,
    SealingService,
)
from repro.workloads.apps import memcached, sqlite_server

APP_CONFIG = EnclaveConfig(epc_bytes=2 * 1024 * 1024)

_MODULES = {}


def _worker(app, wid=0, policy="abort"):
    """A recovery-enabled enclave worker (module compiled once per app)."""
    name = app.__name__.rsplit(".", 1)[-1]
    module = _MODULES.get(name)
    if module is None:
        module = _MODULES[name] = compile_source(app.RECOVERY_SOURCE, name)
    return EnclaveWorker(wid, module, "sgxbounds", policy=policy,
                         config=APP_CONFIG)


def _snapshot(worker, app):
    messages, _ = worker.drive_control(app.snapshot_request())
    return app.parse_snapshot(messages)


# ---------------------------------------------------------------------------
class TestSealing:
    def test_round_trip_and_determinism(self):
        payload = b"enclave state" * 7
        a, b = SealingService(), SealingService()
        blob_a, cycles_a = a.seal("app:shard0", payload)
        blob_b, cycles_b = b.seal("app:shard0", payload)
        # Sealing is deterministic across services: same identity,
        # counter, payload => byte-identical blob and identical price.
        assert blob_a.mac == blob_b.mac
        assert blob_a.counter == blob_b.counter == 1
        assert cycles_a == cycles_b > 0
        out, uncycles = a.unseal("app:shard0", blob_a)
        assert out == payload
        assert uncycles > 0

    def test_cost_scales_with_payload(self):
        model = SealingModel()
        assert model.seal_cycles(4096) > model.seal_cycles(64)
        assert model.unseal_cycles(4096) > model.unseal_cycles(64)
        double = model.scaled(2.0)
        assert double.seal_cycles(1000) > model.seal_cycles(1000)

    def test_rollback_protection_rejects_stale_blob(self):
        service = SealingService()
        stale, _ = service.seal("id", b"old")
        fresh, _ = service.seal("id", b"new")
        # The monotonic counter only accepts the freshest seal.
        with pytest.raises(SealRollbackError) as exc:
            service.unseal("id", stale)
        assert exc.value.expected == fresh.counter
        assert exc.value.got == stale.counter
        assert service.unseal("id", fresh)[0] == b"new"
        assert service.stats()["rollbacks_rejected"] == 1

    def test_tampered_blob_rejected(self):
        service = SealingService()
        blob, _ = service.seal("id", b"payload")
        forged = SealedBlob(blob.identity, blob.counter,
                            blob.payload + b"x", blob.mac)
        with pytest.raises(SealIntegrityError):
            service.unseal("id", forged)
        with pytest.raises(SealIntegrityError):
            service.unseal("other-id", blob)
        assert service.stats()["integrity_failures"] == 2

    def test_rejection_still_charges_cycles(self):
        service = SealingService()
        stale, _ = service.seal("id", b"old")
        service.seal("id", b"new")
        before = service.stats()["unseal_cycles"]
        with pytest.raises(SealRollbackError):
            service.unseal("id", stale)
        assert service.stats()["unseal_cycles"] > before


# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_commit_discipline(self):
        wal = WriteAheadLog()
        s1 = wal.append(10, b"a")
        s2 = wal.append(11, b"b")
        assert (s1, s2) == (1, 2)
        assert wal.commit(10).seq == 1
        # Committing an unknown rid (deduped duplicate) is a no-op.
        assert wal.commit(99) is None
        assert wal.last_committed_seq() == 1
        assert [r.seq for r in wal.committed_after(0)] == [1]
        assert wal.drop_uncommitted() == 1
        assert [r.seq for r in wal.records] == [1]

    def test_truncate_through_checkpoint_horizon(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(i, bytes([i]))
            wal.commit(i)
        assert wal.truncate_through(3) == 3
        assert [r.seq for r in wal.records] == [4, 5]
        assert wal.truncated == 3

    def test_record_codec_round_trip(self):
        record = WALRecord(7, 1234, b"\x00payload\xff", committed=True)
        decoded = WALRecord.decode(record.encode())
        assert (decoded.seq, decoded.rid, decoded.payload) == \
            (7, 1234, b"\x00payload\xff")
        with pytest.raises(ValueError):
            WALRecord.decode(record.encode()[:10])

    def test_encode_committed_stream(self):
        wal = WriteAheadLog()
        for i in range(3):
            wal.append(i, bytes([i]) * 3)
            wal.commit(i)
        wal.append(9, b"uncommitted")
        records, _ = WriteAheadLog.decode_records(wal.encode_committed(1))
        assert [r.seq for r in records] == [2, 3]


# ---------------------------------------------------------------------------
class TestCheckpointCodec:
    def test_round_trip(self):
        records = [b"", b"r1", b"\x00" * 20]
        payload = encode_checkpoint("memcached", 42, records)
        tag, wal_seq, out = decode_checkpoint(payload)
        assert (tag, wal_seq, out) == ("memcached", 42, records)

    def test_corrupt_magic_rejected(self):
        payload = encode_checkpoint("app", 1, [b"x"])
        with pytest.raises(ValueError):
            decode_checkpoint(b"??" + payload[2:])

    def test_store_keeps_latest(self):
        store = CheckpointStore()
        service = SealingService()
        first, _ = service.seal("id", b"one")
        second, _ = service.seal("id", b"two")
        store.save("id", first, wal_seq=3, tick=10)
        store.save("id", second, wal_seq=9, tick=20)
        assert store.latest("id") is second
        assert store.wal_seq("id") == 9
        assert store.tick("id") == 20


# ---------------------------------------------------------------------------
class TestSnapshotReplay:
    """Crash at every k-th request; recovered state must be byte-identical."""

    def _run_with_crashes(self, app, requests, k, checkpoint_every=4):
        """Feed mutating requests, checkpointing every few writes and
        crashing (fresh worker + unseal/restore/replay) at every k-th;
        returns the surviving worker's canonical snapshot."""
        service = SealingService()
        store = CheckpointStore()
        wal = WriteAheadLog()
        identity = "shard"
        worker = _worker(app)
        horizon = 0
        writes = 0
        for i, payload in enumerate(requests):
            if not app.is_mutating(payload):
                continue
            seq = wal.append(i, payload)
            worker.drive_control(payload)
            wal.commit(i)
            writes += 1
            if writes % checkpoint_every == 0:
                records = _snapshot(worker, app)
                horizon = wal.last_committed_seq()
                blob, _ = service.seal(
                    identity, encode_checkpoint("app", horizon, records))
                store.save(identity, blob, horizon, i)
                wal.truncate_through(horizon)
            if writes % k == 0:
                worker = _worker(app)       # crash: all enclave state gone
                blob = store.latest(identity)
                restored = 0
                if blob is not None:
                    payload_bytes, _ = service.unseal(identity, blob)
                    _, restored, records = decode_checkpoint(payload_bytes)
                    for record in records:
                        worker.drive_control(app.restore_request(record))
                for record in wal.committed_after(restored):
                    worker.drive_control(record.payload)
        return sorted(_snapshot(worker, app))

    @pytest.mark.parametrize("app,kwargs", [
        (memcached, dict(value_size=24, set_every=2)),
        (sqlite_server, {}),
    ])
    def test_replay_matches_oracle_at_every_crash_cadence(self, app, kwargs):
        requests = app.workload(40, **kwargs) if kwargs \
            else app.workload(40)
        oracle = _worker(app)
        for payload in requests:
            if app.is_mutating(payload):
                oracle.drive_control(payload)
        expected = sorted(_snapshot(oracle, app))
        assert expected, "oracle produced no state"
        for k in (3, 5, 7):
            got = self._run_with_crashes(app, requests, k)
            assert got == expected, f"crash cadence {k} diverged"

    def test_two_seeded_runs_byte_identical(self):
        requests = memcached.workload(30, set_every=2)
        snaps = []
        for _ in range(2):
            snaps.append(self._run_with_crashes(memcached, requests, k=4))
        assert snaps[0] == snaps[1]

    def test_snapshot_restore_round_trip(self):
        worker = _worker(sqlite_server)
        for payload in sqlite_server.workload(24):
            if sqlite_server.is_mutating(payload):
                worker.drive_control(payload)
        records = _snapshot(worker, sqlite_server)
        clone = _worker(sqlite_server)
        for record in records:
            clone.drive_control(sqlite_server.restore_request(record))
        assert sorted(_snapshot(clone, sqlite_server)) == sorted(records)

    def test_control_ops_require_magic(self):
        worker = _worker(memcached)
        bogus = memcached.snapshot_request()
        bogus = bogus[:4] + b"\x00\x00\x00\x00" + bogus[8:]
        messages, _ = worker.drive_control(bogus)
        # Without the magic cookie the opcode is ignored, exactly like an
        # unknown op — a fuzzed bit-flip cannot dump enclave state.
        assert messages == []


# ---------------------------------------------------------------------------
class TestWorkerDedup:
    def test_duplicate_mutation_acked_without_reexecution(self):
        worker = _worker(memcached, policy="drop-request")
        worker.mutates = memcached.is_mutating
        payload = memcached.make_request(1, b"key-1", b"v" * 8)
        worker.submit(5, payload)
        outcomes = []
        for _ in range(200):
            outcomes.extend(worker.run_tick(5_000).outcomes)
            if outcomes:
                break
        assert outcomes == [(5, "served")]
        assert 5 in worker.applied_rids
        cycles_after_first = worker.vm.enclave.cycles()
        # Hedged re-dispatch of the same rid: acked from the dedup table,
        # no VM work, no double-apply.
        worker.submit(5, payload)
        report = worker.run_tick(5_000)
        assert report.outcomes == [(5, "served")]
        assert worker.deduped == 1
        assert worker.vm.enclave.cycles() == cycles_after_first


# ---------------------------------------------------------------------------
class _CrashStub:
    def __init__(self, wid, pages=4):
        self.wid = wid

        class _Enclave:
            def cold_start_cycles(self, model, *a, **kw):
                return model.base_cycles if hasattr(model, "base_cycles") \
                    else 0

        class _VM:
            enclave = _Enclave()

        self.vm = _VM()


class TestSupervisorPrune:
    def test_crash_window_pruned_but_lifetime_count_kept(self):
        sup = Supervisor([0], crash_loop_k=3, crash_loop_window=50)
        stub = _CrashStub(0)
        for tick in (0, 30, 100, 160, 400):
            sup.on_crash(stub, tick, "BoundsViolation")
            sup.records[0].status = "healthy"   # revive between crashes
        record = sup.records[0]
        # Stale entries outside the window are dropped as time advances…
        assert all(400 - t <= 50 for t in record.crash_ticks)
        assert len(record.crash_ticks) == 1
        # …but the lifetime total survives for reporting.
        assert record.crashes == 5
        assert sup.summary()["per_worker"][0]["crashes"] == 5

    def test_pruning_does_not_weaken_crash_loop_detection(self):
        sup = Supervisor([0], crash_loop_k=3, crash_loop_window=50)
        stub = _CrashStub(0)
        for tick in (100, 110, 120):
            sup.on_crash(stub, tick, "x")
        assert sup.records[0].status == "dead"


# ---------------------------------------------------------------------------
class TestRecoveryCampaigns:
    BASE = dict(app="memcached", policy="abort", workers=2, fault_rate=0.25,
                seed=77, size="XS", workload_kwargs=(("set_every", 2),))

    def _run(self, **kw):
        cfg = CampaignConfig(**{**self.BASE, **kw})
        return run_campaign(cfg, telemetry=None, forensics=None)

    def test_rpo_ladder(self):
        fresh = self._run(recovery="restart-fresh").recovery
        snap = self._run(recovery="snapshot", checkpoint_interval=10).recovery
        wal = self._run(recovery="snapshot+wal",
                        checkpoint_interval=10).recovery
        assert fresh["rpo"]["lost_acked_total"] > 0
        assert 0 < snap["rpo"]["lost_acked_total"] \
            <= fresh["rpo"]["lost_acked_total"]
        assert wal["rpo"]["lost_acked_total"] == 0
        assert wal["audit"]["clean"]

    def test_replica_promotion_on_death(self):
        result = self._run(recovery="replica", checkpoint_interval=10,
                           crash_loop_k=2, crash_loop_window=200)
        rec = result.recovery
        assert result.supervisor["deaths"] >= 1
        assert rec["replica"]["promotions"] >= 1
        assert rec["rpo"]["lost_acked_total"] == 0
        assert rec["audit"]["clean"]
        assert any(kind == "promoted" for _, kind, _, _ in result.events)

    def test_recovery_campaigns_are_deterministic(self):
        a = self._run(recovery="snapshot+wal", checkpoint_interval=10)
        b = self._run(recovery="snapshot+wal", checkpoint_interval=10)
        assert json.dumps(a.as_dict(), sort_keys=True) == \
            json.dumps(b.as_dict(), sort_keys=True)

    def test_default_path_has_no_recovery_surface(self):
        result = self._run()
        assert result.recovery is None
        assert "recovery" not in result.as_dict()
        assert "rto" not in result.slo
