"""Forensics subsystem tests: flight recorder, postmortems, anomalies.

The invariants the subsystem promises:

* bounded — the flight recorder is a fixed-capacity ring that evicts the
  oldest records and counts what it dropped, never grows without bound;
* deterministic — two same-seed runs produce byte-identical postmortem
  reports and event logs (the clock is simulated instructions/ticks,
  never wall time or object ids);
* zero-cost-when-off — a VM with no forensics (or a disabled handle)
  produces the exact same PerfCounters as before the subsystem existed,
  and even an *enabled* handle never charges simulated counters;
* decodable — the faulting pointer of a postmortem is decoded through
  the scheme's own metadata (tagged LBA/UB for SGXBounds, the shadow
  neighborhood for ASan, the BD/BT entry for MPX).
"""

import dataclasses
import json

import pytest

from repro.asan import ASanScheme
from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation
from repro.fleet.campaign import CampaignConfig, run_campaign
from repro.forensics import (
    AnomalyMonitor,
    CrashLoopPrecursorDetector,
    EPCThrashDetector,
    FlightRecorder,
    Forensics,
    LatencyRegressionDetector,
    render_postmortem,
)
from repro.harness.runner import run_workload
from repro.mpx import MPXScheme
from repro.sgx.counters import COUNTER_FIELDS
from repro.telemetry import Telemetry, flame_rows
from repro.telemetry.tracer import SpanTracer
from repro.workloads import get
from repro.workloads.netsim import NetworkSim
from tests.util import run_c

OVERFLOW_SRC = """
int main() {
    int *a = (int*)malloc(8 * sizeof(int));
    a[0] = 7;
    return a[9];
}
"""


def _crash(scheme, **scheme_kwargs):
    """Run the overflow program under ``scheme`` with forensics attached;
    returns the Forensics handle holding the captured postmortem."""
    forensics = Forensics()
    with pytest.raises(BoundsViolation):
        run_c(OVERFLOW_SRC, scheme=scheme(**scheme_kwargs),
              forensics=forensics)
    assert len(forensics.postmortems) == 1
    return forensics


# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_bounded_and_dropped_counted(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("tick", ts=i, cat="test", n=i)
        assert len(rec) == 8
        assert rec.total == 20
        assert rec.dropped == 12
        # Oldest evicted: the retained window is the last 8 records.
        seqs = [e.seq for e in rec.last(100)]
        assert seqs == list(range(12, 20))

    def test_filters(self):
        rec = FlightRecorder(capacity=64)
        rec.record("dispatch", ts=1, cat="fleet", rid=1, wid=0)
        rec.record("dispatch", ts=2, cat="fleet", rid=2, wid=1)
        rec.record("violation", ts=3, cat="scheme", rid=1, wid=0)
        assert len(rec.events(kind="dispatch")) == 2
        assert len(rec.events(cat="scheme")) == 1
        assert [e.kind for e in rec.events(rid=1)] == \
            ["dispatch", "violation"]
        assert len(rec.events(wid=1)) == 1
        assert len(rec.events(kind="dispatch", last=1)) == 1

    def test_jsonl_and_text_render(self):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record("e", ts=i, cat="c", payload=i)
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 4
        for line in lines:
            row = json.loads(line)
            assert row["kind"] == "e"
            assert list(row) == sorted(row)   # sorted keys
        text = rec.render_text()
        assert "4 of 6 records retained" in text
        assert "dropped 2" in text

    def test_empty_recorder_valid_artifacts(self):
        rec = FlightRecorder(capacity=4)
        assert rec.to_jsonl() == ""
        assert "0 of 0 records retained" in rec.render_text()


# ---------------------------------------------------------------------------
class TestPointerDecode:
    def test_sgxbounds_tagged_decode(self):
        forensics = _crash(SGXBoundsScheme)
        pointer = forensics.postmortems[0]["pointer"]
        assert pointer["scheme"] == "sgxbounds"
        lower, upper = pointer["bounds"]
        assert upper > lower
        assert pointer["object_bytes"] == upper - lower
        # The LB word lives *at* the UB address (paper §3.1) and must
        # round-trip back to the lower bound.
        assert pointer["lower_bound_address"] == upper
        assert pointer["lower_bound_word"] == lower
        assert pointer["overflow_bytes"] > 0

    def test_asan_shadow_window(self):
        forensics = _crash(ASanScheme)
        pointer = forensics.postmortems[0]["pointer"]
        assert pointer["scheme"] == "asan"
        window = pointer["shadow_window"]
        faulting = [g for g in window if g["faulting"]]
        assert len(faulting) == 1
        # The faulting granule is poisoned (a redzone or partial), and
        # the window shows addressable granules inside the object.
        assert faulting[0]["meaning"] != "addressable"
        meanings = {g["meaning"] for g in window}
        assert any(m == "addressable" or m.startswith("partial")
                   for m in meanings)

    def test_mpx_bounds_table_entry(self):
        # Spilling a pointer to memory forces a bndstx, which allocates
        # a bounds table covering the heap region of the fault.
        src = """
        int main() {
            int **box = (int**)malloc(4 * sizeof(int*));
            int *a = (int*)malloc(8 * sizeof(int));
            box[0] = a;
            int *b = box[0];
            return b[9];
        }
        """
        forensics = Forensics()
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=MPXScheme(), forensics=forensics)
        pointer = forensics.postmortems[0]["pointer"]
        assert pointer["scheme"] == "mpx"
        lower, upper = pointer["register_bounds"]
        assert upper > lower
        assert pointer["bounds_tables_allocated"] >= 1
        entry = pointer["bounds_table"]
        # The BD entry covering the faulting heap region points at a live
        # bounds table; the faulting address's own slot never had a
        # pointer spilled to it, so bndldx's view of it is INIT.
        assert entry is not None and entry["table"]
        assert entry["bd_entry"] > 0
        assert entry["init"] is True
        assert entry["lower"] == 0 and entry["upper"] == 0

    def test_stack_has_source_locations(self):
        forensics = _crash(SGXBoundsScheme)
        report = forensics.postmortems[0]
        stack = report["stack"]
        assert stack and stack[-1]["function"] == "main"
        assert any(frame["line"] > 0 for frame in stack)
        text = render_postmortem(report)
        assert "stack (innermost first):" in text
        assert "#0 main (line" in text


# ---------------------------------------------------------------------------
class TestAnomalyDetectors:
    def test_epc_thrash_trigger_and_hysteresis(self):
        det = EPCThrashDetector(window=4, faults_per_tick=100)
        total, hits = 0, []
        for tick in range(12):
            total += 500   # way past 100/tick
            hit = det.observe(tick, total)
            if hit:
                hits.append((tick, hit))
        assert len(hits) == 1   # edge-triggered, not per tick
        assert hits[0][1]["rate_per_tick"] >= 100
        # Quiet period drops the windowed rate below half the threshold,
        # re-arming the detector; renewed thrash fires a second alert.
        for tick in range(12, 24):
            det.observe(tick, total)   # zero delta
        refired = []
        for tick in range(24, 40):
            total += 500
            hit = det.observe(tick, total)
            if hit:
                refired.append(hit)
        assert len(refired) == 1

    def test_epc_thrash_no_trigger_below_threshold(self):
        det = EPCThrashDetector(window=4, faults_per_tick=100)
        total = 0
        for tick in range(20):
            total += 10
            assert det.observe(tick, total) is None

    def test_latency_regression_trigger(self):
        det = LatencyRegressionDetector(window=4, factor=4.0, min_served=1)
        for tick in range(4):
            assert det.observe(tick, 1000, served=10) is None
        hit = det.observe(4, 8000, served=10)
        assert hit is not None
        assert hit["ratio_x100"] == 800
        # Alerting: no duplicate alert while still regressed.
        assert det.observe(5, 8000, served=10) is None

    def test_latency_regression_no_trigger_flat(self):
        det = LatencyRegressionDetector(window=4, factor=4.0, min_served=1)
        for tick in range(20):
            assert det.observe(tick, 1000 + (tick % 2), served=10) is None

    def test_crash_loop_precursor(self):
        det = CrashLoopPrecursorDetector(window=10, precursor_k=2)
        assert det.on_crash(0, wid=1) is None
        hit = det.on_crash(5, wid=1)
        assert hit is not None and hit["crashes_in_window"] == 2
        # One alert per episode inside the window.
        assert det.on_crash(7, wid=1) is None
        # Crashes far apart never fire.
        det2 = CrashLoopPrecursorDetector(window=10, precursor_k=2)
        assert det2.on_crash(0, wid=1) is None
        assert det2.on_crash(50, wid=1) is None

    def test_monitor_records_alerts(self):
        rec = FlightRecorder(capacity=32)
        monitor = AnomalyMonitor(rec)
        monitor.on_crash(0, wid=3)
        monitor.on_crash(1, wid=3)
        assert monitor.summary() == {
            "total": 1, "by_detector": {"crash_loop_precursor": 1}}
        alerts = rec.events(kind="alert")
        assert len(alerts) == 1 and alerts[0].cat == "anomaly"


# ---------------------------------------------------------------------------
class TestZeroOverhead:
    def test_counters_identical_absent_disabled_enabled(self):
        absent = run_workload(get("histogram"), "sgxbounds", size="XS",
                              threads=1)
        disabled = run_workload(get("histogram"), "sgxbounds", size="XS",
                                threads=1, forensics=Forensics(enabled=False))
        enabled = run_workload(get("histogram"), "sgxbounds", size="XS",
                               threads=1, forensics=Forensics())
        for field in COUNTER_FIELDS:
            assert absent.counters[field] == disabled.counters[field]
            assert absent.counters[field] == enabled.counters[field]
        assert absent.result == enabled.result

    def test_campaign_results_identical_with_forensics(self):
        cfg = CampaignConfig(app="memcached", policy="drop-request",
                             workers=2, fault_rate=0.3, seed=77, size="XS")
        off = run_campaign(cfg).as_dict()
        on = run_campaign(cfg, forensics=Forensics()).as_dict()
        # Forensics adds exactly two summary keys; everything the
        # simulation computed is unchanged.
        forensics_summary = on.pop("forensics")
        assert forensics_summary["events_recorded"] > 0
        on["slo"].pop("alerts")
        assert json.dumps(off, sort_keys=True) == \
            json.dumps(on, sort_keys=True)


# ---------------------------------------------------------------------------
class TestDeterminism:
    def _campaign(self):
        forensics = Forensics()
        cfg = CampaignConfig(app="memcached", policy="abort", workers=2,
                             fault_rate=0.3, seed=1234, size="XS")
        run_campaign(cfg, forensics=forensics)
        return forensics

    def test_two_runs_byte_identical(self):
        a, b = self._campaign(), self._campaign()
        assert a.postmortems, "abort campaign must capture a postmortem"
        assert json.dumps(a.postmortems, sort_keys=True) == \
            json.dumps(b.postmortems, sort_keys=True)
        assert a.recorder.to_jsonl() == b.recorder.to_jsonl()
        assert json.dumps(a.summary(), sort_keys=True) == \
            json.dumps(b.summary(), sort_keys=True)
        assert render_postmortem(a.postmortems[0]) == \
            render_postmortem(b.postmortems[0])

    def test_postmortem_correlates_request_events(self):
        forensics = self._campaign()
        report = forensics.postmortems[0]
        rid = report["request"]["rid"]
        assert rid is not None
        kinds = {e["kind"] for e in report["events"]
                 if e.get("rid") == rid}
        # The balancer's dispatch and the in-VM recv both carry the
        # fleet-wide rid — end-to-end correlation.
        assert "dispatch" in kinds
        assert "request_recv" in kinds
        assert report["request"]["preview_hex"]

    def test_postmortems_bounded(self):
        forensics = Forensics(max_postmortems=1)
        cfg = CampaignConfig(app="memcached", policy="abort", workers=2,
                             fault_rate=0.3, seed=1234, size="XS")
        result = run_campaign(cfg, forensics=forensics)
        assert result.crashes > 1
        assert len(forensics.postmortems) == 1
        assert forensics.postmortems_dropped == result.crashes - 1


# ---------------------------------------------------------------------------
class TestNetSimCorrelation:
    def test_push_returns_mid_and_retry_records_carry_it(self):
        forensics = Forensics()
        net = NetworkSim(retry_limit=1)
        net.forensics = forensics
        conn = net.connect()
        mid = net.push(conn, b"req")
        assert isinstance(mid, int)
        assert net.recv(conn, 64) == b"req"
        assert net.last_recv_mid == mid
        # First failure retries, second exhausts the budget.
        assert net.fail_request(conn, b"req") is True
        assert net.recv(conn, 64) == b"req"
        assert net.fail_request(conn, b"req") is False
        retries = forensics.recorder.events(kind="net_retry")
        errors = forensics.recorder.events(kind="net_error")
        assert len(retries) == 1 and retries[0].detail["mid"] == mid
        assert retries[0].detail["attempt"] == 1
        assert len(errors) == 1 and errors[0].detail["mid"] == mid

    def test_netsim_clock_stamps_timestamps(self):
        forensics = Forensics()
        net = NetworkSim(retry_limit=1)
        net.forensics = forensics
        net.clock = lambda: 4242
        conn = net.connect(b"x")
        net.recv(conn, 64)
        net.fail_request(conn, b"x")
        assert forensics.recorder.events(kind="net_retry")[0].ts == 4242


# ---------------------------------------------------------------------------
class TestTelemetryHardening:
    def test_flame_table_limit_zero_and_negative(self):
        telemetry = Telemetry()
        run_workload(get("histogram"), "sgxbounds", size="XS", threads=1,
                     telemetry=telemetry)
        empty = telemetry.flame_table(limit=0)
        assert isinstance(empty, str) and "function" in empty
        assert flame_rows(telemetry.functions.snapshot(), limit=0) == []
        assert flame_rows(telemetry.functions.snapshot(), limit=-5) == []
        full = flame_rows(telemetry.functions.snapshot(), limit=None)
        assert full

    def test_overflowed_tracer_exports_and_counts_drops(self):
        telemetry = Telemetry()
        telemetry.tracer = SpanTracer(max_events=4)
        for i in range(10):
            telemetry.tracer.begin(0, f"f{i}", ts=i)
            telemetry.tracer.end(0, f"f{i}", ts=i + 1)
        doc = telemetry.chrome_trace()
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["dropped_events"] == \
            telemetry.tracer.dropped > 0
        json.dumps(doc)   # valid strict JSON
        counter = telemetry.registry.counter("trace.dropped_events")
        assert counter.value == telemetry.tracer.dropped
        # Idempotent: re-export does not double-count.
        telemetry.chrome_trace()
        assert counter.value == telemetry.tracer.dropped

    def test_empty_tracer_exports_valid_trace(self):
        telemetry = Telemetry()
        doc = telemetry.chrome_trace()
        assert doc["traceEvents"] == []
        json.dumps(doc)
        assert telemetry.registry.counter("trace.dropped_events").value == 0
