"""Application case-study tests (paper §7)."""

import pytest

from repro.harness.runner import run_server, run_workload
from repro.workloads.apps import apache, memcached, nginx, sqlite_kv
from repro.workloads.netsim import ERROR_MARKER, NetworkSim
from repro.workloads.registry import Workload


def _sqlite(size="XS", scheme="native"):
    workload = Workload("sqlite", "apps", sqlite_kv.SOURCE,
                        sizes=sqlite_kv.SIZES)
    return run_workload(workload, scheme, size=size)


class TestSQLite:
    def test_speedtest_runs(self):
        result = _sqlite()
        assert result.ok
        assert result.result > 0

    def test_same_answer_under_every_scheme(self):
        base = _sqlite()
        for scheme in ("sgxbounds", "asan", "mpx"):
            r = _sqlite(scheme=scheme)
            assert r.ok and r.result == base.result, scheme

    def test_pointer_intensity_shows_in_mpx_tables(self):
        r = _sqlite(size="S", scheme="mpx")
        assert r.scheme_report["bounds_tables"] >= 1


class TestMemcached:
    def _serve(self, requests, scheme="native", **kw):
        return run_server(memcached.SOURCE, [requests], scheme,
                          len(requests), name="memcached", **kw)

    def test_set_get_roundtrip(self):
        requests = [
            memcached.make_request(1, b"alpha", b"value-1"),
            memcached.make_request(2, b"alpha"),
            memcached.make_request(2, b"missing"),
        ]
        r = self._serve(requests)
        assert r.ok and r.result == 3
        sent = r.net.sent(0)
        assert sent[0] == b"S"
        assert sent[1] == b"value-1"
        assert sent[2] == b"N"

    def test_workload_served_under_all_schemes(self):
        requests = memcached.workload(60)
        outputs = {}
        for scheme in ("native", "sgxbounds", "asan", "mpx"):
            r = self._serve(requests, scheme)
            assert r.ok, scheme
            outputs[scheme] = (r.result, r.net.sent(0))
        assert len({str(v) for v in outputs.values()}) == 1

    def test_cve_2011_4971_detected(self):
        requests = memcached.workload(4) + [memcached.cve_2011_4971_request()]
        native = self._serve(requests)
        assert native.ok       # unprotected: silent corruption, keeps going
        for scheme in ("sgxbounds", "asan", "mpx"):
            r = self._serve(requests, scheme)
            assert r.crashed == "BoundsViolation", scheme

    def test_cve_dropped_in_boundless_mode(self):
        """Boundless SGXBounds clamps the copy and the server lives on."""
        requests = memcached.workload(4) + [memcached.cve_2011_4971_request()] \
            + memcached.workload(4)
        r = self._serve(requests, "sgxbounds",
                        scheme_kwargs={"boundless": True})
        assert r.ok and r.result == len(requests)


class TestApache:
    def test_multithreaded_serving(self):
        requests = apache.workload(40)
        by_conn = [requests[i * 10:(i + 1) * 10] for i in range(4)]
        r = run_server(apache.SOURCE, by_conn, "native", 40, threads=4,
                       name="apache")
        assert r.ok and r.result == 40

    def test_honest_heartbeat_echoes(self):
        requests = [apache.heartbeat(b"hello-hb")]
        r = run_server(apache.SOURCE, [requests], "native", 1, threads=1,
                       name="apache")
        assert r.net.sent(0)[0].startswith(b"hello-hb")

    def test_heartbleed_leaks_natively(self):
        requests = [apache.heartbleed_request()]
        r = run_server(apache.SOURCE, [requests], "native", 1, threads=1,
                       name="apache")
        assert r.ok
        assert b"SSSS" in r.net.sent(0)[0]

    def test_heartbleed_detected_by_all_schemes(self):
        requests = [apache.heartbleed_request()]
        for scheme in ("sgxbounds", "asan", "mpx"):
            r = run_server(apache.SOURCE, [requests], scheme, 1, threads=1,
                           name="apache")
            assert r.crashed == "BoundsViolation", scheme

    def test_heartbleed_boundless_zeroes_the_reply(self):
        """Paper: 'copies zeros into the reply message ... preventing
        confidential data leaks while allowing Apache to continue'."""
        requests = [apache.heartbleed_request(), apache.static_get()]
        r = run_server(apache.SOURCE, [requests], "sgxbounds", 2, threads=1,
                       scheme_kwargs={"boundless": True}, name="apache")
        assert r.ok and r.result == 2
        reply = r.net.sent(0)[0]
        assert b"SSSS" not in reply
        assert reply.endswith(b"\x00" * 64)    # zero-filled tail

    def test_sgxbounds_page_rounding_memory_effect(self):
        """§7: Apache's page-aligned allocations + 4 metadata bytes push
        SGXBounds into the next size class — visible extra memory,
        unlike the ~0 overhead elsewhere."""
        requests = apache.workload(24)
        native = run_server(apache.SOURCE, [requests], "native", 24,
                            threads=1, name="apache")
        sgxb = run_server(apache.SOURCE, [requests], "sgxbounds", 24,
                          threads=1, name="apache")
        assert sgxb.ok and native.ok
        assert sgxb.peak_reserved > native.peak_reserved


class TestViolationPolicies:
    """The CVE attacks under each violation policy (tentpole acceptance)."""

    def test_heartbleed_abort_still_raises(self):
        r = run_server(apache.SOURCE, [[apache.heartbleed_request()]],
                       "sgxbounds", 1, threads=1, name="apache",
                       policy="abort")
        assert r.crashed == "BoundsViolation"
        assert r.violation is not None
        assert r.violation["policy"] == "abort"
        assert r.violation["outcome"] == "aborted"

    def test_heartbleed_boundless_leaks_nothing(self):
        requests = [apache.heartbleed_request(), apache.static_get()]
        r = run_server(apache.SOURCE, [requests], "sgxbounds", 2, threads=1,
                       name="apache", policy="boundless")
        assert r.ok and r.result == 2
        assert b"SSSS" not in r.net.sent(0)[0]

    def test_heartbleed_drop_request_server_survives(self):
        requests = [apache.heartbeat(b"honest-1"),
                    apache.heartbleed_request(),
                    apache.heartbeat(b"honest-2")]
        r = run_server(apache.SOURCE, [requests], "sgxbounds", 3, threads=1,
                       name="apache", policy="drop-request")
        assert r.ok
        sent = r.net.sent(0)
        # Honest heartbeats echoed, attack turned into an error marker,
        # and nothing leaked.
        assert sent[0].startswith(b"honest-1")
        assert ERROR_MARKER in sent
        assert all(b"SSSS" not in m for m in sent)
        assert r.resilience["dropped_requests"] == 1
        assert r.resilience["net"]["errors"] == 1

    def test_heartbleed_log_and_continue_detects_but_leaks(self):
        """Audit mode: the violation is recorded with full context while
        the leak proceeds as it would uninstrumented."""
        r = run_server(apache.SOURCE, [[apache.heartbleed_request()]],
                       "sgxbounds", 1, threads=1, name="apache",
                       policy="log-and-continue")
        assert r.ok
        # Secret bytes leak (layout shifts by the 4-byte metadata word, so
        # the secret may be truncated vs the native run — but it's there).
        assert b"SSS" in r.net.sent(0)[0]
        assert r.violation is not None
        assert r.violation["outcome"] == "logged"
        assert r.violation["access"] == "read"

    def test_memcached_cve_drop_request_survives(self):
        requests = (memcached.workload(4)
                    + [memcached.cve_2011_4971_request()]
                    + memcached.workload(4))
        r = run_server(memcached.SOURCE, [requests], "sgxbounds",
                       len(requests), name="memcached",
                       policy="drop-request")
        assert r.ok
        assert r.resilience["dropped_requests"] == 1
        # All benign requests answered; only the attack became an error.
        stats = r.resilience["net"]
        assert stats["responses"] == len(requests) - 1
        assert stats["errors"] == 1

    def test_nginx_cve_drop_request_survives(self):
        requests = [nginx.get_request(), nginx.cve_2013_2028_request(),
                    nginx.get_request()]
        r = run_server(nginx.SOURCE, [requests], "sgxbounds", 3,
                       name="nginx", policy="drop-request")
        assert r.ok
        assert r.resilience["dropped_requests"] == 1
        assert r.resilience["net"]["responses"] == 2

    def test_drop_request_clients_can_retry(self):
        net = NetworkSim(retry_limit=1, seed=9)
        requests = [memcached.make_request(1, b"k", b"v"),
                    memcached.cve_2011_4971_request(),
                    memcached.make_request(2, b"k")]
        r = run_server(memcached.SOURCE, [requests], "sgxbounds", 3,
                       name="memcached", policy="drop-request", net=net)
        assert r.ok
        stats = r.resilience["net"]
        assert stats["retries"] == 1      # attack retried once...
        assert stats["failed"] == 1       # ...then abandoned
        assert r.resilience["dropped_requests"] == 2


class TestNginx:
    def test_static_pages_served(self):
        requests = [nginx.get_request()] * 5
        r = run_server(nginx.SOURCE, [requests], "native", 5, name="nginx")
        assert r.ok and r.result == 5
        assert all(len(m) == 2048 for m in r.net.sent(0))

    def test_honest_chunk_upload(self):
        requests = [nginx.chunk_request(b"x" * 32)]
        r = run_server(nginx.SOURCE, [requests], "native", 1, name="nginx")
        assert r.ok
        assert r.net.sent(0)[0] == b"OK"

    def test_cve_2013_2028_crashes_native(self):
        requests = [nginx.cve_2013_2028_request()]
        r = run_server(nginx.SOURCE, [requests], "native", 1, name="nginx")
        assert not r.ok    # smashed frame: crash/hijack

    def test_cve_detected_by_all_schemes(self):
        requests = [nginx.cve_2013_2028_request()]
        for scheme in ("sgxbounds", "asan", "mpx"):
            r = run_server(nginx.SOURCE, [requests], scheme, 1, name="nginx")
            assert r.crashed == "BoundsViolation", scheme

    def test_cve_dropped_in_boundless_mode(self):
        requests = ([nginx.get_request(), nginx.cve_2013_2028_request(),
                     nginx.get_request()])
        r = run_server(nginx.SOURCE, [requests], "sgxbounds", 3,
                       scheme_kwargs={"boundless": True}, name="nginx")
        assert r.ok and r.result == 3
