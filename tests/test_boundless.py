"""Boundless-memory tests (paper §4.2): failure-oblivious overlay."""

import pytest

from repro.core import BoundlessCache, SGXBoundsScheme
from repro.vm import VM
from tests.util import run_c


def run_boundless(src, **kw):
    scheme = SGXBoundsScheme(boundless=True)
    value, vm = run_c(src, scheme=scheme, **kw)
    return value, vm, scheme


class TestOverlaySemantics:
    def test_oob_write_does_not_corrupt_neighbour(self):
        """The central §4.2 property: the overflow goes to the overlay, so
        the adjacent object is untouched and execution continues."""
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            int *b = (int*)malloc(4 * sizeof(int));
            b[0] = 777;
            for (int i = 0; i <= 8; i++) a[i] = -1;   // way past a's end
            return b[0];
        }
        """
        value, _, scheme = run_boundless(src)
        assert value == 777
        assert scheme.violations > 0

    def test_oob_read_returns_zero(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[0] = 123;
            return a[100];    // failure-oblivious read: zeros
        }
        """
        value, _, _ = run_boundless(src)
        assert value == 0

    def test_oob_read_after_oob_write_sees_value(self):
        """Boundless blocks behave like 'boundless' object memory: an OOB
        write followed by an OOB read at the same address round-trips."""
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[10] = 4242;
            return a[10];
        }
        """
        value, _, _ = run_boundless(src)
        assert value == 4242

    def test_in_bounds_results_identical_to_failstop(self):
        src = """
        int main() {
            int *a = (int*)malloc(16 * sizeof(int));
            int s = 0;
            for (int i = 0; i < 16; i++) a[i] = i * 3;
            for (int i = 0; i < 16; i++) s += a[i];
            free(a);
            return s;
        }
        """
        strict, _ = run_c(src, scheme=SGXBoundsScheme())
        loose, _, _ = run_boundless(src)
        assert strict == loose == sum(i * 3 for i in range(16))

    def test_giant_negative_size_bug_survives(self):
        """Integer-overflow-sized OOB spans must not exhaust memory — the
        LRU cap bounds the overlay (paper: gigabytes of OOB writes)."""
        src = """
        int main() {
            char *p = (char*)malloc(16);
            // Walk megabytes past the end, 4KB strides.
            for (uint off = 16; off < 4000000; off += 4096) p[off] = 1;
            return 7;
        }
        """
        value, vm, scheme = run_boundless(src)
        assert value == 7
        stats = scheme.overlay.stats()
        assert stats["chunks_live"] <= scheme.overlay.capacity_chunks

    def test_lru_eviction_recycles_chunks(self):
        cache = BoundlessCache(capacity_bytes=4096, chunk_size=1024)
        vm = VM(scheme=SGXBoundsScheme(boundless=True))
        for i in range(10):
            cache.translate(vm, 0x900000 + i * 2048, 8, is_write=True)
        assert cache.evictions >= 6
        assert len(cache._chunks) <= cache.capacity_chunks


class _FakeThread:
    def __init__(self, tid):
        self.tid = tid


class TestEvictionPinning:
    """Regression: a >1 MiB OOB sweep evicting the overlay must never
    recycle the chunk another thread was just handed an address into."""

    def _cache_and_vm(self, capacity_chunks=4):
        cache = BoundlessCache(capacity_bytes=capacity_chunks * 1024,
                               chunk_size=1024)
        vm = VM(scheme=SGXBoundsScheme(boundless=True))
        return cache, vm

    def test_eviction_skips_concurrently_held_chunk(self):
        cache, vm = self._cache_and_vm(capacity_chunks=4)
        base = 0x900000
        key_of = lambda addr: addr // cache.chunk_size
        # Thread 1 is handed a chunk for `base` and is "mid-access".
        vm.current = _FakeThread(1)
        cache.translate(vm, base, 8, is_write=True)
        held = key_of(base)
        # Thread 2 sweeps far past capacity; LRU would evict thread 1's
        # chunk first (it is the oldest), pinning must skip it.
        vm.current = _FakeThread(2)
        for i in range(1, 12):
            cache.translate(vm, base + i * 2048, 8, is_write=True)
        assert held in cache._chunks
        assert cache.evictions >= 7

    def test_all_pinned_falls_back_to_lru(self):
        cache, vm = self._cache_and_vm(capacity_chunks=1)
        vm.current = _FakeThread(1)
        cache.translate(vm, 0x900000, 8, is_write=True)
        # Same thread moves on: its pin migrates to the new chunk, the old
        # one is evictable even though every chunk belongs to *some* pin.
        cache.translate(vm, 0x902000, 8, is_write=True)
        assert cache.evictions == 1
        assert len(cache._chunks) == 1

    def test_read_after_eviction_falls_back_to_zero_page(self):
        cache, vm = self._cache_and_vm(capacity_chunks=2)
        vm.current = _FakeThread(1)
        addr = 0x900000
        spot = cache.translate(vm, addr, 8, is_write=True)
        vm.space.write_u32(spot, 0xDEAD)
        # Force the chunk out.
        for i in range(1, 4):
            cache.translate(vm, addr + i * 2048, 8, is_write=True)
        assert addr // cache.chunk_size not in cache._chunks
        readback = cache.translate(vm, addr, 4, is_write=False)
        zero = cache.zero_page(vm)
        assert zero <= readback < zero + 4096
        assert vm.space.read_u32(readback) == 0

    def test_translate_without_running_thread(self):
        """Harness code calls translate() with no thread scheduled (the
        test above does too) — tid -1 must work."""
        cache, vm = self._cache_and_vm()
        assert vm.current is None
        spot = cache.translate(vm, 0x900000, 8, is_write=True)
        assert spot != 0

    def test_two_thread_oob_sweep_end_to_end(self):
        """Two threads hammering the overlay concurrently: every OOB read
        observes either its own written value or zeros — never another
        chunk's bytes (the pre-fix failure mode)."""
        src = """
        int worker(int who) {
            char *p = (char*)malloc(8);
            int bad = 0;
            for (uint off = 64; off < 2200000; off += 1024) {
                p[off] = 7;
                int got = p[off];
                if (got != 7 && got != 0) bad++;
            }
            return bad;
        }
        int main() {
            int t1 = spawn(worker, 1);
            int t2 = spawn(worker, 2);
            return join(t1) + join(t2);
        }
        """
        value, _, scheme = run_boundless(src)
        assert value == 0
        assert scheme.overlay.evictions > 0


class TestErrnoStyleWrappers:
    def test_recv_into_small_buffer_returns_error(self):
        """Paper §5.1: libc wrappers return an error code (EINVAL) instead
        of going failure-oblivious, letting servers drop bad requests."""
        from repro.workloads.netsim import NetworkSim   # noqa: deferred
        src = """
        int main() {
            char buf[16];
            int r = net_recv(0, buf, 64);   // claims more than buf holds
            if (r < 0) return 99;           // EINVAL path
            return r;
        }
        """
        scheme = SGXBoundsScheme(boundless=True)
        from tests.util import build
        from repro.vm import VM as _VM
        module = build(src, scheme)
        vm = _VM(scheme=scheme)
        vm.net = NetworkSim()
        vm.net.connect(b"X" * 64)
        vm.load(module)
        value = vm.run("main")
        assert value == 99
