"""Boundless-memory tests (paper §4.2): failure-oblivious overlay."""

import pytest

from repro.core import BoundlessCache, SGXBoundsScheme
from repro.vm import VM
from tests.util import run_c


def run_boundless(src, **kw):
    scheme = SGXBoundsScheme(boundless=True)
    value, vm = run_c(src, scheme=scheme, **kw)
    return value, vm, scheme


class TestOverlaySemantics:
    def test_oob_write_does_not_corrupt_neighbour(self):
        """The central §4.2 property: the overflow goes to the overlay, so
        the adjacent object is untouched and execution continues."""
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            int *b = (int*)malloc(4 * sizeof(int));
            b[0] = 777;
            for (int i = 0; i <= 8; i++) a[i] = -1;   // way past a's end
            return b[0];
        }
        """
        value, _, scheme = run_boundless(src)
        assert value == 777
        assert scheme.violations > 0

    def test_oob_read_returns_zero(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[0] = 123;
            return a[100];    // failure-oblivious read: zeros
        }
        """
        value, _, _ = run_boundless(src)
        assert value == 0

    def test_oob_read_after_oob_write_sees_value(self):
        """Boundless blocks behave like 'boundless' object memory: an OOB
        write followed by an OOB read at the same address round-trips."""
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[10] = 4242;
            return a[10];
        }
        """
        value, _, _ = run_boundless(src)
        assert value == 4242

    def test_in_bounds_results_identical_to_failstop(self):
        src = """
        int main() {
            int *a = (int*)malloc(16 * sizeof(int));
            int s = 0;
            for (int i = 0; i < 16; i++) a[i] = i * 3;
            for (int i = 0; i < 16; i++) s += a[i];
            free(a);
            return s;
        }
        """
        strict, _ = run_c(src, scheme=SGXBoundsScheme())
        loose, _, _ = run_boundless(src)
        assert strict == loose == sum(i * 3 for i in range(16))

    def test_giant_negative_size_bug_survives(self):
        """Integer-overflow-sized OOB spans must not exhaust memory — the
        LRU cap bounds the overlay (paper: gigabytes of OOB writes)."""
        src = """
        int main() {
            char *p = (char*)malloc(16);
            // Walk megabytes past the end, 4KB strides.
            for (uint off = 16; off < 4000000; off += 4096) p[off] = 1;
            return 7;
        }
        """
        value, vm, scheme = run_boundless(src)
        assert value == 7
        stats = scheme.overlay.stats()
        assert stats["chunks_live"] <= scheme.overlay.capacity_chunks

    def test_lru_eviction_recycles_chunks(self):
        cache = BoundlessCache(capacity_bytes=4096, chunk_size=1024)
        vm = VM(scheme=SGXBoundsScheme(boundless=True))
        for i in range(10):
            cache.translate(vm, 0x900000 + i * 2048, 8, is_write=True)
        assert cache.evictions >= 6
        assert len(cache._chunks) <= cache.capacity_chunks


class TestErrnoStyleWrappers:
    def test_recv_into_small_buffer_returns_error(self):
        """Paper §5.1: libc wrappers return an error code (EINVAL) instead
        of going failure-oblivious, letting servers drop bad requests."""
        from repro.workloads.netsim import NetworkSim   # noqa: deferred
        src = """
        int main() {
            char buf[16];
            int r = net_recv(0, buf, 64);   // claims more than buf holds
            if (r < 0) return 99;           // EINVAL path
            return r;
        }
        """
        scheme = SGXBoundsScheme(boundless=True)
        from tests.util import build
        from repro.vm import VM as _VM
        module = build(src, scheme)
        vm = _VM(scheme=scheme)
        vm.net = NetworkSim()
        vm.net.connect(b"X" * 64)
        vm.load(module)
        value = vm.run("main")
        assert value == 99
