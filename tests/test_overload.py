"""Overload protection tests: admission gates, brownout shedding, retry
budgets, priority threading, rejection accounting, and the
zero-cost-when-off guarantee."""

import pytest

from repro.fleet import Balancer, CampaignConfig, Request, Supervisor, \
    run_campaign
from repro.fleet.slo import SLOTracker
from repro.overload import (
    DEFAULT_MIX,
    PRIORITIES,
    AdmissionController,
    BrownoutController,
    ClientSwarm,
    RetryBudget,
    ServiceEstimator,
    build_controls,
    priority_pattern,
)
from repro.overload.admission import REJECT_DEADLINE, REJECT_SHED
from repro.sgx import ColdStartModel
from repro.workloads.netsim import ERROR_MARKER, REJECTED_MARKER, NetworkSim


class TestServiceEstimator:
    def test_prior_answers_before_first_sample(self):
        est = ServiceEstimator(prior_ticks=3.0)
        assert est.estimate() == 3.0
        assert est.samples == 0

    def test_ewma_moves_toward_samples(self):
        est = ServiceEstimator(prior_ticks=2.0, alpha=0.25)
        est.observe(10)
        assert est.estimate() == 2.0 + 0.25 * (10 - 2.0)
        for _ in range(50):
            est.observe(10)
        assert est.estimate() == pytest.approx(10.0, abs=0.01)

    def test_samples_clamped_to_one_tick(self):
        est = ServiceEstimator(prior_ticks=1.0, alpha=1.0)
        est.observe(0)                          # sub-tick serve still costs 1
        assert est.estimate() == 1.0


class TestAdmissionController:
    def _gate(self, deadline=20, **kw):
        return AdmissionController("sgxbounds", deadline, **kw)

    def _req(self, rid=0, priority="normal", arrival=0):
        return Request(rid, b"x", arrival, priority=priority)

    def test_disabled_gate_admits_everything(self):
        gate = self._gate(enabled=False)
        # A queue this deep would reject at any deadline when enabled.
        assert gate.admit_offer(self._req(), 10_000, 1, now=0) is None
        assert gate.admit_assign(self._req(), 10_000, now=0) is None

    def test_offer_gate_rejects_hopeless_waits(self):
        gate = self._gate(deadline=10)          # EWMA prior = 2 ticks
        # 4 in system / 2 workers * 2 ticks = 4 <= 10: admitted.
        assert gate.admit_offer(self._req(), 4, 2, now=0) is None
        assert gate.admitted == 1
        # 12 in system / 2 workers * 2 = 12 > 10: rejected.
        assert gate.admit_offer(self._req(), 12, 2, now=0) \
            == REJECT_DEADLINE

    def test_class_headroom_rejects_sheddable_first(self):
        gate = self._gate(deadline=10)
        # est wait = 8/2 * 2 = 8: inside critical's full deadline (10),
        # outside sheddable's half deadline (5) and normal's 7.5.
        assert gate.admit_offer(self._req(priority="critical"),
                                8, 2, now=0) is None
        assert gate.admit_offer(self._req(priority="normal"),
                                8, 2, now=0) == REJECT_DEADLINE
        assert gate.admit_offer(self._req(priority="sheddable"),
                                8, 2, now=0) == REJECT_DEADLINE

    def test_assign_gate_charges_time_already_waited(self):
        gate = self._gate(deadline=10)
        fresh = self._req(priority="critical", arrival=8)
        stale = self._req(priority="critical", arrival=0)
        # 3 outstanding * 2 ticks = 6; fresh has 10 left, stale only 2.
        assert gate.admit_assign(fresh, 3, now=8) is None
        assert gate.admit_assign(stale, 3, now=8) == REJECT_DEADLINE

    def test_brownout_shed_precedes_deadline_math(self):
        brown = BrownoutController(queue_window=1, queue_depth=4)
        gate = self._gate(brownout=brown)
        gate.observe_tick(0, queue_depth=100, epc_faults_total=0)
        assert brown.level == 1
        # An empty queue would admit anything — but sheddable is out.
        assert gate.admit_offer(self._req(priority="sheddable"),
                                0, 2, now=0) == REJECT_SHED
        assert gate.admit_offer(self._req(priority="critical"),
                                0, 2, now=0) is None

    def test_reject_accounting_by_reason_and_class(self):
        gate = self._gate()
        gate.on_reject(self._req(priority="sheddable"), REJECT_SHED, 5)
        gate.on_reject(self._req(priority="normal"), REJECT_DEADLINE, 6)
        gate.on_reject(self._req(priority="normal"), REJECT_DEADLINE, 7)
        summary = gate.summary()
        assert summary["rejected"] == {REJECT_DEADLINE: 2, REJECT_SHED: 1}
        assert summary["rejected_by_class"] == {"normal": 2, "sheddable": 1}

    def test_served_samples_feed_the_estimator(self):
        gate = self._gate()
        before = gate.estimator.estimate()
        gate.on_served(40)
        assert gate.estimator.estimate() > before
        assert gate.summary()["service_samples"] == 1


class TestBrownoutController:
    def _pressure(self, brown, ticks, depth=100, faults_per_tick=0):
        total = 0
        for now in range(ticks):
            total += faults_per_tick
            brown.observe(now, depth, total)

    def test_queue_pressure_sheds_only_sheddable(self):
        brown = BrownoutController(queue_window=2, queue_depth=10)
        self._pressure(brown, 4, depth=50)
        assert brown.level == 1
        assert brown.sheds("sheddable")
        assert not brown.sheds("normal")
        assert not brown.sheds("critical")

    def test_combined_pressure_escalates_to_normal(self):
        brown = BrownoutController(queue_window=2, queue_depth=10,
                                   epc_window=2, epc_faults_per_tick=10)
        self._pressure(brown, 6, depth=50, faults_per_tick=1000)
        assert brown.level == 2
        assert brown.sheds("normal")
        assert not brown.sheds("critical")      # never, at any level

    def test_hysteresis_recovers_the_level(self):
        brown = BrownoutController(queue_window=2, queue_depth=10)
        self._pressure(brown, 4, depth=50)
        assert brown.level == 1
        # Depth falls below half the threshold: detector re-arms.
        for now in range(10, 20):
            brown.observe(now, 0, 0)
        assert brown.level == 0
        assert not brown.sheds("sheddable")
        assert brown.max_level == 1
        assert brown.transitions >= 2           # up and back down


class TestRetryBudget:
    def test_burst_then_denial(self):
        budget = RetryBudget(refill_per_success=0.1, burst=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()           # bucket empty
        assert budget.spent == 2
        assert budget.denied == 1

    def test_successes_refill_fractionally(self):
        budget = RetryBudget(refill_per_success=0.5, burst=2.0)
        budget.try_spend()
        budget.try_spend()
        budget.on_success()                     # 0.5 tokens: still short
        assert not budget.try_spend()
        budget.on_success()                     # 1.0 token
        assert budget.try_spend()

    def test_refill_caps_at_burst(self):
        budget = RetryBudget(refill_per_success=5.0, burst=2.0)
        for _ in range(10):
            budget.on_success()
        assert budget.tokens == 2.0


class TestClientSwarm:
    def _done(self, status, rid=1, priority="normal", retries=0,
              arrival=0):
        req = Request(rid, b"p", arrival, priority=priority,
                      client_retries=retries)
        req.status = status
        return req

    def test_served_refills_and_never_retries(self):
        swarm = ClientSwarm(budgeted=True)
        assert swarm.on_terminal(self._done("served"), now=5) is None
        assert swarm.successes == 1

    @pytest.mark.parametrize("status", ["error", "rejected"])
    def test_only_failed_is_retryable(self, status):
        swarm = ClientSwarm(budgeted=False)
        assert swarm.on_terminal(self._done(status), now=5) is None
        assert swarm.retries == 0

    def test_failed_retry_keeps_rid_and_first_arrival(self):
        swarm = ClientSwarm(budgeted=False)
        first = self._done("failed", rid=9, arrival=3)
        retry = swarm.on_terminal(first, now=30)
        assert retry is not None
        assert retry.rid == 9
        assert retry.arrival == 30              # fresh patience window
        assert retry.first_arrival == 3         # end-to-end deadline clock
        assert retry.client_retries == 1
        assert retry.priority == first.priority

    def test_retry_ceiling_gives_up(self):
        swarm = ClientSwarm(budgeted=False, max_retries=2)
        assert swarm.on_terminal(self._done("failed", retries=2),
                                 now=5) is None
        assert swarm.gave_up == 1

    def test_budget_denial_gives_up(self):
        swarm = ClientSwarm(budgeted=True, burst=1.0, max_retries=10)
        assert swarm.on_terminal(self._done("failed"), now=1) is not None
        assert swarm.on_terminal(self._done("failed"), now=2) is None
        assert swarm.gave_up == 1
        assert swarm.summary()["budgets"]["normal"]["denied"] == 1

    def test_unbudgeted_swarm_has_no_bucket(self):
        swarm = ClientSwarm(budgeted=False, max_retries=10)
        for now in range(8):                    # far past any burst
            assert swarm.on_terminal(self._done("failed"),
                                     now=now) is not None
        assert "budgets" not in swarm.summary()


class TestPriorityPattern:
    def test_default_mix_proportions(self):
        pattern = priority_pattern()
        assert len(pattern) == sum(w for _, w in DEFAULT_MIX)
        assert pattern.count("critical") == 2
        assert pattern.count("normal") == 6
        assert pattern.count("sheddable") == 2

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown priority class"):
            priority_pattern((("platinum", 1),))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError, match="empty pattern"):
            priority_pattern((("critical", 0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative weight"):
            priority_pattern((("critical", -1),))


class TestBuildControls:
    def test_off_constructs_nothing(self):
        assert build_controls("off", "sgxbounds", 20) is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown overload mode"):
            build_controls("grayout", "sgxbounds", 20)

    def test_naive_is_accounting_only(self):
        controls = build_controls("naive", "sgxbounds", 20)
        assert not controls.admission.enabled
        assert controls.admission.brownout is None
        assert not controls.swarm.budgeted

    def test_protected_enables_the_full_stack(self):
        controls = build_controls("protected", "sgxbounds", 20)
        assert controls.admission.enabled
        assert controls.admission.brownout is not None
        assert controls.swarm.budgeted

    def test_priority_assignment_cycles_the_pattern(self):
        controls = build_controls("protected", "sgxbounds", 20,
                                  priority_mix=(("critical", 1),
                                                ("sheddable", 2)))
        assert [controls.priority(rid) for rid in range(4)] \
            == ["critical", "sheddable", "sheddable", "critical"]


class TestNetsimRejection:
    def test_rejected_counter_is_not_an_error(self):
        net = NetworkSim()
        conn = net.connect()
        net.push(conn, b"GET a", priority="sheddable")
        net.reject_request(conn)
        stats = net.stats(per_conn=True)
        assert stats["rejected"] == 1
        assert stats["errors"] == 0
        assert stats["error_replies"] == 0
        assert stats["per_conn"][conn]["rejected"] == 1
        assert net.sent(conn) == [REJECTED_MARKER]
        assert REJECTED_MARKER != ERROR_MARKER

    def test_priority_metadata_survives_recv(self):
        net = NetworkSim()
        conn = net.connect()
        net.push(conn, b"GET a", priority="critical")
        net.recv(conn, 64)
        assert net.last_recv_priority == "critical"
        net.push(conn, b"GET b")                # plain workloads: no class
        net.recv(conn, 64)
        assert net.last_recv_priority is None


class _RejectingGate:
    """Admission stub: rejects every Nth offer, admits everything else."""

    def __init__(self, every=2):
        self.enabled = True
        self.every = every
        self.offers = 0
        self.rejects = []

    def admit_offer(self, request, in_system, alive, now):
        self.offers += 1
        return REJECT_DEADLINE if self.offers % self.every == 0 else None

    def admit_assign(self, request, outstanding, now):
        return None

    def on_reject(self, request, reason, now):
        self.rejects.append((request.rid, reason))

    def on_served(self, service_ticks):
        pass


class _Net:
    def __init__(self):
        self.rejections = 0

    def reject_request(self, conn):
        self.rejections += 1


class _VM:
    def __init__(self):
        self.net = _Net()


class _Worker:
    def __init__(self, wid):
        self.wid = wid
        self.vm = _VM()
        self.conn = 0
        self.submitted = []

    def submit(self, rid, payload, priority="normal", waited_cycles=0):
        self.submitted.append((rid, priority, waited_cycles))


class TestBalancerRejection:
    def _fleet(self, gate, n=2):
        sup = Supervisor(range(n), cold_start=ColdStartModel(),
                         startup_ticks=0)
        sup.tick(0)
        workers = [_Worker(wid) for wid in range(n)]
        return workers, Balancer(workers, sup, admission=gate,
                                 tick_cycles=1_000)

    def test_rejected_offer_goes_terminal_at_the_front_door(self):
        gate = _RejectingGate(every=2)
        workers, bal = self._fleet(gate)
        first = bal.offer(Request(0, b"x", 0, priority="normal"), now=0)
        second = bal.offer(Request(1, b"x", 0, priority="normal"), now=0)
        assert first is None                    # queued
        assert second is not None               # turned away
        assert second.status == "rejected"
        assert second.detail == REJECT_DEADLINE
        assert bal.rejected == 1
        assert gate.rejects == [(1, REJECT_DEADLINE)]
        # The RJCT frame surfaced on a live worker's client connection,
        # and the rejected request never reached a worker queue.
        assert workers[0].vm.net.rejections == 1
        assert bal.in_system() == 1

    def test_priority_bands_drain_critical_first(self):
        gate = _RejectingGate(every=10**9)      # admit everything
        workers, bal = self._fleet(gate, n=1)
        bal.offer(Request(0, b"x", 0, priority="sheddable"), now=0)
        bal.offer(Request(1, b"x", 0, priority="critical"), now=0)
        bal.offer(Request(2, b"x", 0, priority="normal"), now=0)
        bal.dispatch(0)
        # One worker, queue_cap 2: the critical request claims the
        # in-flight slot even though it arrived second.
        assert workers[0].submitted[0][0] == 1

    def test_waited_cycles_reported_at_dispatch(self):
        gate = _RejectingGate(every=10**9)
        workers, bal = self._fleet(gate, n=1)
        bal.offer(Request(0, b"x", 0, priority="normal"), now=0)
        bal.offer(Request(1, b"x", 0, priority="normal"), now=0)
        bal.dispatch(0)                         # rid 0 in flight, 1 queued
        assert workers[0].submitted == [(0, "normal", 0)]
        bal.on_outcome(0, 0, "served", 3)
        bal.dispatch(3)                         # rid 1 waited 3 ticks
        assert workers[0].submitted[1] == (1, "normal", 3_000)


class TestSLOOverloadAccounting:
    def _done(self, rid, status, arrival, completed, priority="normal",
              first_arrival=None):
        req = Request(rid, b"", arrival, priority=priority,
                      first_arrival=first_arrival)
        req.status = status
        req.completed_at = completed
        return req

    def _slo(self):
        return SLOTracker(tick_cycles=5_000, deadline_ticks=10,
                          classes=PRIORITIES, timeline_window=5)

    def test_timeliness_is_end_to_end_from_first_attempt(self):
        slo = self._slo()
        slo.on_submitted(2, priority="normal")
        slo.on_terminal(self._done(0, "served", arrival=0, completed=8))
        # The retry's own attempt was quick, but the rid spent 30 ticks
        # end to end: served, yet not timely.
        slo.on_terminal(self._done(1, "served", arrival=28, completed=32,
                                   first_arrival=2))
        overload = slo.summary()["overload"]
        assert slo.served == 2
        assert overload["timely"] == 1

    def test_first_terminal_wins_per_rid(self):
        slo = self._slo()
        slo.on_submitted(1, priority="critical")
        slo.on_terminal(self._done(7, "served", 0, 4, priority="critical"))
        # A zombie duplicate of the same rid completes later: ignored.
        slo.on_terminal(self._done(7, "failed", 0, 40,
                                   priority="critical"))
        assert slo.served == 1
        assert slo.failed == 0
        assert slo.by_class["critical"]["failed"] == 0

    def test_rejected_is_its_own_bucket(self):
        slo = self._slo()
        slo.on_submitted(1, priority="sheddable")
        slo.on_terminal(self._done(3, "rejected", 0, 0,
                                   priority="sheddable"))
        summary = slo.summary()
        assert summary["overload"]["rejected"] == 1
        assert summary["error_replies"] == 0
        assert summary["failed"] == 0
        assert summary["overload"]["by_class"]["sheddable"]["rejected"] == 1

    def test_timeline_rolls_fixed_windows(self):
        slo = self._slo()
        serve_ticks = (0, 1, 6, 7, 8)
        rid = 0
        for tick in range(9):
            while rid < len(serve_ticks) and serve_ticks[rid] == tick:
                slo.on_submitted(1, priority="normal")
                slo.on_terminal(self._done(rid, "served", tick, tick))
                rid += 1
            slo.on_tick(tick)
        assert slo.goodput_timeline == [2]      # window [0, 5) closed
        # The partial second window is surfaced in the summary.
        assert slo.summary()["overload"]["goodput_timeline"] == [2, 3]

    def test_plain_summary_has_no_overload_block(self):
        slo = SLOTracker(tick_cycles=5_000)
        slo.on_submitted(1)
        assert "overload" not in slo.summary()


class TestOverloadCampaigns:
    def _config(self, **kw):
        kw.setdefault("app", "memcached")
        kw.setdefault("scheme", "sgxbounds")
        kw.setdefault("policy", "drop-request")
        kw.setdefault("workers", 3)
        kw.setdefault("fault_rate", 0.1)
        kw.setdefault("seed", 1234)
        kw.setdefault("size", "XS")
        kw.setdefault("deadline_ticks", 20)
        return CampaignConfig(**kw)

    def test_off_is_zero_cost(self):
        r = run_campaign(self._config(overload="off"))
        out = r.as_dict()
        assert "overload" not in out
        assert "overload" not in out["slo"]
        assert "overload" not in out["config"]

    def test_overload_campaigns_are_deterministic(self):
        cfg = self._config(overload="protected", arrivals_per_tick=8)
        assert run_campaign(cfg).as_dict() == run_campaign(cfg).as_dict()

    def test_terminal_accounting_balances(self):
        # Every submitted rid reaches exactly one terminal state, in
        # both modes — zombies and retry chains never double-count.
        for mode in ("naive", "protected"):
            r = run_campaign(self._config(overload=mode,
                                          arrivals_per_tick=8))
            slo = r.slo
            assert slo["submitted"] == (
                slo["served"] + slo["error_replies"] + slo["failed"]
                + slo["overload"]["rejected"]), (mode, slo)

    def test_priority_mix_threads_through_to_classes(self):
        r = run_campaign(self._config(overload="naive",
                                      arrivals_per_tick=2))
        by_class = r.slo["overload"]["by_class"]
        # XS = 50 requests under the default 2/6/2 mix.
        assert by_class["critical"]["submitted"] == 10
        assert by_class["normal"]["submitted"] == 30
        assert by_class["sheddable"]["submitted"] == 10

    def test_protected_gate_rejects_under_pressure(self):
        r = run_campaign(self._config(overload="protected",
                                      arrivals_per_tick=8))
        assert r.slo["overload"]["rejected"] > 0
        assert r.overload["admission"]["enabled"]
        naive = run_campaign(self._config(overload="naive",
                                          arrivals_per_tick=8))
        assert naive.slo["overload"]["rejected"] == 0
