"""Seeded MiniC program generator for the differential oracle.

Grammar-bounded random programs exercising the predecoder's whole
instruction surface: integer/float arithmetic, guarded division and
shifts, nested bounded loops (``for``/``while``/``do``), ``break`` /
``continue``, function calls, heap and global arrays (masked in-bounds
indices), structs through pointers, and ``printf`` so every program has
observable stdout on top of its exit value.

Determinism contract: ``generate(random.Random(seed))`` returns the same
source for the same seed forever — the fuzz tests in
``tests/test_vm_differential.py`` rely on it, and so does triage
(``python -c "from tests.genprog import generate; import random;
print(generate(random.Random(1234)))"`` reproduces any failing program).

Every generated program terminates: all loop bounds are literals and
loop variables are never reassigned inside their own body.
"""

from __future__ import annotations

import random
from typing import List

#: Power-of-two array length so ``expr & (LEN - 1)`` is always in bounds.
ARRAY_LEN = 16
_MASK = ARRAY_LEN - 1

_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("<", ">", "<=", ">=", "==", "!=")


class _Gen:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.locals: List[str] = []
        #: Loop counters: readable in expressions, never assignment targets
        #: (that is the termination guarantee).
        self.loop_vars: List[str] = []
        self.helpers: List[str] = []
        self.in_main = False       # heap/sp only exist in main's scope
        self._label = 0

    def fresh(self, prefix: str) -> str:
        self._label += 1
        return f"{prefix}{self._label}"

    # -- expressions ------------------------------------------------------
    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 3 or roll < 0.30:
            return str(rng.randint(-99, 999))
        if roll < 0.55 and (self.locals or self.loop_vars):
            return rng.choice(self.locals + self.loop_vars)
        if roll < 0.62:
            # Guarded division/modulo: divisor is always in [1, 8].
            op = rng.choice(("/", "%"))
            return (f"({self.expr(depth + 1)} {op} "
                    f"(({self.expr(depth + 1)} & 7) + 1))")
        if roll < 0.69:
            # Bounded shifts keep values in range without trapping.
            op = rng.choice(("<<", ">>"))
            return (f"({self.expr(depth + 1)} {op} "
                    f"({self.expr(depth + 1)} & 7))")
        if roll < 0.76:
            op = rng.choice(_CMP_OPS)
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if roll < 0.82 and self.helpers:
            name = rng.choice(self.helpers)
            return f"{name}({self.expr(depth + 1)}, {self.expr(depth + 1)})"
        if roll < 0.88:
            return f"g_arr[({self.expr(depth + 1)}) & {_MASK}]"
        op = rng.choice(_BIN_OPS)
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    def index(self) -> str:
        return f"({self.expr(1)}) & {_MASK}"

    # -- statements -------------------------------------------------------
    def stmt(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        pad = "    " * (depth + 1)
        if roll < 0.22 and self.locals:
            target = rng.choice(self.locals)
            op = rng.choice(("=", "+=", "-=", "^=", "|=", "&="))
            return f"{pad}{target} {op} {self.expr()};"
        if roll < 0.38:
            dest = rng.choice(("g_arr", "heap")) if self.in_main else "g_arr"
            op = rng.choice(("=", "+=", "^="))
            return f"{pad}{dest}[{self.index()}] {op} {self.expr()};"
        if roll < 0.50 and depth < 2:
            body = self.stmt(depth + 1)
            if rng.random() < 0.5:
                return (f"{pad}if ({self.expr()}) {{\n{body}\n{pad}}} "
                        f"else {{\n{self.stmt(depth + 1)}\n{pad}}}")
            return f"{pad}if ({self.expr()}) {{\n{body}\n{pad}}}"
        if roll < 0.64 and depth < 2:
            var = self.fresh("i")
            bound = rng.randint(2, 12)
            inner = []
            self.loop_vars.append(var)
            for _ in range(rng.randint(1, 3)):
                inner.append(self.stmt(depth + 1))
            if rng.random() < 0.3:
                inner.append(f"{'    ' * (depth + 2)}if ({var} == "
                             f"{rng.randint(0, bound)}) "
                             f"{rng.choice(('break', 'continue'))};")
            self.loop_vars.remove(var)
            body = "\n".join(inner)
            return (f"{pad}for (int {var} = 0; {var} < {bound}; "
                    f"{var}++) {{\n{body}\n{pad}}}")
        if roll < 0.72 and depth < 2:
            var = self.fresh("w")
            bound = rng.randint(2, 10)
            self.loop_vars.append(var)
            body = self.stmt(depth + 1)
            self.loop_vars.remove(var)
            return (f"{pad}int {var} = {bound};\n"
                    f"{pad}while ({var} > 0) {{\n{body}\n"
                    f"{'    ' * (depth + 2)}{var} = {var} - 1;\n{pad}}}")
        if roll < 0.80:
            return (f'{pad}printf("v=%d\\n", '
                    f"({self.expr()}) & 65535);")
        if roll < 0.88 and self.in_main:
            field = rng.choice(("a", "b"))
            return f"{pad}sp->{field} {rng.choice(('=', '+='))} {self.expr()};"
        if self.locals:
            target = rng.choice(self.locals)
            return f"{pad}{target} = {self.expr()};"
        return f"{pad}g_acc += {self.expr()};"

    # -- declarations -----------------------------------------------------
    def helper(self, name: str) -> str:
        saved, self.locals = self.locals, ["a", "b"]
        rng = self.rng
        lines = [f"int {name}(int a, int b) {{"]
        acc = self.fresh("h")
        lines.append(f"    int {acc} = {self.expr()};")
        self.locals.append(acc)
        for _ in range(rng.randint(1, 3)):
            lines.append(self.stmt())
        lines.append(f"    return {acc} & 262143;")
        lines.append("}")
        self.locals = saved
        return "\n".join(lines)


def generate(rng: random.Random) -> str:
    """One complete, terminating, printf-observable MiniC program."""
    gen = _Gen(rng)
    parts = [
        "struct Pair { int a; int b; };",
        f"int g_arr[{ARRAY_LEN}];",
        "int g_acc;",
    ]
    for _ in range(rng.randint(1, 3)):
        name = gen.fresh("f")
        parts.append(gen.helper(name))
        gen.helpers.append(name)

    gen.in_main = True
    lines = ["int main() {"]
    n_locals = rng.randint(2, 4)
    for _ in range(n_locals):
        var = gen.fresh("x")
        lines.append(f"    int {var} = {rng.randint(-50, 200)};")
        gen.locals.append(var)
    lines.append(f"    int *heap = (int*)malloc({ARRAY_LEN} * sizeof(int));")
    lines.append("    struct Pair *sp = "
                 "(struct Pair*)malloc(sizeof(struct Pair));")
    lines.append(f"    for (int s = 0; s < {ARRAY_LEN}; s++) "
                 f"{{ heap[s] = s * {rng.randint(1, 9)}; "
                 f"g_arr[s] = s ^ {rng.randint(0, 255)}; }}")
    lines.append(f"    sp->a = {rng.randint(0, 99)}; "
                 f"sp->b = {rng.randint(0, 99)};")
    lines.append(f"    double fp = {rng.randint(1, 9)}.5;")
    for _ in range(rng.randint(4, 10)):
        lines.append(gen.stmt())
    lines.append(f"    fp = fp * {rng.randint(2, 5)}.25 + "
                 f"(double)(({gen.expr(1)}) & 255);")
    lines.append("    int acc = g_acc + sp->a * 3 + sp->b + (int)fp;")
    lines.append(f"    for (int t = 0; t < {ARRAY_LEN}; t++) "
                 "acc += heap[t] * (t + 1) + g_arr[t];")
    lines.append('    printf("acc=%d\\n", acc & 1048575);')
    lines.append("    free(heap);")
    lines.append("    free(sp);")
    lines.append("    return acc & 65535;")
    lines.append("}")
    parts.append("\n".join(lines))
    return "\n\n".join(parts)


def corpus(seed: int, count: int) -> List[str]:
    """``count`` deterministic programs derived from one master seed."""
    master = random.Random(seed)
    return [generate(random.Random(master.randrange(1 << 30)))
            for _ in range(count)]
