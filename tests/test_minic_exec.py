"""Execution tests: MiniC programs compiled and run on the VM (no scheme)."""

import pytest

from repro.errors import SegmentationFault, TrapError, VMError
from tests.util import run_c


def result_of(source, **kw):
    value, _ = run_c(source, **kw)
    if value & (1 << 63):
        value -= 1 << 64
    return value


class TestArithmetic:
    def test_integer_ops(self):
        src = "int main() { return (7 * 6 - 2) / 4 % 8; }"
        assert result_of(src) == ((7 * 6 - 2) // 4) % 8

    def test_negative_division_truncates_toward_zero(self):
        assert result_of("int main() { return -7 / 2; }") == -3
        assert result_of("int main() { return -7 % 2; }") == -1

    def test_unsigned_vs_signed_compare(self):
        assert result_of("int main() { int a = -1; return a < 0; }") == 1
        assert result_of(
            "int main() { uint a = (uint)-1; return a > 100; }") == 1

    def test_shifts(self):
        assert result_of("int main() { return (1 << 10) >> 3; }") == 128
        assert result_of("int main() { int a = -8; return a >> 1; }") == -4

    def test_bitwise(self):
        assert result_of("int main() { return (0xF0 | 0x0C) & ~0x03; }") == 0xFC

    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_c("int main() { int z = 0; return 5 / z; }")

    def test_doubles(self):
        src = """
        int main() {
            double a = 1.5; double b = 2.25;
            double c = a * b + 0.75;
            return (int)(c * 100.0);
        }
        """
        assert result_of(src) == int((1.5 * 2.25 + 0.75) * 100)

    def test_int_double_mixing(self):
        assert result_of("int main() { return (int)(3 / 2.0 * 100.0); }") == 150

    def test_char_sign_extension(self):
        src = "int main() { char c = (char)200; return c < 0; }"
        assert result_of(src) == 1


class TestControlFlow:
    def test_nested_loops(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++)
                for (int j = 0; j < i; j++)
                    s += j;
            return s;
        }
        """
        assert result_of(src) == sum(j for i in range(10) for j in range(i))

    def test_break_continue(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }
        """
        assert result_of(src) == 1 + 3 + 5 + 7 + 9

    def test_do_while(self):
        src = "int main() { int i = 0; do { i++; } while (i < 5); return i; }"
        assert result_of(src) == 5

    def test_short_circuit_no_side_effect(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() { int x = 0; if (x && bump()) {} if (x || bump()) {} return g; }
        """
        assert result_of(src) == 1

    def test_recursion(self):
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { return fib(15); }
        """
        assert result_of(src) == 610

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        # Forward declarations are not supported; use a single direction.
        src = """
        int is_even(int n) { if (n == 0) return 1; if (n == 1) return 0; return is_even(n - 2); }
        int main() { return is_even(10) * 10 + is_even(7); }
        """
        assert result_of(src) == 10


class TestPointersAndMemory:
    def test_pointer_swap(self):
        src = """
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int main() { int x = 3; int y = 9; swap(&x, &y); return x * 10 + y; }
        """
        assert result_of(src) == 93

    def test_pointer_arithmetic_scaling(self):
        src = """
        int main() {
            int arr[4] = {10, 20, 30, 40};
            int *p = arr;
            p = p + 2;
            return *p + *(p - 1);
        }
        """
        assert result_of(src) == 50

    def test_pointer_difference(self):
        src = """
        int main() { int arr[10]; int *a = &arr[1]; int *b = &arr[7]; return b - a; }
        """
        assert result_of(src) == 6

    def test_struct_access_and_nesting(self):
        src = """
        struct Inner { int v; };
        struct Outer { struct Inner in; int pad; };
        int main() {
            struct Outer o;
            o.in.v = 17;
            struct Outer *p = &o;
            return p->in.v;
        }
        """
        assert result_of(src) == 17

    def test_linked_list(self):
        src = """
        struct Node { int v; struct Node *next; };
        int main() {
            struct Node *head = (struct Node*)0;
            for (int i = 1; i <= 5; i++) {
                struct Node *n = (struct Node*)malloc(sizeof(struct Node));
                n->v = i; n->next = head; head = n;
            }
            int s = 0;
            while (head) { s = s * 10 + head->v; head = head->next; }
            return s;
        }
        """
        assert result_of(src) == 54321

    def test_2d_array(self):
        src = """
        int main() {
            int m[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 4 + j;
            return m[2][3];
        }
        """
        assert result_of(src) == 11

    def test_global_initializers_and_relocs(self):
        src = """
        int table[4] = {5, 6, 7};
        char *name = "abc";
        int main() { return table[1] + strlen(name) + table[3]; }
        """
        assert result_of(src) == 6 + 3 + 0

    def test_null_deref_faults(self):
        with pytest.raises(SegmentationFault):
            run_c("int main() { int *p = (int*)0; return *p; }")

    def test_function_pointers(self):
        src = """
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main() {
            fnptr f = twice;
            int a = f(10);
            f = thrice;
            return a + f(10);
        }
        """
        assert result_of(src) == 50

    def test_string_builtins(self):
        src = """
        int main() {
            char buf[32];
            strcpy(buf, "abc");
            strcat(buf, "def");
            if (strcmp(buf, "abcdef") != 0) return 1;
            if (strncmp(buf, "abcxxx", 3) != 0) return 2;
            if (strlen(buf) != 6) return 3;
            char *p = strchr(buf, 'd');
            if (*p != 'd') return 4;
            return 0;
        }
        """
        assert result_of(src) == 0

    def test_memcpy_memset_memcmp(self):
        src = """
        int main() {
            char a[16]; char b[16];
            memset(a, 7, 16);
            memcpy(b, a, 16);
            return memcmp(a, b, 16);
        }
        """
        assert result_of(src) == 0

    def test_printf_output(self):
        _, vm = run_c('int main() { printf("x=%d s=%s %c %x\\n", 42, "hi", 65, 255); return 0; }')
        assert vm.output() == "x=42 s=hi A ff\n"


class TestRuntimeLimits:
    def test_infinite_loop_hits_budget(self):
        with pytest.raises(VMError, match="budget"):
            run_c("int main() { while (1) {} return 0; }",
                  max_instructions=10_000)

    def test_stack_overflow_detected(self):
        src = """
        int deep(int n) { int pad[64]; pad[0] = n; return deep(n + pad[0]); }
        int main() { return deep(1); }
        """
        with pytest.raises(SegmentationFault, match="stack overflow"):
            run_c(src)

    def test_exit_builtin(self):
        value, _ = run_c("int main() { exit(7); return 1; }")
        assert value == 7

    def test_abort_builtin(self):
        with pytest.raises(TrapError):
            run_c("int main() { abort(); return 0; }")
