"""Unit tests for the optimization + instrumentation passes."""

import pytest

from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation
from repro.ir import ops, verify_module
from repro.minic import compile_source
from repro.passes.loop_hoist import run_loop_hoist
from repro.passes.safe_access import run_safe_access
from repro.vm import run_module
from tests.util import build, run_c


def _count(module, predicate):
    return sum(1 for fn in module.functions.values()
               for blk in fn.blocks for ins in blk.instrs if predicate(ins))


class TestSafeAccess:
    def test_struct_fields_marked_safe(self):
        src = """
        struct P { int a; int b; };
        int main() { struct P p; p.a = 1; p.b = 2; return p.a + p.b; }
        """
        module = compile_source(src)
        marked = run_safe_access(module)
        assert marked > 0
        accesses = [ins for fn in module.functions.values()
                    for blk in fn.blocks for ins in blk.instrs
                    if ins.op in (ops.LOAD, ops.STORE)]
        assert all(ins.safe for ins in accesses)

    def test_constant_array_index_safe(self):
        src = "int main() { int a[4]; a[3] = 7; return a[3]; }"
        module = compile_source(src)
        run_safe_access(module)
        stores = [ins for fn in module.functions.values()
                  for blk in fn.blocks for ins in blk.instrs
                  if ins.op == ops.STORE]
        assert all(ins.safe for ins in stores)

    def test_out_of_bounds_constant_not_safe(self):
        src = "int main() { int a[4]; int *p = a; p[6] = 7; return 0; }"
        module = compile_source(src)
        run_safe_access(module)
        stores = [ins for fn in module.functions.values()
                  for blk in fn.blocks for ins in blk.instrs
                  if ins.op == ops.STORE and ins.size == 8]
        assert not any(ins.safe for ins in stores)

    def test_dynamic_index_not_safe(self):
        src = "int main() { int a[4]; int i = 2; a[i] = 1; return a[i]; }"
        module = compile_source(src)
        marked = run_safe_access(module)
        dynamic = [ins for fn in module.functions.values()
                   for blk in fn.blocks for ins in blk.instrs
                   if ins.op in (ops.LOAD, ops.STORE) and ins.size == 8
                   and ins.b is not None]
        # The a[i] accesses (register index) must stay unsafe.
        stores = [ins for fn in module.functions.values()
                  for blk in fn.blocks for ins in blk.instrs
                  if ins.op == ops.STORE and ins.size == 8]
        assert not all(ins.safe for ins in stores)

    def test_global_constant_offset_safe(self):
        src = "int g[8]; int main() { g[5] = 3; return g[5]; }"
        module = compile_source(src)
        marked = run_safe_access(module)
        assert marked > 0

    def test_soundness_under_instrumentation(self):
        """Safe-marked programs still catch real overflows elsewhere."""
        src = """
        struct P { int a; int b; };
        int main() {
            struct P p; p.a = 1;          // safe, elided
            int *h = (int*)malloc(16);
            int i = 4;
            h[i] = 2;                     // unsafe, must be caught
            return 0;
        }
        """
        scheme = SGXBoundsScheme()
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=scheme)


class TestLoopHoist:
    SIMPLE = """
    int sum(int *a, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += a[i];
        return s;
    }
    int main() {
        int *a = (int*)malloc(8 * sizeof(int));
        for (int i = 0; i < 8; i++) a[i] = i;
        return sum(a, 8);
    }
    """

    def test_hoists_canonical_loop(self):
        module = compile_source(self.SIMPLE)
        hoisted = run_loop_hoist(module)
        assert hoisted >= 2
        assert module.meta["hoisted_accesses"] >= 2

    def test_hoisted_module_still_correct(self):
        value, _ = run_c(self.SIMPLE, scheme=SGXBoundsScheme())
        assert value == sum(range(8))

    def test_hoisted_check_catches_bad_bound(self):
        bad = self.SIMPLE.replace("return sum(a, 8);", "return sum(a, 9);")
        with pytest.raises(BoundsViolation):
            run_c(bad, scheme=SGXBoundsScheme())

    def test_global_array_base_hoisted(self):
        src = """
        int g[16];
        int main() {
            int s = 0;
            for (int i = 0; i < 16; i++) g[i] = i;
            for (int i = 0; i < 16; i++) s += g[i];
            return s;
        }
        """
        module = compile_source(src)
        assert run_loop_hoist(module) >= 2

    def test_downward_loop_not_hoisted(self):
        src = """
        int main() {
            int a[8];
            for (int i = 7; i >= 0; i--) a[i] = i;  // decrement: skip
            return a[0];
        }
        """
        module = compile_source(src)
        assert run_loop_hoist(module) == 0

    def test_non_invariant_bound_not_hoisted(self):
        src = """
        int main() {
            int a[8];
            int n = 1;
            for (int i = 0; i < n; i++) { a[i] = i; n = n + 0; }
            return a[0];
        }
        """
        module = compile_source(src)
        assert run_loop_hoist(module) == 0

    def test_large_stride_not_hoisted(self):
        src = """
        struct Big { char pad[2048]; };
        int main() {
            struct Big *a = (struct Big*)malloc(4 * sizeof(struct Big));
            for (int i = 0; i < 4; i++) a[i].pad[0] = 1;
            return 0;
        }
        """
        module = compile_source(src)
        assert run_loop_hoist(module) == 0

    def test_disabled_under_boundless(self):
        scheme = SGXBoundsScheme(boundless=True)
        assert not scheme.optimize_hoist


class TestInstrumentationStructure:
    def test_sgxbounds_inserts_checks(self):
        src = "int main() { int *p = (int*)malloc(8); p[0] = 1; return p[0]; }"
        module = build(src, SGXBoundsScheme(optimize_safe=False,
                                            optimize_hoist=False))
        assert module.meta["scheme"] == "sgxbounds"
        assert module.meta["checks_inserted"] >= 2

    def test_instrumented_modules_verify(self):
        from repro.asan import ASanScheme
        from repro.mpx import MPXScheme
        src = """
        struct N { int v; struct N *n; };
        int main() {
            struct N *h = (struct N*)malloc(sizeof(struct N));
            h->v = 1; h->n = h;
            int a[4];
            for (int i = 0; i < 4; i++) a[i] = h->v;
            return a[3];
        }
        """
        for scheme in (SGXBoundsScheme(), ASanScheme(), MPXScheme()):
            module = compile_source(src)
            instrumented = scheme.instrument(module)
            verify_module(instrumented)   # must stay well-formed

    def test_instrumentation_does_not_mutate_original(self):
        src = "int main() { int a[4]; a[0] = 1; return a[0]; }"
        module = compile_source(src)
        before = module.stats()["instructions"]
        SGXBoundsScheme().instrument(module)
        assert module.stats()["instructions"] == before

    def test_idempotent_results_across_schemes(self):
        from repro.asan import ASanScheme
        from repro.mpx import MPXScheme
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() {
            int *memo = (int*)malloc(16 * sizeof(int));
            for (int i = 0; i < 16; i++) memo[i] = fib(i % 12);
            int s = 0;
            for (int i = 0; i < 16; i++) s += memo[i];
            free(memo);
            return s;
        }
        """
        expected, _ = run_c(src)
        for scheme in (SGXBoundsScheme(), ASanScheme(), MPXScheme(),
                       SGXBoundsScheme(boundless=True)):
            value, _ = run_c(src, scheme=scheme)
            assert value == expected, scheme.name
