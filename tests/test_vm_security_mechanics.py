"""VM security-relevant mechanics: return-address discipline, indirect
calls, the loader, and tagged values flowing through real machinery."""

import pytest

from repro.core import SGXBoundsScheme, extract_p, extract_ub
from repro.errors import ControlFlowHijack, SegmentationFault, VMError
from repro.memory.layout import CODE_BASE, in_code_region
from repro.minic import compile_source
from repro.vm import VM
from tests.util import build, run_c


class TestReturnAddressDiscipline:
    def test_clean_returns_work(self):
        value, _ = run_c("""
        int f(int x) { return x + 1; }
        int main() { return f(f(f(0))); }
        """)
        assert value == 3

    def test_smashed_return_hijacks_to_function(self):
        """Overwriting the return slot with a real code address transfers
        control there — the attack the schemes must prevent."""
        src = """
        int g_flag;
        int evil() { g_flag = 1; return 0; }
        int victim() {
            char buf[8];
            uint target = (uint)evil;
            // Native frame: buf at 0, return slot at 16.
            for (int i = 0; i < 24; i++)
                buf[i] = (char)(target >> ((i - 16) * 8));
            return 0;
        }
        int main() { victim(); return g_flag; }
        """
        with pytest.raises(ControlFlowHijack):
            run_c(src)

    def test_smashed_return_with_garbage_crashes(self):
        src = """
        int victim() {
            char buf[8];
            for (int i = 0; i < 24; i++) buf[i] = (char)0x41;
            return 0;
        }
        int main() { victim(); return 0; }
        """
        with pytest.raises(SegmentationFault, match="non-code"):
            run_c(src)

    def test_sgxbounds_stops_the_smash_before_return(self):
        from repro.errors import BoundsViolation
        src = """
        int victim() {
            char buf[8];
            for (int i = 0; i < 24; i++) buf[i] = (char)0x41;
            return 0;
        }
        int main() { victim(); return 0; }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=SGXBoundsScheme())


class TestIndirectCalls:
    def test_call_through_data_pointer_faults(self):
        src = """
        int main() {
            int x = 5;
            fnptr f = (fnptr)(uint)&x;   // points at data, not code
            return f();
        }
        """
        with pytest.raises(SegmentationFault, match="non-code"):
            run_c(src)

    def test_function_addresses_live_in_code_region(self):
        module = build("int f() { return 1; } int main() { return f(); }")
        vm = VM()
        program = vm.load(module)
        for name in ("f", "main"):
            assert in_code_region(program.address_of_function(name))

    def test_code_region_is_not_readable_data(self):
        """Fake code slots are never memory-backed: reading a function's
        'bytes' faults, so code cannot be disclosed as data."""
        module = build("int main() { return 0; }")
        vm = VM()
        program = vm.load(module)
        with pytest.raises(SegmentationFault):
            vm.space.read_u8(program.address_of_function("main"))


class TestLoader:
    def test_globals_initialized(self):
        module = build("""
        int magic = 1234;
        double pi = 3.25;
        char text[8] = "abc";
        int main() { return magic; }
        """)
        vm = VM()
        program = vm.load(module)
        assert vm.space.read_u64(program.address_of_global("magic")) == 1234
        assert vm.space.read_f64(program.address_of_global("pi")) == 3.25
        assert vm.space.read_cstring(
            program.address_of_global("text")) == b"abc"

    def test_pointer_relocations(self):
        module = build("""
        int target = 7;
        int *ptr = &target;
        int main() { return *ptr; }
        """)
        vm = VM()
        program = vm.load(module)
        slot = vm.space.read_u64(program.address_of_global("ptr"))
        assert slot == program.address_of_global("target")
        assert vm.run("main") == 7

    def test_relocations_are_tagged_under_sgxbounds(self):
        scheme = SGXBoundsScheme()
        module = build("""
        int target = 7;
        int *ptr = &target;
        int main() { return *ptr; }
        """, scheme=scheme)
        vm = VM(scheme=scheme)
        program = vm.load(module)
        tagged = vm.space.read_u64(program.address_of_global("ptr"))
        assert extract_ub(tagged) == extract_p(tagged) + 8  # sizeof(int)
        assert vm.run("main") == 7

    def test_function_pointer_relocation(self):
        value, _ = run_c("""
        int hello() { return 42; }
        fnptr table[2] = { hello, hello };
        int main() { fnptr f = table[1]; return f(); }
        """)
        assert value == 42

    def test_missing_entry_function(self):
        module = build("int helper() { return 0; }")
        vm = VM()
        vm.load(module)
        with pytest.raises(VMError, match="entry"):
            vm.run("main")


class TestTaggedValueFlow:
    def test_tag_survives_struct_storage(self):
        scheme = SGXBoundsScheme()
        src = """
        struct Holder { uint as_int; };
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[0] = 11;
            struct Holder h;
            h.as_int = (uint)a;          // pointer stored as an integer
            int *back = (int*)h.as_int;  // reloaded and cast back
            return back[0];
        }
        """
        value, _ = run_c(src, scheme=scheme)
        assert value == 11

    def test_tag_survives_and_still_detects_after_laundering(self):
        from repro.errors import BoundsViolation
        src = """
        uint g_slot;
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            g_slot = (uint)a;
            int *back = (int*)g_slot;
            return back[4];              // still out of bounds
        }
        """
        with pytest.raises(BoundsViolation):
            run_c(src, scheme=SGXBoundsScheme())
