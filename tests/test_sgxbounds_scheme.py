"""SGXBounds scheme tests: detection, casts, arithmetic clamping, libc."""

import pytest

from repro.core import SGXBoundsScheme, extract_p, extract_ub
from repro.errors import BoundsViolation
from tests.util import run_c


def run_sb(src, **opts):
    kwargs = {}
    for key in ("quantum", "max_instructions"):
        if key in opts:
            kwargs[key] = opts.pop(key)
    scheme = SGXBoundsScheme(**opts)
    value, vm = run_c(src, scheme=scheme, **kwargs)
    return value, vm, scheme


class TestDetection:
    def test_heap_overflow_write(self):
        src = """
        int main() {
            int *a = (int*)malloc(10 * sizeof(int));
            for (int i = 0; i <= 10; i++) a[i] = i;   // off-by-one
            return 0;
        }
        """
        with pytest.raises(BoundsViolation) as err:
            run_sb(src, optimize_hoist=False)
        assert err.value.scheme == "sgxbounds"

    def test_heap_overflow_read(self):
        src = """
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            return a[9];
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)

    def test_heap_underflow(self):
        src = """
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            int *p = a - 1;
            return *p;
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)

    def test_stack_overflow_detected(self):
        src = """
        int main() {
            int buf[4];
            for (int i = 0; i <= 4; i++) buf[i] = i;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src, optimize_hoist=False)

    def test_global_overflow_detected(self):
        src = """
        int g[4];
        int main() {
            int idx = 6;
            g[idx] = 1;
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)

    def test_adjacent_object_not_corrupted_check_order(self):
        """In-bounds accesses right at the edges pass."""
        src = """
        int main() {
            char *p = (char*)malloc(16);
            p[0] = 1; p[15] = 2;
            int r = p[0] + p[15];
            free(p);
            return r;
        }
        """
        value, _, _ = run_sb(src)
        assert value == 3

    def test_one_past_end_pointer_ok_if_not_dereferenced(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            int *end = a + 4;    // legal C: one-past-the-end
            int s = 0;
            for (int *p = a; p < end; p++) { *p = 1; s += *p; }
            free(a);
            return s;
        }
        """
        value, _, _ = run_sb(src)
        assert value == 4


class TestCastsAndArithmetic:
    def test_pointer_int_roundtrip_keeps_bounds(self):
        """Paper §3.2: SGXBounds is immune to arbitrary type casts."""
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            uint as_int = (uint)a;
            int *back = (int*)as_int;
            back[0] = 42;
            return back[0];
        }
        """
        value, _, _ = run_sb(src)
        assert value == 42

    def test_cast_then_overflow_still_detected(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            uint as_int = (uint)a;
            int *back = (int*)as_int;
            return back[7];
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)

    def test_malicious_arithmetic_cannot_corrupt_tag(self):
        """Adding a value that overflows 32 bits must not change the UB."""
        src = """
        int main() {
            char *p = (char*)malloc(16);
            uint evil = 4294967296;   // 2^32
            char *q = p + evil;       // clamped arithmetic: tag intact
            *q = 1;                   // plain p again (wraps to offset 0)
            return *q;
        }
        """
        value, _, _ = run_sb(src)
        assert value == 1

    def test_negative_index_detected(self):
        src = """
        int take(int *p, int i) { return p[i]; }
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            return take(a, -2);
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)


class TestLibcWrappers:
    def test_memcpy_overflow_detected(self):
        src = """
        int main() {
            char *dst = (char*)malloc(8);
            char *src = (char*)malloc(64);
            memcpy(dst, src, 64);
            return 0;
        }
        """
        with pytest.raises(BoundsViolation, match="libc"):
            run_sb(src)

    def test_memcpy_overread_detected(self):
        src = """
        int main() {
            char *dst = (char*)malloc(64);
            char *src = (char*)malloc(8);
            memcpy(dst, src, 64);   // Heartbleed shape: over-read
            return 0;
        }
        """
        with pytest.raises(BoundsViolation, match="libc"):
            run_sb(src)

    def test_strcpy_overflow_detected(self):
        src = """
        int main() {
            char *small = (char*)malloc(4);
            strcpy(small, "much too long for four bytes");
            return 0;
        }
        """
        with pytest.raises(BoundsViolation):
            run_sb(src)

    def test_memset_within_bounds_ok(self):
        src = """
        int main() {
            char *p = (char*)malloc(32);
            memset(p, 7, 32);
            return p[31];
        }
        """
        value, _, _ = run_sb(src)
        assert value == 7


class TestRuntimeMechanics:
    def test_malloc_returns_tagged_pointer(self):
        from repro.sgx import Enclave
        from repro.vm import VM
        scheme = SGXBoundsScheme()
        vm = VM(scheme=scheme)
        tagged = scheme.malloc(vm, 100)
        assert extract_ub(tagged) == extract_p(tagged) + 100
        # LB word sits at UB and holds the base.
        assert vm.space.read_u32(extract_ub(tagged)) == extract_p(tagged)

    def test_free_strips_tag(self):
        from repro.vm import VM
        scheme = SGXBoundsScheme()
        vm = VM(scheme=scheme)
        tagged = scheme.malloc(vm, 50)
        scheme.free(vm, tagged)
        assert not vm.enclave.heap.is_live(extract_p(tagged))

    def test_memory_overhead_is_4_bytes_per_object(self):
        """Paper: 'requires only 4 additional bytes per object'."""
        from repro.vm import VM
        scheme = SGXBoundsScheme()
        vm = VM(scheme=scheme)
        before = scheme.metadata_bytes
        scheme.malloc(vm, 100)
        assert scheme.metadata_bytes - before == 4

    def test_realloc_retags(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            a[3] = 33;
            a = (int*)realloc(a, 16 * sizeof(int));
            a[15] = 1;           // fine now
            return a[3];
        }
        """
        value, _, _ = run_sb(src)
        assert value == 33

    def test_violation_counter(self):
        src = """
        int main() {
            int *a = (int*)malloc(4 * sizeof(int));
            return a[5];
        }
        """
        scheme = SGXBoundsScheme(boundless=True)
        _, vm = run_c(src, scheme=scheme)
        assert scheme.violations == 1

    def test_checks_elided_metadata(self):
        """Safe-access optimization records elisions in module meta."""
        from tests.util import build
        src = """
        struct P { int a; int b; };
        int main() { struct P p; p.a = 1; p.b = 2; return p.a + p.b; }
        """
        module = build(src, SGXBoundsScheme())
        assert module.meta["checks_elided"] > 0
