"""Suite-level workload tests: completeness + cross-scheme agreement."""

import pytest

from repro.core import SGXBoundsScheme
from repro.harness.runner import run_workload
from repro.workloads import all_workloads, by_suite, get

PHOENIX = [w.name for w in by_suite("phoenix")]
PARSEC = [w.name for w in by_suite("parsec")]
SPEC = [w.name for w in by_suite("spec")]


class TestSuiteCompleteness:
    """The paper evaluates 7 Phoenix, 9 PARSEC and 13 SPEC programs."""

    def test_phoenix_has_7(self):
        assert len(PHOENIX) == 7

    def test_parsec_has_9(self):
        assert len(PARSEC) == 9

    def test_spec_has_13(self):
        assert len(SPEC) == 13

    def test_all_have_five_sizes(self):
        for workload in all_workloads():
            assert set(workload.sizes) == {"XS", "S", "M", "L", "XL"}
            sizes = [workload.sizes[s] for s in ("XS", "S", "M", "L", "XL")]
            assert sizes == sorted(sizes), workload.name


@pytest.mark.parametrize("name", PHOENIX + PARSEC + SPEC)
class TestEveryWorkload:
    def test_native_and_sgxbounds_agree(self, name):
        workload = get(name)
        native = run_workload(workload, "native", size="XS", threads=1)
        assert native.ok, native.crashed
        protected = run_workload(workload, "sgxbounds", size="XS", threads=1)
        assert protected.ok, protected.crashed
        assert protected.result == native.result
        # Instrumentation is never free, but must stay sane.
        assert 1.0 <= protected.cycles / native.cycles < 10.0


class TestThreadScaling:
    @pytest.mark.parametrize("name", ["histogram", "linear_regression"])
    def test_thread_count_does_not_change_answers(self, name):
        workload = get(name)
        single = run_workload(workload, "native", size="XS", threads=1)
        multi = run_workload(workload, "native", size="XS", threads=4)
        assert single.result == multi.result

    def test_oracles_hold_for_all_sizes(self):
        for name in ("histogram", "linear_regression"):
            workload = get(name)
            for size in ("XS", "S"):
                r = run_workload(workload, "native", size=size, threads=2)
                assert r.result == workload.expected(*workload.args_for(size, 2))


class TestPointerIntensityMetadata:
    def test_pointer_heavy_kernels_pay_more_under_mpx(self):
        """The MPX cost asymmetry the paper leans on: pointer-heavy
        kernels (pca) pay far more than streaming kernels (histogram,
        §6.2: 'pointer-less programs perform significantly better')."""
        def mpx_overhead(name):
            native = run_workload(get(name), "native", size="XS", threads=1)
            mpx = run_workload(get(name), "mpx", size="XS", threads=1)
            return mpx.cycles / native.cycles, mpx

        heavy_ratio, heavy = mpx_overhead("pca")
        light_ratio, _ = mpx_overhead("blackscholes")
        assert heavy_ratio > light_ratio
        assert heavy.scheme_report["bounds_tables"] >= 1

    def test_sgxbounds_memory_is_flat_everywhere(self):
        for name in ("pca", "word_count", "dedup"):
            workload = get(name)
            native = run_workload(workload, "native", size="XS", threads=1)
            sgxb = run_workload(workload, "sgxbounds", size="XS", threads=1)
            assert sgxb.peak_reserved <= native.peak_reserved * 1.25, name
