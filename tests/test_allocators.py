"""Unit tests for the heap allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DoubleFree, OutOfMemory
from repro.memory import (
    AddressSpace,
    BuddyAllocator,
    FreeListAllocator,
    MmapAllocator,
    PoolAllocator,
)
from repro.memory.layout import PAGE_SIZE


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def heap(space):
    return FreeListAllocator(space)


class TestFreeList:
    def test_malloc_returns_usable_memory(self, space, heap):
        p = heap.malloc(100)
        space.write(p, b"x" * 100)
        assert space.read(p, 100) == b"x" * 100

    def test_allocations_disjoint(self, space, heap):
        blocks = [heap.malloc(40) for _ in range(50)]
        for i, p in enumerate(blocks):
            space.write_u32(p, i)
        for i, p in enumerate(blocks):
            assert space.read_u32(p) == i

    def test_free_and_reuse(self, heap):
        p = heap.malloc(64)
        heap.free(p)
        q = heap.malloc(64)
        assert q == p    # size-class free list reuses the block

    def test_double_free_detected(self, heap):
        p = heap.malloc(8)
        heap.free(p)
        with pytest.raises(DoubleFree):
            heap.free(p)

    def test_free_of_garbage_detected(self, heap):
        with pytest.raises(DoubleFree):
            heap.free(0x123456)

    def test_calloc_zeroes(self, space, heap):
        p = heap.malloc(64)
        space.fill(p, 0xFF, 64)
        heap.free(p)
        q = heap.calloc(8, 8)
        assert space.read(q, 64) == b"\x00" * 64

    def test_realloc_preserves_prefix(self, space, heap):
        p = heap.malloc(16)
        space.write(p, b"abcdefgh" * 2)
        q = heap.realloc(p, 400)
        assert space.read(q, 16) == b"abcdefgh" * 2

    def test_realloc_within_block_is_in_place(self, heap):
        p = heap.malloc(10)
        assert heap.realloc(p, 14) == p

    def test_large_allocations_use_mmap(self, heap):
        p = heap.malloc(512 * 1024)
        assert heap.usable_size(p) == 512 * 1024
        heap.free(p)

    def test_usable_size(self, heap):
        p = heap.malloc(100)
        assert heap.usable_size(p) == 100
        heap.free(p)
        assert heap.usable_size(p) is None

    def test_malloc_zero_allowed(self, heap):
        assert heap.malloc(0) != 0

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1,
                    max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_property_no_overlaps(self, sizes):
        space = AddressSpace()
        heap = FreeListAllocator(space)
        live = {}
        for i, size in enumerate(sizes):
            p = heap.malloc(size)
            for q, qsize in live.items():
                assert p + size <= q or q + qsize <= p, "overlap"
            live[p] = size


class TestMmapAllocator:
    def test_page_granular(self, space):
        mm = MmapAllocator(space)
        p = mm.alloc(100)
        assert p % PAGE_SIZE == 0
        assert mm.size_of(p) == PAGE_SIZE

    def test_free_unmaps(self, space):
        mm = MmapAllocator(space)
        p = mm.alloc(PAGE_SIZE)
        space.write_u8(p, 1)
        mm.free(p)
        assert not space.is_mapped(p)

    def test_hole_reuse(self, space):
        mm = MmapAllocator(space)
        p = mm.alloc(PAGE_SIZE)
        q = mm.alloc(PAGE_SIZE)
        mm.free(p)
        r = mm.alloc(PAGE_SIZE)
        assert r == p
        assert q != p

    def test_double_free(self, space):
        mm = MmapAllocator(space)
        p = mm.alloc(PAGE_SIZE)
        mm.free(p)
        with pytest.raises(DoubleFree):
            mm.free(p)


class TestBuddy:
    def test_power_of_two_blocks(self, space):
        buddy = BuddyAllocator(space, 1 << 20)
        p = buddy.alloc(100)
        base, size = buddy.block_bounds(p + 50)
        assert base == p
        assert size == 128

    def test_coalescing(self, space):
        buddy = BuddyAllocator(space, 1 << 16)
        a = buddy.alloc(1 << 15)
        b = buddy.alloc(1 << 15)
        buddy.free(a)
        buddy.free(b)
        c = buddy.alloc(1 << 16)   # only possible if buddies coalesced
        assert c is not None

    def test_exhaustion(self, space):
        buddy = BuddyAllocator(space, 1 << 14)
        buddy.alloc(1 << 14)
        with pytest.raises(OutOfMemory):
            buddy.alloc(16)

    def test_double_free(self, space):
        buddy = BuddyAllocator(space, 1 << 14)
        p = buddy.alloc(64)
        buddy.free(p)
        with pytest.raises(DoubleFree):
            buddy.free(p)


class TestPool:
    def test_bump_allocation(self, space):
        pool = PoolAllocator(MmapAllocator(space))
        a = pool.alloc(100)
        b = pool.alloc(100)
        assert b > a
        assert pool.chunk_count == 1

    def test_new_chunk_when_full(self, space):
        pool = PoolAllocator(MmapAllocator(space), chunk_size=PAGE_SIZE)
        pool.alloc(PAGE_SIZE - 8)
        pool.alloc(PAGE_SIZE - 8)
        assert pool.chunk_count == 2

    def test_clear_releases_chunks(self, space):
        mm = MmapAllocator(space)
        pool = PoolAllocator(mm)
        pool.alloc(100)
        before = space.reserved_bytes
        pool.clear()
        assert space.reserved_bytes < before
        assert pool.chunk_count == 0

    def test_per_chunk_overhead_costs_a_page(self, space):
        """The Apache effect: +4 bytes per page-aligned chunk = +1 page."""
        mm = MmapAllocator(space)
        plain = PoolAllocator(mm, chunk_size=PAGE_SIZE)
        padded = PoolAllocator(mm, chunk_size=PAGE_SIZE, overhead=4)
        base = space.reserved_bytes
        plain.alloc(64)
        plain_cost = space.reserved_bytes - base
        base = space.reserved_bytes
        padded.alloc(64)
        padded_cost = space.reserved_bytes - base
        assert padded_cost == plain_cost + PAGE_SIZE
