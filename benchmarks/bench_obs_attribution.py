"""Request observatory: attribution tax ranking + burn-rate alerting.

Not a paper figure — this pins the observatory's two headline claims.
The per-request bounds-check tax (scheme-vs-native counter deltas priced
through the cost model) must rank SGXBounds below ASan on the memcached
fleet: tagged-pointer bounds live inside the pointer, so SGXBounds pays
a thin instruction stream where ASan pays redzone shadow traffic and the
EPC pressure it drags in.  And the multi-window burn-rate rules must
page on the naive overload collapse (late serves burn the availability
budget) while staying silent on the protected fleet that sheds load —
an alert that cannot tell those apart is noise.
"""

from repro.fleet.campaign import CampaignConfig, run_campaign
from repro.obs import Observability
from repro.obs.dashboard import observe_fleet

SCHEMES = ("native", "sgxbounds", "asan")


def test_obs_attribution_and_alerts(benchmark, save_result):
    data, text = benchmark.pedantic(
        observe_fleet, kwargs=dict(schemes=SCHEMES),
        rounds=1, iterations=1)
    save_result("obs_attribution", text)

    # Every scheme's campaign decomposed every served request, and the
    # exact-sum invariant held (rollup means are finite, not None).
    for scheme in SCHEMES:
        rollup = data["schemes"][scheme]["rollup"]
        assert rollup["served"] > 0
        assert rollup["mean_total_ticks"] is not None

    # The headline tax ranking: SGXBounds' instrumentation share of
    # per-request enclave cycles is below ASan's.
    sgx_tax = data["schemes"]["sgxbounds"]["tax"]["tax_share"]
    asan_tax = data["schemes"]["asan"]["tax"]["tax_share"]
    assert 0.0 < sgx_tax < asan_tax, (
        f"tax ranking violated: sgxbounds {sgx_tax:.4f} "
        f"vs asan {asan_tax:.4f}")

    # Burn-rate rules page on the naive collapse, stay silent when the
    # fleet protects itself at the same offered load.
    assert data["alerts"]["naive"]["burn"]["fired"] > 0
    assert data["alerts"]["protected"]["burn"]["fired"] == 0
    # ... and the collapse really was a collapse: most naive serves
    # missed their deadline.
    naive_slo = data["alerts"]["naive"]["slo"]
    assert naive_slo["overload"]["timely"] < naive_slo["served"]


def test_obs_zero_cost_when_off(benchmark, save_result):
    """Attaching the observatory must not change campaign results."""
    config = dict(app="memcached", scheme="sgxbounds", workers=2,
                  fault_rate=0.0, seed=7, size="XS")

    def run():
        plain = run_campaign(CampaignConfig(**config)).as_dict()
        obs = Observability(seed=7)
        observed = run_campaign(CampaignConfig(**config),
                                obs=obs).as_dict()
        return plain, observed

    plain, observed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "obs" in observed
    observed.pop("obs")
    assert observed == plain
    save_result("obs_zero_cost",
                "observe on/off campaign results identical: OK")
