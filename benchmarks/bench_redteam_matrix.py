"""Redteam detection matrix: Table-4 shape over the synthesized catalog.

The assertions pin the paper's categorical claims (§6.6 extended with
the attack classes the fixed RIPE set cannot express):

* MPX is blind to laundered pointers (no bndldx for an integer load),
* object-granularity schemes are blind to in-struct overflows,
* SGXBounds' tag survives int<->pointer casts, so it catches every
  adjacent-object class (direct, laundered, off-by-N, underflow),
* Baggy's power-of-two allocation bounds miss within-padding off-by-N,
* boundless mode converts aborts into bounded, *measured* leakage
  (nonzero leaked_bytes under boundless, none recorded under abort),
* benign boundary twins trip zero false positives everywhere.
"""

from repro.redteam import matrix


def _detected(grid, cls, scheme):
    return grid[cls][scheme]["detected"]


def test_redteam_matrix(benchmark, save_result):
    data, text = benchmark.pedantic(matrix.run_matrix,
                                    rounds=1, iterations=1)
    save_result("redteam_matrix", text)
    grid = data["grid"]

    # Native prevents nothing, across every class.
    assert all(_detected(grid, cls, "native") == 0 for cls in grid)

    # In-struct overflows are invisible at object granularity.
    for scheme in ("sgxbounds", "asan", "mpx", "baggy"):
        assert _detected(grid, "in-struct", scheme) == 0

    # The laundered int<->pointer cast blinds MPX and only MPX among the
    # pointer-tracking schemes; SGXBounds' tag rides inside the value.
    total = grid["adjacent-laundered"]["mpx"]["total"]
    assert _detected(grid, "adjacent-laundered", "mpx") == 0
    assert grid["adjacent-laundered"]["mpx"]["exploited"] == total
    assert _detected(grid, "adjacent-laundered", "sgxbounds") == total
    assert _detected(grid, "adjacent-laundered", "asan") == total

    # SGXBounds catches every adjacent-object class in full.
    for cls in ("adjacent-direct", "adjacent-laundered", "off-by-n",
                "underflow"):
        assert _detected(grid, cls, "sgxbounds") == grid[cls]["sgxbounds"]["total"]

    # Baggy's allocation bounds cannot see within-padding off-by-N.
    assert _detected(grid, "off-by-n", "baggy") == 0

    # ASan's shadow passes redzone-jumping underflow reads; temporal
    # (quarantine) is its exclusive.
    assert _detected(grid, "underflow", "asan") < grid["underflow"]["asan"]["total"]
    assert _detected(grid, "temporal", "asan") > 0
    assert _detected(grid, "temporal", "sgxbounds") == 0

    # Interface attacks: every protected bounds scheme with object
    # granularity stops the whole hostile-request set.
    for scheme in ("sgxbounds", "asan", "mpx"):
        assert _detected(grid, "interface", scheme) == grid["interface"][scheme]["total"]

    # Benign boundary twins: zero false positives everywhere.
    for scheme, fp in data["false_positives"].items():
        assert fp["false_positives"] == 0, (scheme, fp["flagged"])

    # Boundless converts aborts into bounded, measured leakage.
    leaks = data["boundless_leaks"]
    assert leaks["sgxbounds/boundless"]["leaked_bytes"] > 0
    assert leaks["sgxbounds/boundless"]["oblivious_reads"] > 0
    assert "sgxbounds/abort" not in leaks

    # The under-load column exists for every scheme in the sweep.
    storm_schemes = {row["scheme"] for row in data["under_load"]}
    assert storm_schemes == set(data["schemes"])
    assert all(0.0 <= row["availability"] <= 1.0
               for row in data["under_load"])
