"""Figure 9: effect of multithreading (1 vs 4 threads).

Paper shape: SGXBounds' overhead does not grow with thread count (17% ->
16% in the paper) because pointer+bound share one word and need no
synchronization; ASan's can grow (35% -> 49%) where redzones/shadow break
the layout of cache-conscious multithreaded kernels.
"""

from repro.harness import experiments
from repro.harness.runner import geomean


def test_fig9_multithreading(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        experiments.fig9_multithreading, kwargs={"size": bench_size},
        rounds=1, iterations=1)
    save_result("fig09_multithreading", text)

    def gm(threads, scheme):
        return geomean([row[scheme] for row in data[threads].values()
                        if row.get(scheme) is not None])

    # SGXBounds' overhead must not blow up with threads (within noise).
    assert gm(4, "sgxbounds") < gm(1, "sgxbounds") * 1.25
    # And it beats ASan at 4 threads.
    assert gm(4, "sgxbounds") < gm(4, "asan")
