"""Figure 10: effect of the two §4.4 optimizations on SGXBounds.

Paper shape: modest average improvement (about 2%) with significant gains
on loop/array-heavy kernels (up to ~20-22% for kmeans/matrixmul/x264);
optimizations never make things slower and never change results.
"""

from repro.harness import experiments
from repro.harness.runner import geomean


def test_fig10_optimizations(benchmark, save_result):
    data, text = benchmark.pedantic(experiments.fig10_optimizations,
                                    rounds=1, iterations=1)
    save_result("fig10_optimizations", text)

    def gm(variant):
        return geomean([row[variant] for row in data.values()
                        if row.get(variant) is not None])

    # All optimizations combined never lose to no optimization.
    assert gm("all-opt") <= gm("no-opt") * 1.01
    for name, row in data.items():
        assert row["all-opt"] <= row["no-opt"] * 1.05, name
    # And at least one kernel gains substantially (the kmeans/matmul
    # story in the paper).
    best_gain = max((row["no-opt"] - row["all-opt"]) / row["no-opt"]
                    for row in data.values())
    assert best_gain > 0.10, "expected a >10% winner among the kernels"
