"""Figure 7: Phoenix + PARSEC overheads over native SGX (8 threads in the
paper; 4 simulated threads here).

Paper shape: SGXBounds has the lowest average performance overhead (17% on
the paper's testbed) and essentially zero memory overhead (0.1%); ASan is
mid-field on performance (51%) but catastrophic on memory (8.1x average,
with quarantine blow-ups like swaptions); MPX averages worst on
performance (75%) with per-benchmark extremes on pointer-intensive
kernels, and ~2x+ memory from bounds tables.
"""

from repro.harness import experiments
from repro.harness.runner import geomean


def test_fig7_phoenix_parsec(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        experiments.fig7_phoenix_parsec, kwargs={"size": bench_size},
        rounds=1, iterations=1)
    save_result("fig07_phoenix_parsec", text, data=data)

    perf, mem = data["perf"], data["mem"]

    def gm(table, scheme):
        return geomean([row[scheme] for row in table.values()
                        if row.get(scheme) is not None])

    # Performance ordering: SGXBounds < ASan and SGXBounds < MPX.
    assert gm(perf, "sgxbounds") < gm(perf, "asan")
    assert gm(perf, "sgxbounds") < gm(perf, "mpx")

    # Memory: SGXBounds ~zero overhead; ASan huge; MPX in between.
    assert gm(mem, "sgxbounds") < 1.1
    assert gm(mem, "asan") > 50
    assert 1.2 < gm(mem, "mpx") < gm(mem, "asan")

    # Pointer-free kernels are near-free under MPX (histogram story)...
    assert perf["blackscholes"]["mpx"] < 1.5
    # ...while the quarantine pathology hits swaptions under ASan.
    assert perf["swaptions"]["asan"] > 2.0
    assert perf["swaptions"]["sgxbounds"] < 1.3
