"""Chaos availability: fault rates x violation policies on the servers.

Not a paper figure — this extends Fig. 13's server case studies with the
robustness question the paper raises but never quantifies: *how much
service survives an attack under each violation response?*  Expected
shape: with no faults every policy serves everything; at a non-zero fault
rate fail-stop (``abort``) loses most of the run at the first poisoned
request, while ``drop-request`` and ``boundless`` keep availability high,
paying a bounded per-request recovery cost.
"""

from repro.harness.chaos import chaos_availability

FAULT_RATE = 0.2


def test_chaos_availability(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        chaos_availability,
        kwargs=dict(fault_rates=(0.0, FAULT_RATE), size=bench_size),
        rounds=1, iterations=1)
    save_result("chaos_availability", text, data=data)

    for app in ("memcached", "nginx"):
        per = data[app]
        scheme = "sgxbounds"
        # Clean traffic: everything is served under every policy.
        for policy in ("abort", "drop-request", "boundless"):
            assert per[(scheme, policy, 0.0)]["availability"] == 1.0, \
                f"{app}/{policy}: lost requests with no faults injected"
        # Faulted traffic: graceful degradation beats fail-stop.
        abort = per[(scheme, "abort", FAULT_RATE)]
        drop = per[(scheme, "drop-request", FAULT_RATE)]
        boundless = per[(scheme, "boundless", FAULT_RATE)]
        assert drop["availability"] > abort["availability"], \
            f"{app}: drop-request did not beat abort"
        assert boundless["availability"] > abort["availability"], \
            f"{app}: boundless did not beat abort"
        # The fail-stop run really did die, and the tolerant ones did not.
        assert abort["status"] != "ok"
        assert drop["status"] == "ok"
        assert boundless["status"] == "ok"
        # Recovery is visible and bounded: requests were dropped, the rest
        # was served.
        assert drop["dropped"] > 0
        assert drop["availability"] >= 0.5
