"""Extension bench: SGXBounds vs a Baggy-Bounds-style scheme (§2.2).

The paper argues Baggy Bounds' tagged/table design makes it the natural
competitor inside enclaves but could not compare against it (no public
release; reported numbers: 70% perf, 12% memory on SPECINT 2000).  This
bench runs our Baggy implementation next to SGXBounds on heap-centric
kernels. Expected shape: both stay well under ASan; Baggy pays
power-of-two padding memory where SGXBounds pays 4 bytes/object.
"""

from repro.harness import report
from repro.harness.runner import run_workload
from repro.workloads import get

KERNELS = ("swaptions", "dedup", "word_count", "histogram")


def test_ext_baggy_vs_sgxbounds(benchmark, save_result):
    def run():
        table = {}
        pad = {}
        for name in KERNELS:
            base = run_workload(get(name), "native", size="XS", threads=1)
            row = {}
            for scheme in ("sgxbounds", "baggy", "asan"):
                r = run_workload(get(name), scheme, size="XS", threads=1)
                assert r.ok and r.result == base.result, (name, scheme)
                row[scheme] = r.cycles / base.cycles
                if scheme == "baggy":
                    pad[name] = r.scheme_report["padding_bytes"]
            table[name] = row
        return table, pad

    table, pad = benchmark.pedantic(run, rounds=1, iterations=1)
    text = report.overhead_table(
        "Extension: Baggy Bounds vs SGXBounds (perf overhead vs native)",
        table, ("sgxbounds", "baggy", "asan"))
    text += "\n\nBaggy power-of-two padding (bytes): " + ", ".join(
        f"{k}={v}" for k, v in pad.items())
    save_result("ext_baggy", text)

    for name, row in table.items():
        # Both tagged/table schemes beat ASan's worst pathologies; Baggy
        # is a real contender, as §2.2 suggests.
        assert row["baggy"] < max(row["asan"] * 1.5, 3.0), name
    # Odd-sized nodes (24B hash nodes -> 32B blocks) force padding.
    assert pad["word_count"] > 0
