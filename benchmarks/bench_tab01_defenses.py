"""Table 1: defense classification (static table from §2.1).

Reproduced as documentation; the accompanying check exercises the claim
the table encodes for this work — memory safety stops the information
leak (Heartbleed) that shielding alone does not.
"""

from repro.harness import experiments
from repro.harness.runner import run_server
from repro.workloads.apps import apache


def test_tab1_defenses(benchmark, save_result):
    _, text = benchmark.pedantic(experiments.tab1_defenses,
                                 rounds=1, iterations=1)
    save_result("tab01_defenses", text)

    # Shielded execution alone (native SGX) leaks on Heartbleed...
    requests = apache.workload(8) + [apache.heartbleed_request()]
    r = run_server(apache.SOURCE, [requests], "native", 9, threads=1,
                   name="apache")
    leaked = any(b"SSSS" in m for m in r.net.sent(0))
    assert r.ok and leaked, "unprotected enclave should leak the secret"

    # ...while the memory-safety row holds: SGXBounds stops the leak.
    r = run_server(apache.SOURCE, [requests], "sgxbounds", 9, threads=1,
                   name="apache")
    assert not r.ok and r.crashed == "BoundsViolation"
