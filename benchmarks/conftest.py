"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures: it runs the
experiment once under ``pytest-benchmark`` timing, writes the paper-style
table to ``benchmarks/results/<name>.txt``, and asserts the coarse *shape*
of the result (who wins, where the pathologies are) — never absolute
numbers, since the substrate is a simulator.

Set ``REPRO_BENCH_SIZE`` (XS/S/M/...) to trade fidelity for wall time.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "XS")


@pytest.fixture
def save_result():
    def _save(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        saved = f"benchmarks/results/{name}.txt"
        if data is not None:
            from repro.telemetry.results import emit_result
            emit_result(name, data, directory=RESULTS_DIR)
            saved += f" + {name}.json"
        print(f"\n{text}\n[saved to {saved}]")
    return _save
