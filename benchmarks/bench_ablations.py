"""Ablation benches for the design choices DESIGN.md calls out.

1. Boundless-memory overlay capacity (1 KiB chunks / 1 MiB cap in §4.2):
   a bounded LRU must keep huge out-of-bounds spans survivable at a flat
   memory cost.
2. Pointer-arithmetic clamping (§3.2): what the 32-bit confinement costs
   on pointer-arithmetic-heavy code (the price of tag integrity).
3. Per-object metadata size (§4.3): extra metadata items shift memory
   overhead measurably but linearly.
"""

from repro.core import MetadataManager, SGXBoundsScheme
from repro.core.boundless import BoundlessCache
from repro.harness.runner import run_workload
from repro.minic import compile_source
from repro.vm import VM
from repro.workloads import get


def test_boundless_lru_capacity(benchmark, save_result):
    """OOB sweeps far larger than the overlay stay bounded by the cap."""
    src = """
    int main(int n, int threads) {
        char *p = (char*)malloc(16);
        for (uint off = 16; off < (uint)n; off += 1024) p[off] = 1;
        return 7;
    }
    """

    def run():
        rows = []
        for cap in (16 * 1024, 256 * 1024, 1024 * 1024):
            scheme = SGXBoundsScheme(boundless=True)
            scheme.overlay = BoundlessCache(capacity_bytes=cap)
            module = scheme.instrument(compile_source(src)).finalize()
            vm = VM(scheme=scheme)
            vm.load(module)
            result = vm.run("main", (4_000_000, 1))
            stats = scheme.overlay.stats()
            assert result == 7
            assert stats["chunks_live"] <= cap // 1024
            rows.append((cap, stats["chunks_live"], stats["evictions"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Ablation: boundless LRU capacity\n" + "\n".join(
        f"cap={cap:>8}B live_chunks={live:>5} evictions={ev}"
        for cap, live, ev in rows)
    save_result("ablation_boundless", text)
    # Larger caps strictly reduce evictions.
    assert rows[0][2] >= rows[1][2] >= rows[2][2]


def test_clamping_cost(benchmark, save_result):
    """Clamped pointer arithmetic costs a bounded premium over unclamped
    (safe-marked) arithmetic — the price of tag integrity."""
    workload = get("string_match")   # pointer-arithmetic heavy scan

    def run():
        no_opt = run_workload(workload, "sgxbounds", size="XS", threads=1,
                              scheme_kwargs={"optimize_safe": False,
                                             "optimize_hoist": False})
        opt = run_workload(workload, "sgxbounds", size="XS", threads=1)
        native = run_workload(workload, "native", size="XS", threads=1)
        return native, opt, no_opt

    native, opt, no_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation: pointer-arithmetic clamping / check elision\n"
            f"native cycles:    {native.cycles}\n"
            f"optimized:        {opt.cycles} ({opt.cycles/native.cycles:.2f}x)\n"
            f"fully clamped:    {no_opt.cycles} "
            f"({no_opt.cycles/native.cycles:.2f}x)")
    save_result("ablation_clamping", text)
    assert native.result == opt.result == no_opt.result
    assert opt.cycles <= no_opt.cycles


def test_metadata_item_cost(benchmark, save_result):
    """Each registered metadata item adds exactly 4 bytes per object."""
    src = """
    int main(int n, int threads) {
        for (int i = 0; i < n; i++) {
            char *p = (char*)malloc(32);
            p[0] = 1;
            free(p);
        }
        return 0;
    }
    """

    def run():
        rows = []
        for items in (0, 1, 4):
            manager = MetadataManager()
            for k in range(items):
                manager.register_item(f"item{k}")
            scheme = SGXBoundsScheme(metadata=manager)
            module = scheme.instrument(compile_source(src)).finalize()
            vm = VM(scheme=scheme)
            vm.load(module)
            vm.run("main", (50, 1))
            rows.append((items, scheme.metadata_bytes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Ablation: metadata items vs per-object footprint\n" + "\n".join(
        f"items={items} metadata_bytes={total}" for items, total in rows)
    save_result("ablation_metadata", text)
    base = rows[0][1]
    per_object = base // 4    # 4 bytes per object at zero items
    assert rows[1][1] - base == per_object * 4
    assert rows[2][1] - base == per_object * 16
