"""Overload protection: goodput under saturation, naive vs protected.

Not a paper figure — this stresses the fleet past its capacity knee.
The ``naive`` policy (unbounded client retries, no admission control,
expired requests abandoned in place) suffers congestion collapse: past
saturation almost every serve is a late serve, so goodput (timely
serves per tick, end-to-end from the first client attempt) falls far
below the fleet's peak.  The ``protected`` policy (deadline-aware
admission, brownout shedding of low priority classes, budgeted client
retries) rejects the excess at the front door and sustains near-peak
goodput, with the critical class shielded by class-scaled deadline
headroom.  The metastable flash-crowd scenario shows the sharper
failure mode: naive goodput stays collapsed long after the burst ends.
"""

from repro.harness.experiments import overload_goodput

SCHEMES = ("sgxbounds", "asan")
RATES = (1, 2, 4, 8)


def test_overload_goodput(benchmark, save_result):
    # Size is pinned: the XS trace (50 requests) drains before the
    # retry storm can establish itself, so collapse needs S or larger.
    data, text = benchmark.pedantic(
        overload_goodput,
        kwargs=dict(schemes=SCHEMES, rates=RATES, size="S"),
        rounds=1, iterations=1)
    json_data = {"/".join(map(str, key)): record
                 for key, record in data.items()}
    save_result("overload_goodput", text, data=json_data)

    def goodput(cell):
        return cell["slo"]["overload"]["timely"] / cell["ticks"]

    def crit_avail(cell):
        crit = cell["slo"]["overload"]["by_class"]["critical"]
        return crit["timely"] / max(1, crit["submitted"])

    for scheme in SCHEMES:
        naive = {r: data[(scheme, "naive", r)] for r in RATES}
        prot = {r: data[(scheme, "protected", r)] for r in RATES}

        # Past saturation the naive fleet collapses: goodput at the top
        # rate falls to less than half its own peak.
        naive_peak = max(goodput(c) for c in naive.values())
        assert goodput(naive[RATES[-1]]) <= 0.5 * naive_peak, (
            f"{scheme}: naive goodput did not collapse past saturation "
            f"({goodput(naive[RATES[-1]]):.2f} vs peak {naive_peak:.2f})")

        # The protected fleet sheds the excess and sustains >= 90% of
        # its own peak goodput at the same offered load.
        prot_peak = max(goodput(c) for c in prot.values())
        assert goodput(prot[RATES[-1]]) >= 0.9 * prot_peak, (
            f"{scheme}: protected goodput sagged past saturation "
            f"({goodput(prot[RATES[-1]]):.2f} vs peak {prot_peak:.2f})")

        # Admission control actually engaged at the top rate — the
        # sustained goodput is shedding, not spare capacity.
        assert prot[RATES[-1]]["slo"]["overload"]["rejected"] > 0

        for rate in RATES:
            # Brownout + class headroom shield the critical class: its
            # timely availability under protection is never worse than
            # naive's, in every scheme x rate cell.
            assert crit_avail(prot[rate]) >= crit_avail(naive[rate]), (
                f"{scheme}@rate={rate}: protected critical availability "
                f"{crit_avail(prot[rate]):.2f} < naive "
                f"{crit_avail(naive[rate]):.2f}")
            for mode, cell in (("naive", naive[rate]),
                               ("protected", prot[rate])):
                slo = cell["slo"]
                ov = slo["overload"]
                # Accounting identity: every submitted rid reaches
                # exactly one terminal state.  Rejections are their own
                # bucket — never double-counted as errors or failures,
                # and never part of an availability denominator twice.
                assert slo["submitted"] == (
                    slo["served"] + slo["error_replies"] + slo["failed"]
                    + ov["rejected"]), (
                    f"{scheme}/{mode}@rate={rate}: terminal accounting "
                    f"does not balance: {slo}")
                assert ov["timely"] <= slo["served"]
            # Naive mode has no gate: nothing is ever rejected.
            assert naive[rate]["slo"]["overload"]["rejected"] == 0

    # Metastable flash crowd: after the burst window ends, the naive
    # fleet's goodput timeline stays collapsed (retry storm + zombies
    # keep the overload alive) while the protected fleet recovers.
    for scheme in SCHEMES:
        n = data[("metastable", scheme, "naive")]["slo"]["overload"]
        p = data[("metastable", scheme, "protected")]["slo"]["overload"]
        # Windows are 20 ticks; the burst ends at tick 50 (window 2).
        post_burst = 3
        naive_tail = sum(n["goodput_timeline"][post_burst:])
        prot_tail = sum(p["goodput_timeline"][post_burst:])
        assert prot_tail > naive_tail, (
            f"{scheme}: protected post-burst goodput {prot_tail} did not "
            f"beat naive {naive_tail} — no metastable collapse shown")
        assert p["timely"] > n["timely"]
