"""Figure 12: SPEC outside the enclave (unconstrained memory).

Paper shape — the honest negative result: outside SGX, SGXBounds *loses*
its advantage (55% there vs ASan's 38%); its benefit is tied to the
enclave's memory constraints.  We assert that the SGXBounds-vs-ASan gap
shrinks (or flips) relative to the in-enclave configuration.
"""

from repro.harness import experiments
from repro.harness.runner import geomean


def _gm(table, scheme):
    return geomean([row[scheme] for row in table.values()
                    if row.get(scheme) is not None])


def test_fig12_spec_native(benchmark, save_result, bench_size):
    def run():
        inside, _ = experiments.fig11_spec_sgx(size=bench_size)
        outside, text = experiments.fig12_spec_native(size=bench_size)
        return inside, outside, text

    inside, outside, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig12_spec_native", text)

    in_gap = _gm(inside["perf"], "asan") - _gm(inside["perf"], "sgxbounds")
    out_gap = _gm(outside["perf"], "asan") - _gm(outside["perf"], "sgxbounds")
    # Outside the enclave SGXBounds' edge over ASan shrinks.
    assert out_gap < in_gap, (
        f"SGXBounds' advantage should shrink outside SGX "
        f"(inside gap {in_gap:.3f}, outside gap {out_gap:.3f})")
