"""Figure 11: SPEC CPU2006 subset inside the enclave.

Paper shape: SGXBounds lowest perf and memory overheads on average (41%
and 0.4% there); ASan worst on memory (~10x); MPX between on performance
but failing on pointer-heavy members.
"""

from repro.harness import experiments
from repro.harness.runner import geomean


def test_fig11_spec_sgx(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        experiments.fig11_spec_sgx, kwargs={"size": bench_size},
        rounds=1, iterations=1)
    save_result("fig11_spec_sgx", text, data=data)

    perf, mem = data["perf"], data["mem"]

    def gm(table, scheme):
        return geomean([row[scheme] for row in table.values()
                        if row.get(scheme) is not None])

    assert gm(perf, "sgxbounds") < gm(perf, "asan")
    assert gm(mem, "sgxbounds") < 1.1
    assert gm(mem, "asan") > 50
    # mcf: the paper's ASan EPC-thrashing showcase — SGXBounds must beat
    # ASan there decisively.
    assert perf["mcf"]["sgxbounds"] < perf["mcf"]["asan"]
