"""Fleet availability: violation policies x enclave restart cost.

Not a paper figure — this takes §6.4's availability argument to fleet
scale.  A supervised fleet of enclave workers serves poisoned traffic
behind a load balancer; fail-stop (``abort``) pays an enclave cold start
(rebuild + re-attestation + EPC re-warm) for every detected violation,
while requests queue behind the hole until the client deadline expires.
Expected shape: ``abort`` availability < ``drop-request`` <=
``boundless``, and the abort gap widens as the EPC re-warm multiplier
(the working-set-size knob) grows.
"""

from repro.harness.experiments import fleet_availability

FAULT_RATE = 0.2
REWARM_SCALES = (1.0, 8.0)


def test_fleet_availability(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        fleet_availability,
        kwargs=dict(fault_rate=FAULT_RATE, size=bench_size,
                    rewarm_scales=REWARM_SCALES),
        rounds=1, iterations=1)
    json_data = {f"{policy}@rewarm={scale}": record
                 for (policy, scale), record in data.items()}
    save_result("fleet_availability", text, data=json_data)

    for scale in REWARM_SCALES:
        abort = data[("abort", scale)]["slo"]
        drop = data[("drop-request", scale)]["slo"]
        boundless = data[("boundless", scale)]["slo"]
        # The paper's ordering, at fleet scale.
        assert abort["availability"] < drop["availability"], \
            f"rewarm {scale}: abort did not lose to drop-request"
        assert drop["availability"] <= boundless["availability"], \
            f"rewarm {scale}: drop-request beat boundless"
        # Fail-stop actually crashed and paid restarts; the tolerant
        # policies never lost a worker.
        assert data[("abort", scale)]["crashes"] > 0
        assert data[("abort", scale)]["supervisor"]["restart_cycles"] > 0
        assert data[("drop-request", scale)]["crashes"] == 0
        assert data[("boundless", scale)]["crashes"] == 0

    # The abort availability gap widens with restart cost: throwing away
    # a bigger working set costs more ticks of downtime per crash.
    cheap = data[("abort", REWARM_SCALES[0])]["slo"]["availability"]
    dear = data[("abort", REWARM_SCALES[-1])]["slo"]["availability"]
    assert dear < cheap, (
        f"abort availability should fall as restart cost rises "
        f"({cheap} -> {dear})")
