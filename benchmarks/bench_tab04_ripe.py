"""Table 4: RIPE security benchmark.

Paper numbers to match exactly (they're categorical, not performance):
MPX 2/16, AddressSanitizer 8/16, SGXBounds 8/16 — the 8 undetected
attacks for ASan/SGXBounds are all in-struct overflows.
"""

from repro.harness import experiments
from repro.workloads import ripe


def test_tab4_ripe(benchmark, save_result):
    data, text = benchmark.pedantic(experiments.tab4_ripe,
                                    rounds=1, iterations=1)
    save_result("tab04_ripe", text)

    assert ripe.prevented_count(data["native"]) == 0
    assert ripe.prevented_count(data["mpx"]) == 2
    assert ripe.prevented_count(data["asan"]) == 8
    assert ripe.prevented_count(data["sgxbounds"]) == 8

    # Every attack actually works when unprotected.
    assert all(o == ripe.SUCCEEDED for o in data["native"].values())

    # The misses of ASan and SGXBounds are exactly the in-struct family.
    for scheme in ("asan", "sgxbounds"):
        missed = {a for a, o in data[scheme].items() if o != ripe.PREVENTED}
        assert missed == {a for a in ripe.ATTACKS
                          if ripe.ATTACKS[a][0] == "in-struct"}
