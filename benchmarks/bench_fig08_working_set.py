"""Figure 8 + Table 3: behaviour with increasing working sets.

Paper shape: normalized to SGXBounds, the competing schemes' overheads
grow as metadata inflates the working set past the EPC — visible as rising
page-fault ratios in Table 3 — and the gap is widest where the SGXBounds
working set still fits but the metadata-inflated one does not.
"""

from repro.harness import experiments


def test_fig8_kmeans_matrixmul(benchmark, save_result):
    def run():
        d1, t1 = experiments.fig8_working_set(
            names=("kmeans",), sizes=("XS", "S", "M"))
        d2, t2 = experiments.fig8_working_set(
            names=("matrix_multiply",), sizes=("S", "M", "L"))
        return {**d1, **d2}, t1 + "\n\n" + t2

    data, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig08_working_set", text)

    for name, per_size in data.items():
        for size, per in per_size.items():
            sgxb = per["sgxbounds"]
            assert sgxb.ok, f"{name}/{size}: SGXBounds must survive"
            # SGXBounds keeps the native working set: its fault count
            # stays within a whisker of native's.
            native_faults = max(1, per["native"].counters["epc_faults"])
            assert sgxb.counters["epc_faults"] <= native_faults * 1.6
            # Metadata schemes never fault *less* than SGXBounds (they
            # strictly add memory).
            for other in ("asan", "mpx"):
                if per[other].ok:
                    assert per[other].counters["epc_faults"] >= \
                        sgxb.counters["epc_faults"] * 0.9
