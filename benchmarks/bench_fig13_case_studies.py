"""Figure 13: case studies — Memcached, Apache, Nginx throughput + memory.

Paper shape: SGXBounds tracks native SGX throughput closely on all three
servers with near-native memory; ASan's memory is enormous (shadow) while
its throughput cost varies; MPX's memory (bounds tables) dwarfs native.
"""

from repro.harness import experiments


def test_fig13_case_studies(benchmark, save_result):
    data, text = benchmark.pedantic(experiments.fig13_case_studies,
                                    rounds=1, iterations=1)
    save_result("fig13_case_studies", text, data=data)

    for app, per_scheme in data.items():
        native_tput, native_mem = per_scheme["native"]
        sgxb_tput, sgxb_mem = per_scheme["sgxbounds"]
        assert sgxb_tput > 0.4 * native_tput, \
            f"{app}: SGXBounds throughput collapsed"
        # Memory at peak throughput: SGXBounds near-native; ASan huge.
        assert sgxb_mem < native_mem * 2.0, f"{app}: SGXBounds memory"
        asan_tput, asan_mem = per_scheme["asan"]
        assert asan_mem > 20 * native_mem, f"{app}: ASan shadow missing?"
        # SGXBounds throughput beats or matches ASan's.
        assert sgxb_tput >= asan_tput * 0.95, f"{app}: tput ordering"
