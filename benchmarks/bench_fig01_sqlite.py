"""Figure 1: SQLite speedtest — performance and memory vs working set.

Paper shape to reproduce: SGXBounds stays within ~1.3-1.35x of native with
near-zero memory overhead at every size; AddressSanitizer slows down with
growing working sets (EPC pressure) and reserves ~512 MiB of shadow; Intel
MPX degrades sharply and *crashes* (out of enclave memory) once its bounds
tables outgrow the commit budget.
"""

from repro.harness import experiments


def test_fig1_sqlite(benchmark, save_result):
    data, text = benchmark.pedantic(experiments.fig1_sqlite,
                                    rounds=1, iterations=1)
    save_result("fig01_sqlite", text, data=data)

    largest_ok = None
    for size in ("XS", "S", "M", "L", "XL"):
        per = data[size]
        native = per["native"].cycles
        if per["sgxbounds"].ok:
            ratio = per["sgxbounds"].cycles / native
            assert ratio < per["asan"].cycles / native + 1e-9 \
                or not per["asan"].ok, \
                f"{size}: SGXBounds should not lose to ASan"
        # SGXBounds: almost zero memory overhead at every size.
        assert per["sgxbounds"].peak_reserved <= \
            per["native"].peak_reserved * 1.5
        # ASan reserves its 512 MiB shadow.
        assert per["asan"].peak_reserved > 100 * per["native"].peak_reserved
        if per["mpx"].ok:
            largest_ok = size
    # MPX must crash at some size (the paper's missing bars).
    assert not data["XL"]["mpx"].ok and data["XL"]["mpx"].crashed == "OOM", \
        "MPX should run out of enclave memory at the largest working set"
    assert largest_ok != "XL"
