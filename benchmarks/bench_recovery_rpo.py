"""Stateful recovery: RPO/RTO across policies x modes x intervals.

Not a paper figure — this extends §6.4's availability argument to
*durability*.  Fail-stop does not just cost downtime: every crash throws
away the enclave's acknowledged writes unless the fleet recovers them.
The sweep runs write-heavy campaigns under the recovery ladder (sealed
checkpoints, write-ahead replay, replica failover) and asserts its
defining shape: under ``abort``, ``restart-fresh`` loses every acked
write per crash, ``snapshot`` still loses the WAL tail past the sealed
checkpoint horizon, ``snapshot+wal`` replays the committed tail for
RPO = 0, and ``replica`` additionally survives crash-loop deaths by
promoting a warm standby — all priced honestly (seal/unseal cycles on
the enclave clock, restore/replay ticks stretching the RTO).
"""

from repro.harness.experiments import recovery_rpo

POLICIES = ("abort", "drop-request", "boundless")
INTERVALS = (5, 40)


def test_recovery_rpo(benchmark, save_result, bench_size):
    data, text = benchmark.pedantic(
        recovery_rpo,
        kwargs=dict(policies=POLICIES, intervals=INTERVALS,
                    size=bench_size),
        rounds=1, iterations=1)
    json_data = {f"{policy}/{mode}@interval={interval}": record
                 for (policy, mode, interval), record in data.items()}
    save_result("recovery_rpo", text, data=json_data)

    tight, loose = INTERVALS
    fresh = data[("abort", "restart-fresh", tight)]["recovery"]
    snap_t = data[("abort", "snapshot", tight)]["recovery"]
    snap_l = data[("abort", "snapshot", loose)]["recovery"]
    wal_t = data[("abort", "snapshot+wal", tight)]["recovery"]
    wal_l = data[("abort", "snapshot+wal", loose)]["recovery"]
    rep_l = data[("abort", "replica", loose)]["recovery"]

    # Fail-stop actually crashed with state on board.
    assert data[("abort", "restart-fresh", tight)]["crashes"] > 0
    assert fresh["rpo"]["lost_acked_total"] > 0, \
        "restart-fresh should lose acknowledged writes"

    # Snapshot-only bounds the loss to the checkpoint interval: the
    # loose interval leaves a long committed tail past the sealed
    # horizon, and that tail is exactly what a crash destroys.
    assert snap_l["checkpoints"]["count"] > 0
    assert 0 < snap_l["rpo"]["lost_acked_total"] \
        <= fresh["rpo"]["lost_acked_total"], \
        "loose snapshot should lose less than restart-fresh, not nothing"
    assert snap_t["rpo"]["lost_acked_total"] \
        <= snap_l["rpo"]["lost_acked_total"], \
        "snapshot RPO should grow with the checkpoint interval"
    # Tighter interval = more seals; the checkpoint cadence is real.
    assert snap_l["checkpoints"]["count"] <= snap_t["checkpoints"]["count"]

    # Write-ahead replay reaches RPO = 0 at *any* interval and the audit
    # confirms it: recovered state matches the shadow oracle's, byte for
    # byte, at every crash cadence.
    for name, rec in (("snapshot+wal/tight", wal_t),
                      ("snapshot+wal/loose", wal_l),
                      ("replica/loose", rep_l)):
        assert rec["rpo"]["lost_acked_total"] == 0, \
            f"{name} must not lose acknowledged writes"
        assert rec["audit"]["clean"], f"{name} audit not clean"
    assert wal_l["checkpoints"]["replayed"] > 0

    # The tight interval seals a checkpoint before the first fault, so a
    # later restart exercises the full unseal + restore path.
    assert wal_t["sealing"]["unseals"] > 0
    assert wal_t["checkpoints"]["restores"] > 0

    # Failover actually fired: a crash-looping primary was declared dead
    # and the warm standby took its slot.
    assert rep_l["replica"]["promotions"] > 0, \
        "replica campaign never exercised promotion"
    assert data[("abort", "replica", loose)]["supervisor"]["deaths"] > 0

    # Durability is priced, not free: sealing burned enclave cycles and
    # recovery stretched the measured restart-to-serving time.
    assert snap_t["sealing"]["seal_cycles"] > 0
    assert wal_t["sealing"]["unseal_cycles"] > 0
    assert wal_l["rto"]["mean_ticks"] > 0
    assert fresh["sealing"]["seal_cycles"] == 0
