"""Interpreter fast path: predecoded dispatch vs the reference loop.

Not a paper figure — this guards the simulator's own engine.  The
predecoded interpreter (:mod:`repro.vm.fastpath`) exists purely to make
every other benchmark in this directory cheaper to run; its contract is
*observational identity* (enforced by tests/test_vm_differential.py)
plus a real wall-clock win.  This benchmark measures the win on the
Fig. 7 suite (Phoenix + PARSEC, native, XS) with compilation hoisted
out of the timed region, asserts the CI floor (>= 1.2x; the development
target is 1.5x), and emits ``benchmarks/results/vm_fastpath.json`` so
the speedup is tracked across PRs like any other result.
"""

from __future__ import annotations

import time

from repro.harness.report import series_table
from repro.minic import compile_source
from repro.sgx import Enclave
from repro.vm import VM
from repro.workloads import by_suite

#: CI guard: the fast path must stay at least this much faster than the
#: reference loop on the Fig. 7 sweep or the regression fails loudly.
MIN_SPEEDUP = 1.2

ROUNDS = 3


def _modules():
    mods = []
    for workload in by_suite("phoenix") + by_suite("parsec"):
        module = compile_source(workload.source, workload.name).clone()
        module.finalize()
        mods.append((workload, module))
    return mods


def _sweep_once(mods, size, fastpath):
    """One full-suite execution; returns (seconds, outputs)."""
    outputs = []
    start = time.perf_counter()
    for workload, module in mods:
        vm = VM(enclave=Enclave(), fastpath=fastpath)
        vm.load(module)
        result = vm.run("main", workload.args_for(size, None))
        outputs.append((workload.name, result, vm.output()))
    return time.perf_counter() - start, outputs


def test_vm_fastpath_speedup(benchmark, save_result, bench_size):
    mods = _modules()

    def _measure():
        ref_times, fast_times = [], []
        ref_out = fast_out = None
        for _ in range(ROUNDS):
            seconds, ref_out = _sweep_once(mods, bench_size, False)
            ref_times.append(seconds)
            seconds, fast_out = _sweep_once(mods, bench_size, True)
            fast_times.append(seconds)
        return min(ref_times), min(fast_times), ref_out, fast_out

    ref_s, fast_s, ref_out, fast_out = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    speedup = ref_s / fast_s if fast_s else float("inf")

    # Identity spot-check rides along: same results, same stdout, on
    # the very sweep being timed (the full proof lives in the tests).
    assert fast_out == ref_out, "interpreter outputs diverged"

    data = {
        "suite": "fig07 phoenix+parsec",
        "scheme": "native",
        "size": bench_size,
        "rounds": ROUNDS,
        "reference_seconds": round(ref_s, 4),
        "fastpath_seconds": round(fast_s, 4),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    text = series_table(
        f"Interpreter fast path: Fig. 7 sweep (native, size "
        f"{bench_size}, best of {ROUNDS})",
        ["interpreter", "seconds", "speedup"],
        [["reference", round(ref_s, 3), 1.0],
         ["fastpath", round(fast_s, 3), round(speedup, 2)]])
    save_result("vm_fastpath", text, data=data)

    assert speedup >= MIN_SPEEDUP, (
        f"predecoded interpreter is only {speedup:.2f}x the reference "
        f"loop (floor {MIN_SPEEDUP}x) — the fast path has regressed")
