"""``repro.obs`` — the end-to-end request observatory.

Four cooperating pieces (see DESIGN.md, "Request observatory"):

* :mod:`~repro.obs.trace` — causal request tracing: one deterministic
  trace context per request id, minted at client submit and propagated
  through NetworkSim frames, Balancer dispatch/retry/hedge, worker
  execution and recovery failover; exports Chrome ``trace_event`` JSON
  and text waterfalls;
* :mod:`~repro.obs.attribution` — critical-path attribution: exact
  per-request tick decomposition (queue wait / enclave compute / retry
  amplification / network) plus model-priced bounds-check-tax and
  EPC-stall cycle attribution from scheme-vs-native counter deltas;
* :mod:`~repro.obs.burnrate` — SRE-style multi-window burn-rate rules
  over the SLO tracker's good/bad totals on the campaign tick clock,
  with deterministic fire/clear events landed in the flight recorder;
* :mod:`~repro.obs.exposition` — a Prometheus-style text exposition
  snapshot merging telemetry counters, SLO summaries, alert states and
  every drop counter.

Like telemetry and forensics, the observatory is off by default and
zero-cost when off: no fleet hot path does observability work unless an
:class:`Observability` handle is attached, attaching one never charges
simulated counters, and default campaign output is byte-identical with
the subsystem absent or disabled.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.attribution import (
    COMPONENTS,
    AttributionLedger,
    decompose_trace,
    scheme_tax,
)
from repro.obs.burnrate import DEFAULT_RULES, BurnRateEngine, BurnRateRule
from repro.obs.exposition import Exposition, render_exposition
from repro.obs.trace import HOP_KINDS, FleetTracer, RequestTrace, TraceContext


class Observability:
    """One campaign's observability context: tracer + ledger + alerts.

    ``enabled=False`` constructs a permanently inert handle — attaching
    it anywhere is a no-op and every component keeps its obs-free fast
    path, the exact contract :class:`repro.telemetry.Telemetry` and
    :class:`repro.forensics.Forensics` honour.
    """

    def __init__(self, enabled: bool = True, seed: int = 0,
                 max_traces: int = 100_000, rules=DEFAULT_RULES):
        self.enabled = enabled
        self.tracer = FleetTracer(seed=seed, max_traces=max_traces)
        self.attribution = AttributionLedger()
        self.burn = BurnRateEngine(rules=rules)
        self._bound = False

    # -- campaign lifecycle ---------------------------------------------
    def begin_campaign(self, config, forensics=None) -> None:
        """Bind to one campaign: seed the trace-id space, route alert
        fire/clear events into the campaign's flight recorder."""
        self.tracer.seed = config.seed
        self.burn.recorder = forensics
        self._bound = True

    # -- request lifecycle hooks (campaign/balancer/worker call these) --
    def on_submit(self, request, now: int) -> None:
        """Client submit: mint the trace context and stamp the request."""
        request.trace = self.tracer.submit(
            request.rid, now, priority=request.priority)

    def on_client_retry(self, request, now: int) -> None:
        """The client swarm resubmitted ``rid``: same root, new branch."""
        request.trace = self.tracer.submit(
            request.rid, now, priority=request.priority)

    def enclave_sample(self, rid: int, wid: int, fields: Dict[str, int],
                       cycles: int) -> None:
        """A worker finished one service attempt for ``rid``: counter
        deltas between submit and reply, exact because workers are
        depth-1."""
        self.attribution.add_sample(rid, fields, cycles)

    def on_settled(self, request) -> None:
        """The request reached the terminal the SLO tracker will account
        (first terminal wins; later duplicates become zombie hops)."""
        tick = request.completed_at if request.completed_at is not None \
            else request.arrival
        trace = self.tracer.get(request.rid)
        already_terminal = trace is not None and trace.status is not None
        self.tracer.terminal(request.rid, tick, request.status,
                             wid=request.worker)
        if trace is not None and not already_terminal:
            sample = self.attribution.sample_for(request.rid)
            if sample is not None:
                self.tracer.hop(
                    request.rid, "enclave", tick, wid=request.worker,
                    cycles=self.attribution.cycles_for(request.rid),
                    bounds_checks=sample["bounds_checks"],
                    epc_faults=sample["epc_faults"])
            self.attribution.settle(trace)

    def observe_tick(self, now: int, slo) -> None:
        """Per-tick burn-rate feed from the SLO tracker's cumulative
        counters.  With goodput accounting on (overload campaigns) good
        is *timely* serves and a late serve burns budget like a failure
        — a congestion collapse where everything is eventually served
        late must page.  Without a deadline, good = serves and bad =
        failures.  Error replies (correctly refused poison) and
        admission rejections (the fleet protecting itself) burn no
        budget either way — which is why protected overload stays
        silent while the naive collapse fires."""
        if slo.deadline_ticks is not None:
            good = slo.timely
            bad = (slo.served - slo.timely) + slo.failed
        else:
            good = slo.served
            bad = slo.failed
        self.burn.observe(now, good, bad)

    # -- export ----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "trace": self.tracer.summary(),
            "attribution": self.attribution.rollup(),
            "burn": self.burn.summary(),
        }

    def chrome_trace(self, tick_cycles: int = 1) -> Dict[str, object]:
        return self.tracer.chrome_trace(tick_cycles=tick_cycles)


#: Process-wide default observability, set by CLI flags; campaigns fall
#: back to it when no explicit handle is passed (None = off, the
#: zero-cost default).
_default: Optional[Observability] = None


def set_default(obs: Optional[Observability]) -> None:
    global _default
    _default = obs


def get_default() -> Optional[Observability]:
    return _default


__all__ = [
    "AttributionLedger",
    "BurnRateEngine",
    "BurnRateRule",
    "COMPONENTS",
    "DEFAULT_RULES",
    "Exposition",
    "FleetTracer",
    "HOP_KINDS",
    "Observability",
    "RequestTrace",
    "TraceContext",
    "decompose_trace",
    "get_default",
    "render_exposition",
    "scheme_tax",
    "set_default",
]
