"""Critical-path attribution: where did a request's ticks and cycles go?

Two layers, matching the two clocks the fleet runs on:

* **Tick decomposition** (exact): each terminal request's end-to-end
  ticks split into ``queue_wait`` (first submit → first service start),
  ``enclave_compute`` (the service segment that produced the terminal),
  ``retry_amplification`` (wasted service segments, re-queue waits and
  client resubmissions), and ``network`` (frame delivery — identically 0
  on this simulator, where a pushed frame is receivable the same tick,
  kept as an explicit column so the taxonomy is honest about it).  The
  decomposition is computed by walking the request's hop log, and the
  four components sum *exactly* to ``terminal - first_submit + 1``
  for every request — an invariant the tests pin.

* **Cycle attribution** (model-priced): inside ``enclave_compute``, the
  per-request counter deltas sampled by the workers (instructions,
  cache misses, EPC faults, bounds checks — the PR 2 profiler's
  :data:`~repro.telemetry.profiler.ATTRIB_FIELDS`) are rolled up per
  campaign and diffed against a native-baseline campaign, then priced
  through :func:`repro.telemetry.profiler._decompose` into the paper's
  check / cache / EPC-fault buckets.  That diff is the *bounds-check
  tax*: the share of a scheme's per-request cycles that exist only
  because the scheme is instrumented.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sgx.counters import CostModel
from repro.telemetry.profiler import ATTRIB_FIELDS, _decompose, _shares

#: Tick-decomposition component names, reporting order.
COMPONENTS = ("queue_wait", "enclave_compute", "retry_amplification",
              "network")

#: Hop kinds that delimit tick-decomposition segments.
_WALK_KINDS = frozenset(("client_submit", "client_retry", "dispatch",
                         "requeue", "reply"))


def decompose_trace(trace) -> Optional[Dict[str, object]]:
    """Exact tick decomposition of one terminal
    :class:`repro.obs.trace.RequestTrace`; None while the trace is open.

    Walks the hop log as a segment machine: time between a (re)submit
    and the next dispatch is waiting, time between a dispatch and the
    next interruption (requeue / client retry) or the terminal is
    service.  The first wait is ``queue_wait``; every later wait, and
    every service segment that did *not* end in the terminal, is
    ``retry_amplification``.  The closing segment gets the fencepost
    ``+1`` (a request arriving and completing on the same tick spent one
    tick in the system), so the components always sum to end-to-end.
    """
    if trace.status is None or trace.terminal_tick is None:
        return None
    buckets = {name: 0 for name in COMPONENTS}
    t = trace.first_tick
    in_service = False
    dispatched = False
    attempts = 0
    for hop in trace.hops:
        if hop.kind not in _WALK_KINDS:
            continue
        seg = max(0, hop.tick - t)
        if hop.kind == "dispatch":
            buckets["retry_amplification" if dispatched
                    else "queue_wait"] += seg
            dispatched = True
            in_service = True
            attempts += 1
        elif hop.kind in ("requeue", "client_retry"):
            # Interrupted: a crash threw the request back (service so far
            # wasted) or the client resubmitted after a failure.
            if in_service or dispatched:
                buckets["retry_amplification"] += seg
            else:
                buckets["queue_wait"] += seg
            in_service = False
        elif hop.kind == "reply":
            seg += 1                      # closing fencepost
            if in_service:
                buckets["enclave_compute"] += seg
            elif dispatched:
                buckets["retry_amplification"] += seg
            else:
                buckets["queue_wait"] += seg
        t = hop.tick
    total = trace.terminal_tick - trace.first_tick + 1
    return {
        "rid": trace.rid,
        "trace_id": trace.trace_id,
        "status": trace.status,
        "priority": trace.priority,
        "attempts": attempts,
        "total_ticks": total,
        **buckets,
    }


class AttributionLedger:
    """Per-campaign accumulation of tick rows and enclave counter samples.

    Workers feed :meth:`add_sample` one counter delta per completed
    service (submit → reply on one incarnation); the campaign feeds
    :meth:`settle` each trace as it goes terminal.  :meth:`rollup`
    aggregates — guarded to return ``None`` means, never NaN, for
    zero-served campaigns so result JSON stays ``allow_nan=False``-safe.
    """

    def __init__(self) -> None:
        self.rows: List[Dict[str, object]] = []
        #: Summed per-request counter deltas keyed by rid (a retried
        #: request accumulates over its service attempts).
        self._samples: Dict[int, Dict[str, int]] = {}
        self._sample_cycles: Dict[int, int] = {}
        self.sampled_requests = 0

    # -- recording ------------------------------------------------------
    def add_sample(self, rid: int, fields: Dict[str, int],
                   cycles: int) -> None:
        acc = self._samples.get(rid)
        if acc is None:
            acc = self._samples[rid] = {f: 0 for f in ATTRIB_FIELDS}
            self.sampled_requests += 1
        for field in ATTRIB_FIELDS:
            acc[field] += fields.get(field, 0)
        self._sample_cycles[rid] = self._sample_cycles.get(rid, 0) + cycles

    def sample_for(self, rid: int) -> Optional[Dict[str, int]]:
        return self._samples.get(rid)

    def cycles_for(self, rid: int) -> int:
        return self._sample_cycles.get(rid, 0)

    def settle(self, trace) -> Optional[Dict[str, object]]:
        row = decompose_trace(trace)
        if row is None:
            return None
        row["enclave_cycles"] = self._sample_cycles.get(trace.rid, 0)
        sample = self._samples.get(trace.rid)
        row["bounds_checks"] = sample["bounds_checks"] if sample else 0
        row["epc_faults"] = sample["epc_faults"] if sample else 0
        self.rows.append(row)
        return row

    # -- aggregation ----------------------------------------------------
    def rollup(self) -> Dict[str, object]:
        """Campaign-level attribution: counts, mean tick components over
        served requests, and mean per-served-request counter fields."""
        served = [r for r in self.rows if r["status"] == "served"]
        n = len(served)
        by_status: Dict[str, int] = {}
        for row in self.rows:
            by_status[row["status"]] = by_status.get(row["status"], 0) + 1
        out: Dict[str, object] = {
            "requests": len(self.rows),
            "served": n,
            "by_status": {k: by_status[k] for k in sorted(by_status)},
            "sampled_requests": self.sampled_requests,
        }
        if n == 0:
            # S1 guard: a campaign that served nothing still produces a
            # valid rollup — None means, no NaN, no ZeroDivisionError.
            out["mean_total_ticks"] = None
            out["mean_components"] = None
            out["component_shares"] = None
            out["mean_counters"] = None
            out["mean_enclave_cycles"] = None
            return out
        total_ticks = sum(r["total_ticks"] for r in served)
        out["mean_total_ticks"] = total_ticks / n
        out["mean_components"] = {
            name: sum(r[name] for r in served) / n for name in COMPONENTS}
        component_sum = sum(sum(r[name] for r in served)
                            for name in COMPONENTS)
        out["component_shares"] = {
            name: (sum(r[name] for r in served) / component_sum
                   if component_sum else 0.0)
            for name in COMPONENTS}
        means = {f: 0.0 for f in ATTRIB_FIELDS}
        cycles = 0
        counted = 0
        for row in served:
            sample = self._samples.get(row["rid"])
            if sample is None:
                continue
            counted += 1
            for field in ATTRIB_FIELDS:
                means[field] += sample[field]
            cycles += self._sample_cycles.get(row["rid"], 0)
        if counted:
            out["mean_counters"] = {f: means[f] / counted
                                    for f in ATTRIB_FIELDS}
            out["mean_enclave_cycles"] = cycles / counted
        else:
            out["mean_counters"] = None
            out["mean_enclave_cycles"] = None
        return out


def scheme_tax(scheme_rollup: Dict[str, object],
               native_rollup: Dict[str, object],
               cost: Optional[CostModel] = None) -> Optional[Dict[str, object]]:
    """Bounds-check tax of one scheme vs its native baseline.

    Diffs the mean per-served-request counters of two campaign rollups
    and prices the delta with the cost model (enclave pricing: misses pay
    MEE decryption).  Returns None when either side has no samples —
    zero-served campaigns never crash the attribution table (S1).
    """
    s_means = scheme_rollup.get("mean_counters")
    n_means = native_rollup.get("mean_counters")
    if s_means is None or n_means is None:
        return None
    cost = cost or CostModel()
    delta = {f: s_means[f] - n_means[f] for f in ATTRIB_FIELDS}
    priced = _decompose(delta, cost, enclave=True)
    scheme_cycles = scheme_rollup.get("mean_enclave_cycles") or 0
    return {
        "delta_counters": delta,
        **priced,
        "shares": _shares(priced),
        #: Fraction of the scheme's mean per-request enclave cycles that
        #: are instrumentation (the headline "tax share").
        "tax_share": (priced["total_cycles"] / scheme_cycles
                      if scheme_cycles else 0.0),
        "check_share": (priced["check_cycles"] / scheme_cycles
                        if scheme_cycles else 0.0),
    }
