"""Causal request tracing across the fleet: trace contexts and hop trees.

A :class:`TraceContext` is minted once per request id at client submit —
``trace_id`` derives deterministically from the campaign seed and the
request id, so two identical seeded campaigns mint identical contexts —
and travels with the request through every layer it touches: the
balancer's pending queue, the admission gate, dispatch onto a worker,
the NetworkSim frame that carries the payload into the enclave (the
wire format is the bare ``trace_id`` string on the message, surviving
``maxlen`` splits and per-message-id retries because both reuse the same
message object/id), execution in the enclave VM, and back out as a
reply, a retry, a hedge re-dispatch, or a failover to a promoted
replica.

The :class:`FleetTracer` collects the resulting *hop events* keyed by
request id: flat, append-only, on the campaign tick clock.  At export
time the events of one request fold into a deterministic hop tree
(``client→admission→queue→dispatch→enclave→reply``, with retry/hedge
branches as sibling subtrees), renderable as a text waterfall or as
Chrome ``trace_event`` JSON.  Nothing here reads wall clocks or charges
simulated counters: tracing is observation-only, exactly like
:mod:`repro.telemetry` and :mod:`repro.forensics`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Hop kinds in the order they occur on the happy path.
HOP_KINDS = (
    "client_submit",   # request minted at the client (first arrival)
    "client_retry",    # client resubmitted after a failed terminal
    "admission",       # passed the admission gate (or no gate present)
    "rejected",        # turned away at the gate (terminal)
    "assign",          # bound to one worker's ingress queue
    "dispatch",        # entered service on a worker (one per attempt)
    "enclave",         # enclave execution sample (cycles/checks/faults)
    "requeue",         # crash fallout: hedged back to the pending queue
    "expired",         # client patience ran out while queued
    "zombie_done",     # late completion of an abandoned request
    "failover",        # served by a replica promoted into a dead slot
    "reply",           # terminal outcome reached the client
)


class TraceContext:
    """Identity of one causal request trace (W3C-traceparent-shaped).

    ``trace_id`` is the request's fleet-wide identity; ``span_id``
    numbers hops within the trace (root = 1); ``parent_id`` links a hop
    to the hop that caused it.  All ids derive from ``(seed, rid)`` so
    contexts are byte-identical across identical seeded runs.
    """

    __slots__ = ("trace_id", "rid", "next_span")

    def __init__(self, trace_id: str, rid: int):
        self.trace_id = trace_id
        self.rid = rid
        self.next_span = 1

    def child(self) -> int:
        """Allocate the next span id within this trace."""
        span = self.next_span
        self.next_span += 1
        return span


def mint_trace_id(seed: int, rid: int) -> str:
    """Deterministic 16-hex-digit trace id from the campaign seed."""
    # splitmix64-style mix: cheap, stable across platforms, and seeded,
    # so distinct campaigns produce distinct id spaces.
    x = ((seed & 0xFFFFFFFF) << 32) ^ (rid + 0x9E3779B97F4A7C15)
    x &= (1 << 64) - 1
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 31
    return f"{x:016x}"


class Hop:
    """One hop event inside a request's trace."""

    __slots__ = ("span_id", "parent_id", "kind", "tick", "wid", "detail")

    def __init__(self, span_id: int, parent_id: int, kind: str, tick: int,
                 wid: Optional[int], detail: Dict[str, object]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.tick = tick
        self.wid = wid
        self.detail = detail

    def as_dict(self) -> Dict[str, object]:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "kind": self.kind, "tick": self.tick, "wid": self.wid,
                "detail": self.detail}


class RequestTrace:
    """All hops of one request id, in emission order."""

    __slots__ = ("context", "hops", "first_tick", "terminal_tick",
                 "status", "priority")

    def __init__(self, context: TraceContext, tick: int,
                 priority: Optional[str] = None):
        self.context = context
        self.hops: List[Hop] = []
        self.first_tick = tick
        self.terminal_tick: Optional[int] = None
        self.status: Optional[str] = None
        self.priority = priority

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def rid(self) -> int:
        return self.context.rid

    def add(self, kind: str, tick: int, wid: Optional[int] = None,
            parent_id: int = 1, **detail) -> Hop:
        hop = Hop(self.context.child(), parent_id, kind, tick, wid, detail)
        self.hops.append(hop)
        return hop

    def dispatches(self) -> List[Hop]:
        return [h for h in self.hops if h.kind == "dispatch"]

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "rid": self.rid,
            "priority": self.priority,
            "first_tick": self.first_tick,
            "terminal_tick": self.terminal_tick,
            "status": self.status,
            "hops": [h.as_dict() for h in self.hops],
        }


class FleetTracer:
    """Per-campaign collection of request traces, bounded and exportable.

    ``max_traces`` bounds memory the way the flight recorder does: the
    first N request ids get full hop trees, later ones are counted in
    :attr:`dropped_traces` (their hops are not stored).  Campaign-level
    events that are not tied to one request (promotions, boots) land in
    :attr:`notes`.
    """

    def __init__(self, seed: int = 0, max_traces: int = 100_000):
        self.seed = seed
        self.max_traces = max_traces
        self.traces: Dict[int, RequestTrace] = {}
        self.dropped_traces = 0
        self.dropped_hops = 0
        self.notes: List[Tuple[int, str, Optional[int]]] = []
        self.hop_counts: Dict[str, int] = {}

    # -- recording ------------------------------------------------------
    def submit(self, rid: int, tick: int,
               priority: Optional[str] = None) -> Optional[str]:
        """Mint (or extend) the trace for ``rid`` at client submit time.

        Returns the trace id to stamp onto the Request, or None when the
        trace table is full (the request travels untraced)."""
        trace = self.traces.get(rid)
        if trace is None:
            if len(self.traces) >= self.max_traces:
                self.dropped_traces += 1
                return None
            context = TraceContext(mint_trace_id(self.seed, rid), rid)
            trace = self.traces[rid] = RequestTrace(context, tick, priority)
            self._count("client_submit")
            trace.add("client_submit", tick, parent_id=0,
                      priority=priority)
        else:
            # Same rid resubmitted by the client: same root, new branch.
            self._count("client_retry")
            trace.add("client_retry", tick)
        return trace.trace_id

    def hop(self, rid: int, kind: str, tick: int,
            wid: Optional[int] = None, **detail) -> None:
        trace = self.traces.get(rid)
        if trace is None:
            self.dropped_hops += 1
            return
        self._count(kind)
        parent = 1
        if kind == "enclave" and trace.hops:
            # The enclave sample hangs off its dispatch hop.
            for hop in reversed(trace.hops):
                if hop.kind == "dispatch":
                    parent = hop.span_id
                    break
        trace.add(kind, tick, wid=wid, parent_id=parent, **detail)

    def terminal(self, rid: int, tick: int, status: str,
                 wid: Optional[int] = None) -> None:
        """The request reached its terminal state (first terminal wins:
        hedged duplicates and zombie completions never re-close a root)."""
        trace = self.traces.get(rid)
        if trace is None:
            self.dropped_hops += 1
            return
        if trace.status is not None:
            self._count("zombie_done")
            trace.add("zombie_done", tick, wid=wid, status=status)
            return
        trace.status = status
        trace.terminal_tick = tick
        self._count("reply")
        trace.add("reply", tick, wid=wid, status=status)

    def note(self, kind: str, tick: int, wid: Optional[int] = None) -> None:
        """Campaign-level event not tied to one request."""
        self.notes.append((tick, kind, wid))

    def _count(self, kind: str) -> None:
        self.hop_counts[kind] = self.hop_counts.get(kind, 0) + 1

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.traces)

    def get(self, rid: int) -> Optional[RequestTrace]:
        return self.traces.get(rid)

    def completed(self, status: Optional[str] = None) -> List[RequestTrace]:
        """Traces that reached a terminal state, rid order."""
        return [self.traces[rid] for rid in sorted(self.traces)
                if self.traces[rid].status is not None
                and (status is None or self.traces[rid].status == status)]

    # -- export ---------------------------------------------------------
    def chrome_trace(self, tick_cycles: int = 1) -> Dict[str, object]:
        """Chrome ``trace_event`` document of every hop tree.

        One process lane per worker (pid = wid + 1; pid 0 is the client/
        balancer lane), spans in tick units scaled by ``tick_cycles``.
        """
        events: List[Dict[str, object]] = []
        for rid in sorted(self.traces):
            trace = self.traces[rid]
            end = trace.terminal_tick if trace.terminal_tick is not None \
                else max((h.tick for h in trace.hops),
                         default=trace.first_tick)
            events.append({
                "name": f"request {trace.trace_id}", "cat": "request",
                "ph": "X", "ts": trace.first_tick * tick_cycles,
                "dur": max(0, (end - trace.first_tick + 1) * tick_cycles),
                "pid": 0, "tid": rid,
                "args": {"trace_id": trace.trace_id, "rid": rid,
                         "status": trace.status,
                         "priority": trace.priority}})
            for hop in trace.hops:
                lane = 0 if hop.wid is None else hop.wid + 1
                events.append({
                    "name": hop.kind, "cat": "hop", "ph": "i",
                    "ts": hop.tick * tick_cycles, "s": "t",
                    "pid": lane, "tid": rid,
                    "args": {"trace_id": trace.trace_id,
                             "span_id": hop.span_id,
                             "parent_id": hop.parent_id,
                             **{k: v for k, v in sorted(hop.detail.items())
                                if isinstance(v, (int, float, str, bool,
                                                  type(None)))}}})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "campaign ticks x tick_cycles",
                "traces": len(self.traces),
                "dropped_traces": self.dropped_traces,
                "dropped_hops": self.dropped_hops,
            },
        }

    def waterfall(self, rid: int) -> str:
        """Deterministic text waterfall of one request's hop tree."""
        trace = self.traces.get(rid)
        if trace is None:
            return f"rid {rid}: no trace recorded"
        t0 = trace.first_tick
        end = trace.terminal_tick if trace.terminal_tick is not None else t0
        lines = [f"trace {trace.trace_id} rid={rid} "
                 f"priority={trace.priority or '-'} "
                 f"status={trace.status or 'open'} "
                 f"ticks=[{t0}, {end}] end_to_end={end - t0 + 1}"]
        children: Dict[int, List[Hop]] = {}
        for hop in trace.hops:
            children.setdefault(hop.parent_id, []).append(hop)

        def render(hop: Hop, depth: int) -> None:
            detail = " ".join(
                f"{k}={hop.detail[k]}" for k in sorted(hop.detail)
                if hop.detail[k] is not None)
            wid = "" if hop.wid is None else f" wid={hop.wid}"
            pad = "  " * depth
            lines.append(f"  +{hop.tick - t0:>4} {pad}{hop.kind}"
                         f"{wid}{' ' + detail if detail else ''}")
            for child in children.get(hop.span_id, ()):
                render(child, depth + 1)

        roots = children.get(0)
        if roots:
            for root in roots:
                render(root, 0)
        else:       # defensive: a trace with no root renders flat
            for hop in trace.hops:
                render(hop, 0)
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        terminal = [t for t in self.traces.values() if t.status is not None]
        return {
            "traces": len(self.traces),
            "terminal": len(terminal),
            "dropped_traces": self.dropped_traces,
            "dropped_hops": self.dropped_hops,
            "hops": {k: self.hop_counts[k]
                     for k in sorted(self.hop_counts)},
        }
