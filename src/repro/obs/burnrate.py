"""Multi-window burn-rate alerting on the simulated campaign clock.

The SRE playbook's alerting shape: an *error budget* is the bad-event
fraction an SLO target tolerates (target 0.95 → budget 0.05), and the
*burn rate* over a window is how many times faster than budget the
fleet is consuming it (``bad/total / budget``).  A rule pairs a long
window (is the damage sustained?) with a short window (is it still
happening?) and fires only when **both** exceed the threshold, which is
what keeps a single unlucky tick from paging; it clears with hysteresis
once both windows drop below half the threshold, so an alert cannot
flap on the boundary.

Everything is evaluated once per campaign tick from the SLO tracker's
cumulative counters — no wall clocks, no sampling — so fire/clear
events are byte-identical across identical seeded runs.  *Bad* events
are infrastructure failures (deadline expiry, crash retries exhausted,
no capacity): error replies to poisoned payloads are the server
correctly refusing bad input, and admission rejections are the fleet
protecting itself — neither burns the availability budget, which is
exactly why the protected overload mode stays silent while the naive
collapse pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BurnRateRule:
    """One fast- or slow-burn alerting rule."""

    __slots__ = ("name", "slo_target", "long_window", "short_window",
                 "threshold", "clear_ratio")

    def __init__(self, name: str, slo_target: float = 0.95,
                 long_window: int = 40, short_window: int = 10,
                 threshold: float = 6.0, clear_ratio: float = 0.5):
        if not 0.0 < slo_target < 1.0:
            raise ValueError("slo_target must be in (0, 1)")
        if short_window > long_window:
            raise ValueError("short window cannot exceed long window")
        self.name = name
        self.slo_target = slo_target
        self.long_window = long_window
        self.short_window = short_window
        self.threshold = threshold
        self.clear_ratio = clear_ratio

    @property
    def budget(self) -> float:
        return 1.0 - self.slo_target

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "slo_target": self.slo_target,
                "long_window": self.long_window,
                "short_window": self.short_window,
                "threshold": self.threshold,
                "clear_ratio": self.clear_ratio}


#: Default rule pair, scaled to campaign ticks: the fast rule catches a
#: collapse within ~a deadline's worth of ticks, the slow rule catches a
#: sustained budget bleed a fast spike would not show.
DEFAULT_RULES = (
    BurnRateRule("fast-burn", slo_target=0.95, long_window=40,
                 short_window=10, threshold=6.0),
    BurnRateRule("slow-burn", slo_target=0.95, long_window=160,
                 short_window=40, threshold=2.0),
)


class BurnRateEngine:
    """Evaluates burn-rate rules over per-tick good/bad totals.

    ``recorder`` is an optional ``repro.forensics.Forensics`` handle;
    fire/clear events land in its flight recorder (kind ``burn_alert``)
    as well as in :attr:`alerts`.
    """

    def __init__(self, rules=DEFAULT_RULES, recorder=None):
        self.rules = tuple(rules)
        self.recorder = recorder
        #: Cumulative (good, bad) totals per observed tick.
        self._history: List[Tuple[int, int]] = []
        self._ticks: List[int] = []
        self.active: Dict[str, int] = {}       # rule name -> fire tick
        self.alerts: List[Dict[str, object]] = []
        self.fired = 0
        self.cleared = 0

    # ------------------------------------------------------------------
    def _burn(self, rule: BurnRateRule, window: int) -> float:
        """Burn rate over the last ``window`` observations."""
        if not self._history:
            return 0.0
        last_good, last_bad = self._history[-1]
        if len(self._history) > window:
            base_good, base_bad = self._history[-window - 1]
        else:
            base_good, base_bad = 0, 0
        good = last_good - base_good
        bad = last_bad - base_bad
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / rule.budget

    def observe(self, now: int, good_total: int, bad_total: int) -> None:
        """Feed one tick's cumulative totals and evaluate every rule."""
        self._history.append((good_total, bad_total))
        self._ticks.append(now)
        for rule in self.rules:
            burn_long = self._burn(rule, rule.long_window)
            burn_short = self._burn(rule, rule.short_window)
            is_active = rule.name in self.active
            if (not is_active and burn_long >= rule.threshold
                    and burn_short >= rule.threshold):
                self.active[rule.name] = now
                self.fired += 1
                self._record("fire", rule, now, burn_long, burn_short)
            elif (is_active
                  and burn_long <= rule.threshold * rule.clear_ratio
                  and burn_short <= rule.threshold * rule.clear_ratio):
                del self.active[rule.name]
                self.cleared += 1
                self._record("clear", rule, now, burn_long, burn_short)

    def _record(self, event: str, rule: BurnRateRule, now: int,
                burn_long: float, burn_short: float) -> None:
        entry = {"tick": now, "rule": rule.name, "event": event,
                 "burn_long": round(burn_long, 3),
                 "burn_short": round(burn_short, 3)}
        self.alerts.append(entry)
        if self.recorder is not None:
            self.recorder.record(
                "burn_alert", ts=now, cat="obs", rule=rule.name,
                event=event, burn_long=entry["burn_long"],
                burn_short=entry["burn_short"])

    # ------------------------------------------------------------------
    def active_rules(self) -> List[str]:
        return sorted(self.active)

    def summary(self) -> Dict[str, object]:
        return {
            "rules": [rule.as_dict() for rule in self.rules],
            "fired": self.fired,
            "cleared": self.cleared,
            "active": self.active_rules(),
            "alerts": list(self.alerts),
        }

    def render_log(self) -> str:
        """Deterministic text alert log for the dashboard."""
        if not self.alerts:
            return "  (no burn-rate alerts)"
        lines = []
        for alert in self.alerts:
            lines.append(
                f"  tick {alert['tick']:>5}  {alert['event']:<5} "
                f"{alert['rule']:<10} burn_long={alert['burn_long']:<8} "
                f"burn_short={alert['burn_short']}")
        return "\n".join(lines)
