"""The ``python -m repro observe`` driver: one deterministic dashboard.

Three sections, one per tentpole surface:

* **Critical-path attribution** — per-scheme healthy campaigns (fault
  rate 0 so the native baseline and the instrumented schemes serve the
  *same* request population) decomposed into the exact tick components,
  plus the model-priced bounds-check tax of each scheme against the
  native baseline.
* **Exemplar waterfalls** — the slowest and the median served request of
  the instrumented campaign, rendered as hop trees on the tick clock.
* **Burn-rate alerts** — the naive vs protected overload campaigns at a
  collapsing arrival rate: the naive fleet's late-serve collapse fires
  both rules, the protected fleet sheds load and stays silent.

Everything runs on seeded simulated clocks, so stdout is byte-identical
across runs of the same seed — CI diffs two runs.  The returned ``data``
carries the machine-readable rollups, the Chrome trace document of the
exemplar campaign, and the merged Prometheus exposition snapshot of the
alert campaign (the ``--metrics-text-out`` artifact).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.obs import Observability, render_exposition, scheme_tax

#: The arrival rate at which the naive overload client collapses the
#: fleet (same cell as the overload experiment's rate-8 column).
ALERT_RATE = 8
ALERT_SIZE = "S"
ALERT_DEADLINE = 20


def _fnum(value: Optional[float], digits: int = 4) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def _exemplar_rows(rollup_rows) -> Tuple[Optional[Dict], Optional[Dict]]:
    """Slowest and median served decomposition rows, deterministic
    tie-break by request id."""
    served = sorted((r for r in rollup_rows if r["status"] == "served"),
                    key=lambda r: (r["total_ticks"], r["rid"]))
    if not served:
        return None, None
    return served[-1], served[(len(served) - 1) // 2]


def observe_fleet(app: str = "memcached", workers: int = 4,
                  seed: int = 1234, size: str = "XS",
                  schemes: Sequence[str] = ("native", "sgxbounds", "asan"),
                  baseline: str = "native",
                  exemplar_scheme: str = "sgxbounds",
                  alert_scheme: str = "sgxbounds",
                  telemetry=None) -> Tuple[Dict, str]:
    """Run the observatory campaigns and render the dashboard.

    Returns ``(data, text)`` like every harness experiment; ``data``
    includes the exposition text and the exemplar campaign's Chrome
    trace document so the CLI can export both as artifacts.
    """
    from repro.fleet.campaign import CampaignConfig, run_campaign
    from repro.harness import report

    data: Dict[str, object] = {
        "app": app, "size": size, "seed": seed, "workers": workers,
        "schemes": {},
    }

    # -- 1. attribution: healthy campaigns, matched populations ---------
    handles: Dict[str, Observability] = {}
    results: Dict[str, object] = {}
    for scheme in schemes:
        obs = handles[scheme] = Observability(seed=seed)
        config = CampaignConfig(app=app, scheme=scheme,
                                policy="drop-request", workers=workers,
                                fault_rate=0.0, seed=seed, size=size)
        results[scheme] = run_campaign(config, obs=obs)
    rollups = {scheme: handles[scheme].attribution.rollup()
               for scheme in schemes}
    taxes = {scheme: (scheme_tax(rollups[scheme], rollups[baseline])
                      if scheme != baseline else None)
             for scheme in schemes}

    attrib_rows = []
    for scheme in schemes:
        roll = rollups[scheme]
        slo = results[scheme].slo
        comp = roll["mean_components"] or {}
        cycles = roll["mean_enclave_cycles"]
        attrib_rows.append([
            scheme, roll["served"], slo["availability"],
            roll["mean_total_ticks"],
            comp.get("queue_wait"), comp.get("enclave_compute"),
            comp.get("retry_amplification"), comp.get("network"),
            None if cycles is None else cycles / 1000.0,
        ])
        data["schemes"][scheme] = {
            "rollup": roll, "tax": taxes[scheme],
            "slo": slo, "trace": handles[scheme].tracer.summary(),
        }
    chunks = [report.series_table(
        f"Critical-path attribution ({app}, size {size}, seed {seed}): "
        f"{workers} workers, healthy fleet, mean ticks per served request",
        ["scheme", "served", "avail", "mean_ticks", "queue_wait",
         "enclave", "retry_amp", "network", "enclave_kcyc"],
        attrib_rows)]

    tax_rows = []
    for scheme in schemes:
        if scheme == baseline:
            continue
        tax = taxes[scheme]
        if tax is None:
            tax_rows.append([scheme, "-", "-", "-", "-", "-", "-"])
            continue
        shares = tax["shares"]
        tax_rows.append([
            scheme, _fnum(tax["total_cycles"] / 1000.0, 1),
            _fnum(tax["tax_share"]), _fnum(shares["check"], 3),
            _fnum(shares["cache"], 3), _fnum(shares["epc_fault"], 3),
            _fnum(tax["delta_counters"]["instructions"], 1),
        ])
    chunks.append(report.series_table(
        f"Bounds-check tax vs {baseline} (model-priced per-request "
        f"enclave cycles)",
        ["scheme", "tax_kcyc", "tax_share", "check%", "cache%", "epc%",
         "d_instr"],
        tax_rows))

    # -- 2. exemplar waterfalls -----------------------------------------
    exemplar_obs = handles.get(exemplar_scheme) or handles[schemes[0]]
    slow, median = _exemplar_rows(exemplar_obs.attribution.rows)
    waterfalls = []
    title = f"Exemplar waterfalls ({exemplar_scheme})"
    waterfalls.append(title)
    waterfalls.append("-" * len(title))
    for label, row in (("slowest served request", slow),
                       ("p50 served request", median)):
        waterfalls.append(f"{label}:")
        if row is None:
            waterfalls.append("  (no served requests)")
        else:
            waterfalls.append(exemplar_obs.tracer.waterfall(row["rid"]))
            waterfalls.append(
                f"  decomposition: queue_wait={row['queue_wait']} "
                f"enclave={row['enclave_compute']} "
                f"retry_amp={row['retry_amplification']} "
                f"network={row['network']} "
                f"(sum={row['total_ticks']} ticks, "
                f"attempts={row['attempts']})")
        waterfalls.append("")
    chunks.append("\n".join(waterfalls).rstrip())
    data["exemplars"] = {"slowest": slow, "p50": median}

    # -- 3. burn-rate alerts: naive collapse vs protected shedding ------
    from repro import forensics as forensics_mod
    alert_lines = []
    title = (f"Burn-rate alerts ({alert_scheme}, size {ALERT_SIZE}, "
             f"rate {ALERT_RATE}/tick, deadline {ALERT_DEADLINE} ticks)")
    alert_lines.append(title)
    alert_lines.append("-" * len(title))
    data["alerts"] = {}
    exposition = None
    for mode in ("naive", "protected"):
        obs = Observability(seed=seed)
        forensics = forensics_mod.Forensics()
        config = CampaignConfig(
            app=app, scheme=alert_scheme, policy="drop-request",
            workers=3, fault_rate=0.1, seed=seed, size=ALERT_SIZE,
            arrivals_per_tick=ALERT_RATE, deadline_ticks=ALERT_DEADLINE,
            overload=mode, max_ticks=2_000)
        result = run_campaign(config, telemetry=telemetry,
                              forensics=forensics, obs=obs)
        slo = result.slo
        ov = slo["overload"]
        burn = obs.burn
        active = ",".join(burn.active_rules()) or "-"
        alert_lines.append(
            f"mode={mode}: served={slo['served']} timely={ov['timely']} "
            f"failed={slo['failed']} rejected={ov['rejected']} "
            f"fired={burn.fired} cleared={burn.cleared} active={active}")
        alert_lines.append(burn.render_log())
        data["alerts"][mode] = {
            "slo": slo, "burn": burn.summary(),
            "trace": obs.tracer.summary(),
        }
        if mode == "naive":
            # The alert campaign is the exposition exemplar: it exercises
            # every feeder (registry, SLO, burn, tracer, flight recorder).
            exposition = render_exposition(
                registry=telemetry.registry if telemetry is not None
                else None,
                slo=slo, burn=burn, tracer=obs.tracer,
                span_dropped=telemetry.tracer.dropped
                if telemetry is not None else None,
                forensics=forensics)
    chunks.append("\n".join(alert_lines))

    data["exposition"] = exposition
    data["chrome_trace"] = exemplar_obs.chrome_trace(
        tick_cycles=CampaignConfig().tick_cycles)
    return data, "\n\n".join(chunks)
