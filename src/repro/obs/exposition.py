"""Prometheus-style text exposition: one snapshot, every subsystem.

Merges whatever observability surfaces a run produced — the telemetry
metrics registry, the SLO summary, burn-rate alert states, fleet trace
and span-buffer drop counts, flight-recorder drop counts — into one
deterministic text document in the Prometheus exposition format
(``# TYPE`` headers, ``name{label="v"} value`` samples, histograms as
cumulative ``_bucket``/``_sum``/``_count`` series).  Metric families are
emitted name-sorted and floats are formatted with a fixed ``%.10g``, so
two identical seeded runs produce byte-identical snapshots — the
``--metrics-text-out`` artifact diffs clean in CI.

Dropped-data counters are first-class here on purpose (satellite of this
PR): a truncated trace or an overflowed ring buffer must be visible in
the scrape, not silently absent, or every downstream consumer
over-trusts the data.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str = "repro") -> str:
    """Prometheus-legal metric name: dots and dashes to underscores."""
    cleaned = _NAME_OK.sub("_", name.replace(".", "_").replace("-", "_"))
    return f"{namespace}_{cleaned}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:                    # NaN never escapes (S1)
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return format(value, ".10g")
    raise TypeError(f"non-numeric exposition value {value!r}")


class _Family:
    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        #: [(sample_suffix, labels, value)] in insertion order.
        self.samples: List[Tuple[str, Tuple[Tuple[str, str], ...],
                                 object]] = []


class Exposition:
    """Builder for one exposition document."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._families: Dict[str, _Family] = {}

    def add(self, name: str, value, kind: str = "gauge",
            labels: Optional[Dict[str, str]] = None,
            suffix: str = "") -> None:
        metric = _metric_name(name, self.namespace)
        family = self._families.get(metric)
        if family is None:
            family = self._families[metric] = _Family(metric, kind)
        label_items = tuple(sorted((labels or {}).items()))
        family.samples.append((suffix, label_items, value))

    # -- subsystem feeders ----------------------------------------------
    def add_registry(self, registry) -> None:
        """Every metric of a :class:`repro.telemetry.MetricsRegistry`."""
        for name, snap in registry.snapshot().items():
            kind = snap["kind"]
            if kind in ("counter", "gauge"):
                self.add(name, snap["value"], kind=kind)
                continue
            # Histogram: cumulative buckets + sum + count.
            cumulative = 0
            for edge, count in zip(snap["bounds"], snap["counts"]):
                cumulative += count
                self.add(name, cumulative, kind="histogram",
                         labels={"le": str(edge)}, suffix="_bucket")
            cumulative += snap["counts"][-1]
            self.add(name, cumulative, kind="histogram",
                     labels={"le": "+Inf"}, suffix="_bucket")
            self.add(name, snap["sum"], kind="histogram", suffix="_sum")
            self.add(name, snap["count"], kind="histogram", suffix="_count")

    def add_slo(self, slo_summary: Dict[str, object]) -> None:
        """Scalar SLO summary fields (None percentiles are skipped, not
        emitted as NaN — the S1 guard carries through to the scrape)."""
        for key, value in sorted(slo_summary.items()):
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            self.add(f"slo.{key}", value,
                     kind="counter" if key in ("submitted", "served",
                                               "error_replies", "failed")
                     else "gauge")

    def add_burn(self, engine) -> None:
        """Alert states of a :class:`repro.obs.burnrate.BurnRateEngine`."""
        for rule in engine.rules:
            labels = {"rule": rule.name}
            self.add("burn.alert_active",
                     1 if rule.name in engine.active else 0,
                     labels=labels)
        self.add("burn.alerts_fired_total", engine.fired, kind="counter")
        self.add("burn.alerts_cleared_total", engine.cleared,
                 kind="counter")

    def add_fleet_tracer(self, tracer) -> None:
        """Trace volume + drop counts of a fleet tracer."""
        self.add("trace.requests", len(tracer), kind="counter")
        self.add("trace.dropped_traces", tracer.dropped_traces,
                 kind="counter")
        self.add("trace.dropped_hops", tracer.dropped_hops,
                 kind="counter")

    def add_span_dropped(self, dropped: int) -> None:
        """The telemetry span buffer's overflow count (S2: published even
        when the Chrome trace itself is never exported)."""
        self.add("trace.dropped_events", dropped, kind="counter")

    def add_flightlog(self, forensics) -> None:
        """Ring-buffer drop accounting of a forensics flight recorder."""
        log = getattr(forensics, "recorder", forensics)
        self.add("flightlog.events_recorded", log.total, kind="counter")
        self.add("flightlog.events_dropped", log.dropped, kind="counter")

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        lines: List[str] = []
        for metric in sorted(self._families):
            family = self._families[metric]
            lines.append(f"# TYPE {metric} {family.kind}")
            for suffix, labels, value in family.samples:
                label_text = ""
                if labels:
                    inner = ",".join(f'{k}="{v}"' for k, v in labels)
                    label_text = "{" + inner + "}"
                lines.append(f"{metric}{suffix}{label_text} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def render_exposition(registry=None, slo=None, burn=None, tracer=None,
                      span_dropped: Optional[int] = None, forensics=None,
                      namespace: str = "repro") -> str:
    """One-call merge of every attached surface into exposition text."""
    exposition = Exposition(namespace)
    if registry is not None:
        exposition.add_registry(registry)
    if slo is not None:
        exposition.add_slo(slo)
    if burn is not None:
        exposition.add_burn(burn)
    if tracer is not None:
        exposition.add_fleet_tracer(tracer)
    if span_dropped is not None:
        exposition.add_span_dropped(span_dropped)
    if forensics is not None:
        exposition.add_flightlog(forensics)
    return exposition.render()
