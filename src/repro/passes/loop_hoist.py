"""Loop bounds-check hoisting (paper §4.4, "Hoisting checks out of loops").

A scalar-evolution-lite analysis recognizes the canonical counting loop::

    for (i = C0; i < M; i += c) ... a[i] ...

where ``a`` and ``M`` are loop-invariant, ``C0 >= 0`` and ``c > 0``.  The
per-iteration bounds checks on ``a[i]`` are then redundant except for one
upper-bound check of ``a + M*scale`` hoisted to the loop preheader, and the
lower-bound check can be dropped entirely (the pointer only grows from the
base).  The paper observed gains up to 22% (kmeans, matrixmul) and ~2% on
average — our implementation is deliberately conservative in the same way
(no inter-procedural analysis, strides capped at 1024 bytes).

Soundness against counter overflow relies on the unaddressable last page
(§4.4): the hoisted check computes ``base + M*scale`` in full 64-bit, so a
huge ``M`` fails the hoisted check instead of wrapping.

This pass only *marks* accesses safe and records hoist requests in
``fn.hoist_requests``; the SGXBounds instrumentation pass materializes the
preheader checks.  It must therefore only run in the SGXBounds pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ops
from repro.ir.instructions import Instr, is_reg, slot_of
from repro.ir.module import Block, Function, Module

#: Largest stride considered (paper: "loops with small increments (up to
#: 1,024 bytes) — which is virtually all loops in regular applications").
MAX_STRIDE = 1024


class HoistRequest:
    """One hoisted upper-bound check, to be emitted in ``preheader``."""

    __slots__ = ("preheader", "base", "bound", "scale", "size")

    def __init__(self, preheader: str, base: int, bound: int, scale: int,
                 size: int):
        self.preheader = preheader
        self.base = base      # operand: loop-invariant (tagged) base pointer
        self.bound = bound    # operand: loop trip bound M
        self.scale = scale
        self.size = size


def _successors(blk: Block) -> List[str]:
    term = blk.terminator()
    if term is None:
        return []
    if term.op == ops.JMP:
        return [term.t1]
    if term.op == ops.BR:
        return [term.t1, term.t2]
    return []


def _find_loops(fn: Function) -> List[Tuple[str, Set[str]]]:
    """Natural loops as (header, body-block-name-set) via back edges."""
    blocks = {blk.name: blk for blk in fn.blocks}
    preds: Dict[str, List[str]] = {name: [] for name in blocks}
    for blk in fn.blocks:
        for succ in _successors(blk):
            if succ in preds:
                preds[succ].append(blk.name)
    # Iterative DFS to find back edges.
    back_edges: List[Tuple[str, str]] = []
    state: Dict[str, int] = {}
    if not fn.blocks:
        return []
    stack = [(fn.blocks[0].name, iter(_successors(fn.blocks[0])))]
    state[fn.blocks[0].name] = 1
    while stack:
        name, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in blocks:
                continue
            status = state.get(succ, 0)
            if status == 1:
                back_edges.append((name, succ))
            elif status == 0:
                state[succ] = 1
                stack.append((succ, iter(_successors(blocks[succ]))))
                advanced = True
                break
        if not advanced:
            state[name] = 2
            stack.pop()
    loops: List[Tuple[str, Set[str]]] = []
    for latch, header in back_edges:
        body: Set[str] = {header}
        work = [latch]
        while work:
            name = work.pop()
            if name in body:
                continue
            body.add(name)
            work.extend(p for p in preds.get(name, ()))
        loops.append((header, body))
    return loops


def _const_of(fn: Function, operand: Optional[int]) -> Optional[int]:
    if operand is None or is_reg(operand):
        return None
    value = fn.consts[slot_of(operand)]
    return value if isinstance(value, int) else None


def _def_in_block(blk: Block, reg: int) -> Optional[Instr]:
    """Last definition of ``reg`` inside ``blk``."""
    found = None
    for ins in blk.instrs:
        if ins.dest == reg:
            found = ins
    return found


def run_loop_hoist(module: Module) -> int:
    """Hoist checks; returns the number of accesses whose checks were elided."""
    hoisted_total = 0
    for fn in module.functions.values():
        hoisted_total += _hoist_function(fn)
    module.meta["hoisted_accesses"] = \
        module.meta.get("hoisted_accesses", 0) + hoisted_total
    return hoisted_total


def _hoist_function(fn: Function) -> int:
    blocks = {blk.name: blk for blk in fn.blocks}
    hoisted = 0
    requests: List[HoistRequest] = getattr(fn, "hoist_requests", [])
    # Assignment locations: reg -> list of (block name, instr).
    assigns: Dict[int, List[Tuple[str, Instr]]] = {}
    for blk in fn.blocks:
        for ins in blk.instrs:
            if ins.dest is not None:
                assigns.setdefault(ins.dest, []).append((blk.name, ins))

    for header, body in _find_loops(fn):
        head_blk = blocks[header]
        term = head_blk.terminator()
        if term is None or term.op != ops.BR or not is_reg(term.a):
            continue
        # Unwrap the MiniC condition shape: br (ne (slt i, M), 0).
        cond_def = _def_in_block(head_blk, term.a)
        if cond_def is None:
            continue
        if cond_def.op == ops.NE and _const_of(fn, cond_def.b) == 0 \
                and is_reg(cond_def.a):
            cond_def = _def_in_block(head_blk, cond_def.a) or cond_def
        if cond_def.op not in (ops.SLT, ops.ULT):
            continue
        if not is_reg(cond_def.a):
            continue
        ivar = cond_def.a
        bound = cond_def.b
        # The exit edge must leave the loop through the false target.
        if term.t1 not in body or term.t2 in body:
            continue
        # Bound must be loop-invariant.
        if is_reg(bound) and any(name in body for name, _ in assigns.get(bound, ())):
            continue

        def _invariant(operand: Optional[int]) -> bool:
            if operand is None or not is_reg(operand):
                return True
            return not any(name in body for name, _ in assigns.get(operand, ()))

        def _base_operand(operand: int) -> Optional[int]:
            """Preheader-safe operand for a GEP base: the register itself
            when loop-invariant, or the constant it is re-materialized
            from on every iteration (globals compile to ``mov gref``
            inside the loop)."""
            if _invariant(operand):
                return operand
            defs = [ins for name, ins in assigns.get(operand, ())
                    if name in body]
            consts = {ins.a for ins in defs}
            if all(ins.op == ops.MOV and ins.a is not None
                   and not is_reg(ins.a) for ins in defs) \
                    and len(consts) == 1:
                return next(iter(consts))
            return None

        # Induction variable: in-loop assignments are increments by a
        # positive constant (directly, or via MOV from an ADD temp).
        in_loop = [(n, i) for n, i in assigns.get(ivar, ()) if n in body]
        if not in_loop:
            continue
        is_induction = True
        for name, ins in in_loop:
            source = ins
            if ins.op == ops.MOV and is_reg(ins.a):
                source = _def_in_block(blocks[name], ins.a) or ins
            if not (source.op == ops.ADD and source.a == ivar
                    and (_const_of(fn, source.b) or 0) > 0):
                is_induction = False
                break
        if not is_induction:
            continue
        # Start value: the sole out-of-loop assignment is a constant >= 0.
        out_loop = [(n, i) for n, i in assigns.get(ivar, ()) if n not in body]
        if len(out_loop) != 1:
            continue
        start_ins = out_loop[0][1]
        start_value = _const_of(fn, start_ins.a)
        if start_ins.op != ops.MOV or start_value is None or start_value < 0:
            continue

        # Collect hoistable accesses: p = gep(base, ivar, scale); access [p].
        candidates: List[Tuple[Instr, Instr]] = []
        for name in body:
            blk = blocks[name]
            for pos, ins in enumerate(blk.instrs):
                if ins.op != ops.GEP or ins.b != ivar or ins.c != 0:
                    continue
                if ins.size <= 0 or ins.size > MAX_STRIDE:
                    continue
                base = _base_operand(ins.a)
                if base is None:
                    continue
                pointer = ins.dest
                # The GEP result must only be defined here (per loop body).
                defs = [(n, d) for n, d in assigns.get(pointer, ()) if n in body]
                if len(defs) != 1:
                    continue
                for access in blk.instrs[pos + 1:]:
                    if access.op in (ops.LOAD, ops.STORE) \
                            and access.a == pointer \
                            and access.size <= ins.size and not access.safe:
                        candidates.append((ins, access, base))
        if not candidates:
            continue

        preheader_name = f"pre_{header}_{len(fn.blocks)}"
        preheader = Block(preheader_name)
        preheader.instrs.append(Instr(ops.JMP, t1=header,
                                      comment="loop preheader"))
        # Rewire out-of-loop predecessors of the header to the preheader.
        for blk in fn.blocks:
            if blk.name in body and blk.name != header:
                continue
            term2 = blk.terminator()
            if term2 is None:
                continue
            if blk.name in body:
                continue
            for attr in ("t1", "t2"):
                if getattr(term2, attr, None) == header:
                    setattr(term2, attr, preheader_name)
        index = fn.blocks.index(head_blk)
        fn.blocks.insert(index, preheader)
        blocks[preheader_name] = preheader

        seen_geps = set()
        for gep_ins, access, base in candidates:
            access.safe = True
            gep_ins.safe = True
            hoisted += 1
            key = (base, id(gep_ins))
            if key in seen_geps:
                continue
            seen_geps.add(key)
            requests.append(HoistRequest(preheader_name, base, bound,
                                         gep_ins.size, access.size))
    fn.hoist_requests = requests
    return hoisted
