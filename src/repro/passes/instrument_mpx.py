"""Intel MPX instrumentation pass (paper §2.2, Figure 4c).

Inserted operations:

* ``bndmk`` after every object creation whose address enters a register
  (allocas, global address materializations) and implicitly for heap
  allocations (the malloc wrapper returns bounds);
* ``bndcl``/``bndcu`` before every unsafe memory access, checking the
  pointer against the bounds associated with its register;
* ``bndldx``/``bndstx`` around every load/store *of a pointer value*, so
  bounds travel through memory via the Bounds Directory/Bounds Tables —
  Figure 4c lines 11 and 15, the part AddressSanitizer and SGXBounds
  don't need and the source of MPX's enclave pathologies.

Note the multithreading hazard the paper highlights (§4.1): the pointer
store and its ``bndstx`` are two separate instructions, so a thread switch
between them publishes a pointer whose in-memory bounds are stale.
"""

from __future__ import annotations

from typing import List

from repro.ir import ops
from repro.ir.instructions import GlobalRef, Instr, is_reg, slot_of
from repro.ir.module import Block, Function, Module

_ACCESS_OPS = (ops.LOAD, ops.STORE, ops.ATOMICRMW, ops.CMPXCHG)


def _global_size(fn: Function, module: Module, operand) -> int:
    if operand is None or is_reg(operand):
        return -1
    value = fn.consts[slot_of(operand)]
    if isinstance(value, GlobalRef):
        return module.globals[value.name].size
    return -1


#: Architectural bounds registers; functions juggling more pointer roots
#: than this pay spill traffic on every check (extra uops per bndcl/bndcu).
BND_REGISTERS = 4
SPILL_UOPS = 3


def _instrument_function(fn: Function, module: Module) -> int:
    # Count distinct checked pointer roots to estimate register pressure.
    roots = set()
    for blk in fn.blocks:
        for ins in blk.instrs:
            if ins.op in _ACCESS_OPS and not ins.safe and is_reg(ins.a):
                roots.add(ins.a)
    spill = SPILL_UOPS if len(roots) > BND_REGISTERS else 0
    checks = 0
    for blk in fn.blocks:
        out: List[Instr] = []
        for ins in blk.instrs:
            if ins.op == ops.ALLOCA:
                out.append(ins)
                out.append(Instr(ops.BNDMK, dest=ins.dest, a=ins.dest,
                                 b=fn.intern_const(ins.size),
                                 comment="stack object bounds"))
                continue
            if ins.op == ops.MOV:
                size = _global_size(fn, module, ins.a)
                out.append(ins)
                if size >= 0:
                    out.append(Instr(ops.BNDMK, dest=ins.dest, a=ins.dest,
                                     b=fn.intern_const(size),
                                     comment="global object bounds"))
                continue
            if ins.op in _ACCESS_OPS:
                if not ins.safe and is_reg(ins.a):
                    out.append(Instr(ops.BNDCL, dest=ins.a, a=ins.a,
                                     c=spill))
                    out.append(Instr(ops.BNDCU, dest=ins.a, a=ins.a,
                                     size=ins.size, c=spill))
                    checks += 1
                out.append(ins)
                # Bounds travel with pointers through memory (Fig. 4c).
                if ins.op == ops.LOAD and ins.is_pointer \
                        and ins.dest is not None:
                    out.append(Instr(ops.BNDLDX, dest=ins.dest, a=ins.a,
                                     comment="load pointer bounds"))
                elif ins.op == ops.STORE and ins.is_pointer:
                    value = ins.b
                    if is_reg(value):
                        out.append(Instr(ops.BNDSTX, dest=value, a=ins.a,
                                         comment="store pointer bounds"))
                    else:
                        size = _global_size(fn, module, value)
                        if size >= 0:
                            tmp = fn.new_reg("mpx_g")
                            out.append(Instr(ops.MOV, dest=tmp, a=value))
                            out.append(Instr(ops.BNDMK, dest=tmp, a=tmp,
                                             b=fn.intern_const(size)))
                            out.append(Instr(ops.BNDSTX, dest=tmp, a=ins.a))
                continue
            out.append(ins)
        blk.instrs = out
    return checks


def run_mpx_instrumentation(module: Module) -> Module:
    total = 0
    for fn in module.functions.values():
        total += _instrument_function(fn, module)
    module.meta["scheme"] = "mpx"
    module.meta["checks_inserted"] = total
    return module
