"""AddressSanitizer instrumentation pass (paper §2.2, Figure 4b).

Before every (unsafe) memory access the pass inserts the classic ASan fast
path — compute the shadow address, load the shadow byte, branch to a slow
path when non-zero — and wraps stack objects in poisoned redzones.  The
shadow load is a real load in simulated memory, which is where ASan's
cache/EPC pressure comes from.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asan.shadow import GRANULE
from repro.ir import ops
from repro.ir.instructions import Instr
from repro.ir.module import Block, Function, Module
from repro.memory.layout import ASAN_SHADOW_BASE, ASAN_SHADOW_SCALE, align_up

CHECK_HANDLER = "__asan_check"
POISON_STACK = "__asan_poison_stack"
UNPOISON_STACK = "__asan_unpoison_stack"

#: Stack redzone on each side (must match the runtime's ``redzone``).
STACK_REDZONE = 32

_ACCESS_OPS = (ops.LOAD, ops.STORE, ops.ATOMICRMW, ops.CMPXCHG)


class _FunctionInstrumenter:
    def __init__(self, fn: Function):
        self.fn = fn
        self.counter = 0
        self.checks = 0
        self.stack_objects: List[Tuple[int, int]] = []   # (raw reg, size)

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"__as_{hint}{self.counter}"

    def wrap_alloca(self, out: List[Instr], ins: Instr) -> None:
        fn = self.fn
        size = ins.size
        rounded = align_up(size, GRANULE)
        raw = fn.new_reg("as_raw")
        out.append(Instr(ops.ALLOCA, dest=raw,
                         size=rounded + 2 * STACK_REDZONE,
                         b=max(ins.b or 8, GRANULE), safe=True,
                         comment="asan: +redzones"))
        out.append(Instr(ops.GEP, dest=ins.dest, a=raw, c=STACK_REDZONE,
                         size=1, safe=True, comment="skip left redzone"))
        out.append(Instr(ops.CALL, name=POISON_STACK,
                         args=(raw, fn.intern_const(size)), safe=True))
        self.stack_objects.append((raw, size))

    def check_access(self, blocks: List[Block], cur: Block,
                     ins: Instr) -> Block:
        fn = self.fn
        pointer = ins.a
        t_sh = fn.new_reg("as_sh")
        t_sa = fn.new_reg("as_sa")
        t_sv = fn.new_reg("as_sv")
        t_c = fn.new_reg("as_c")
        slow_name = self.fresh("slow")
        ok_name = self.fresh("ok")
        is_write = 0 if ins.op == ops.LOAD else 1

        cur.instrs.append(Instr(ops.LSHR, dest=t_sh, a=pointer,
                                b=fn.intern_const(ASAN_SHADOW_SCALE),
                                comment="shadow offset"))
        cur.instrs.append(Instr(ops.ADD, dest=t_sa, a=t_sh,
                                b=fn.intern_const(ASAN_SHADOW_BASE)))
        cur.instrs.append(Instr(ops.LOAD, dest=t_sv, a=t_sa, size=1,
                                safe=True, comment="shadow byte"))
        cur.instrs.append(Instr(ops.NE, dest=t_c, a=t_sv,
                                b=fn.intern_const(0)))
        cur.instrs.append(Instr(ops.BR, a=t_c, t1=slow_name, t2=ok_name))

        slow_blk = Block(slow_name)
        slow_blk.instrs.append(Instr(
            ops.CALL, name=CHECK_HANDLER,
            args=(pointer, fn.intern_const(ins.size),
                  fn.intern_const(is_write)), safe=True,
            comment="partial granule or poison"))
        slow_blk.instrs.append(Instr(ops.JMP, t1=ok_name))

        ok_blk = Block(ok_name)
        access = ins.copy()
        access.safe = True
        ok_blk.instrs.append(access)
        blocks.extend((slow_blk, ok_blk))
        self.checks += 1
        return ok_blk

    def run(self) -> None:
        fn = self.fn
        new_blocks: List[Block] = []
        for blk in fn.blocks:
            cur = Block(blk.name)
            new_blocks.append(cur)
            for ins in blk.instrs:
                if ins.op == ops.ALLOCA and not ins.safe:
                    self.wrap_alloca(cur.instrs, ins)
                    continue
                if ins.op in _ACCESS_OPS and not ins.safe:
                    cur = self.check_access(new_blocks, cur, ins)
                    continue
                if ins.op == ops.RET and self.stack_objects:
                    for raw, size in self.stack_objects:
                        cur.instrs.append(Instr(
                            ops.CALL, name=UNPOISON_STACK,
                            args=(raw, fn.intern_const(size)), safe=True))
                cur.instrs.append(ins)
        fn.blocks = new_blocks


def run_asan_instrumentation(module: Module) -> Module:
    total = 0
    for fn in module.functions.values():
        worker = _FunctionInstrumenter(fn)
        worker.run()
        total += worker.checks
    module.meta["scheme"] = "asan"
    module.meta["checks_inserted"] = total
    return module
