"""Compiler passes: instrumentation (SGXBounds/ASan/MPX) + optimizations."""

from repro.passes.instrument_asan import run_asan_instrumentation
from repro.passes.instrument_mpx import run_mpx_instrumentation
from repro.passes.instrument_sgxbounds import run_sgxbounds_instrumentation
from repro.passes.loop_hoist import run_loop_hoist
from repro.passes.safe_access import run_safe_access

__all__ = [
    "run_sgxbounds_instrumentation",
    "run_asan_instrumentation",
    "run_mpx_instrumentation",
    "run_safe_access",
    "run_loop_hoist",
]
