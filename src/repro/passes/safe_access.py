"""Safe-access analysis (paper §4.4, "Safe memory accesses").

Marks loads/stores and pointer arithmetic that are provably in-bounds so
instrumentation passes skip them: constant offsets into known-size objects
(struct fields, fixed array indices) and the pointer arithmetic producing
them.  This mirrors the paper's use of LLVM's built-in object-size
analysis; gains of up to ~20% on some applications (§6.5).

The analysis is flow-insensitive for single-assignment registers (facts
hold function-wide) and block-local otherwise — conservative, never
unsound: a register fact is (object size, constant offset), and an access
is safe iff ``0 <= offset`` and ``offset + access_size <= object size``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir import ops
from repro.ir.instructions import GlobalRef, is_reg, slot_of
from repro.ir.module import Function, Module

#: A fact: (object_size, offset_from_base).
Fact = Tuple[int, int]


def _assignment_counts(fn: Function) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for blk in fn.blocks:
        for ins in blk.instrs:
            if ins.dest is not None:
                counts[ins.dest] = counts.get(ins.dest, 0) + 1
    # Parameters are implicitly assigned at entry.
    for index in range(len(fn.params)):
        counts[index] = counts.get(index, 0) + 1
    return counts


def _const_value(fn: Function, operand: Optional[int]) -> Optional[int]:
    if operand is None or is_reg(operand):
        return None
    value = fn.consts[slot_of(operand)]
    return value if isinstance(value, int) else None


def _global_size(fn: Function, module: Module,
                 operand: Optional[int]) -> Optional[int]:
    if operand is None or is_reg(operand):
        return None
    value = fn.consts[slot_of(operand)]
    if isinstance(value, GlobalRef):
        return module.globals[value.name].size
    return None


def _compute_fact(fn: Function, module: Module, ins, facts: Dict[int, Fact]
                  ) -> Optional[Fact]:
    """Fact for ``ins.dest``, given current ``facts``; None if unknown."""
    if ins.op == ops.ALLOCA:
        return (ins.size, 0)
    if ins.op == ops.MOV:
        size = _global_size(fn, module, ins.a)
        if size is not None:
            return (size, 0)
        if is_reg(ins.a):
            return facts.get(ins.a)
        return None
    if ins.op == ops.GEP:
        if is_reg(ins.a):
            base = facts.get(ins.a)
        else:
            size = _global_size(fn, module, ins.a)
            base = (size, 0) if size is not None else None
        if base is None:
            return None
        index = 0
        if ins.b is not None:
            const_index = _const_value(fn, ins.b)
            if const_index is None:
                return None
            index = const_index
        offset = base[1] + index * ins.size + ins.c
        return (base[0], offset)
    return None


def run_safe_access(module: Module) -> int:
    """Mark provably-safe accesses/GEPs; returns the number marked."""
    marked = 0
    for fn in module.functions.values():
        counts = _assignment_counts(fn)
        # Pass 1: facts for single-assignment registers (function-wide).
        global_facts: Dict[int, Fact] = {}
        changed = True
        while changed:
            changed = False
            for blk in fn.blocks:
                for ins in blk.instrs:
                    dest = ins.dest
                    if dest is None or counts.get(dest, 0) != 1:
                        continue
                    if dest in global_facts:
                        continue
                    fact = _compute_fact(fn, module, ins, global_facts)
                    if fact is not None:
                        global_facts[dest] = fact
                        changed = True
        # Pass 2: per-block facts for the rest, seeded with the global ones.
        for blk in fn.blocks:
            facts = dict(global_facts)
            for ins in blk.instrs:
                if ins.op in (ops.LOAD, ops.STORE, ops.ATOMICRMW, ops.CMPXCHG):
                    ptr = ins.a
                    fact = facts.get(ptr) if is_reg(ptr) else None
                    if fact is None and not is_reg(ptr):
                        size = _global_size(fn, module, ptr)
                        if size is not None:
                            fact = (size, 0)
                    if fact is not None and not ins.safe:
                        objsize, offset = fact
                        if 0 <= offset and offset + ins.size <= objsize:
                            ins.safe = True
                            marked += 1
                if ins.op == ops.GEP and not ins.safe:
                    fact = _compute_fact(fn, module, ins, facts)
                    if fact is not None:
                        objsize, offset = fact
                        # In-bounds or one-past-the-end pointers can't
                        # corrupt the tag: arithmetic stays within 32 bits.
                        if 0 <= offset <= objsize:
                            ins.safe = True
                            marked += 1
                dest = ins.dest
                if dest is not None and counts.get(dest, 0) != 1:
                    fact = _compute_fact(fn, module, ins, facts)
                    if fact is not None:
                        facts[dest] = fact
                    else:
                        facts.pop(dest, None)
    return marked
