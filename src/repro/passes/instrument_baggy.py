"""Baggy Bounds instrumentation pass.

Faithful to the original design (Akritidis et al., as summarized in the
paper's §2.2): checks happen at **pointer arithmetic**, not dereference.
After every unsafe GEP ``q = p + delta``::

    k = size_table[p >> 4]          ; log2 of p's allocation block
    if k != 0 and ((p ^ q) >> k):   ; left the block?
        q = __baggy_arith(p, q)     ; tolerate one-past-end by OOB-marking
                                    ; (bit 31), else raise

The XOR trick is Baggy's own constant-time same-block test.  OOB-marked
pointers point outside the 31-bit heap, so dereferencing one faults — the
hardware-trap detection path of the original system.  Protection is at
*allocation* granularity: arithmetic inside the power-of-two padding
passes, exactly the trade-off the paper describes.
"""

from __future__ import annotations

from typing import List

from repro.baggy.runtime import SLOT_SHIFT, TABLE_BASE
from repro.ir import ops
from repro.ir.instructions import Instr, is_reg
from repro.ir.module import Block, Function, Module

ARITH_HANDLER = "__baggy_arith"


class _FunctionInstrumenter:
    def __init__(self, fn: Function):
        self.fn = fn
        self.counter = 0
        self.checks = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"__bg_{hint}{self.counter}"

    def check_gep(self, blocks: List[Block], cur: Block,
                  ins: Instr) -> Block:
        fn = self.fn
        source = ins.a
        dest = ins.dest
        t_idx = fn.new_reg("bg_idx")
        t_ta = fn.new_reg("bg_ta")
        t_k = fn.new_reg("bg_k")
        t_xor = fn.new_reg("bg_xor")
        t_shr = fn.new_reg("bg_shr")
        t_bad = fn.new_reg("bg_bad")
        t_c0 = fn.new_reg("bg_c0")
        chk_name = self.fresh("chk")
        slow_name = self.fresh("slow")
        ok_name = self.fresh("ok")

        cur.instrs.append(ins)    # the original pointer arithmetic
        cur.instrs.append(Instr(ops.LSHR, dest=t_idx, a=source,
                                b=fn.intern_const(SLOT_SHIFT)))
        cur.instrs.append(Instr(ops.ADD, dest=t_ta, a=t_idx,
                                b=fn.intern_const(TABLE_BASE)))
        cur.instrs.append(Instr(ops.LOAD, dest=t_k, a=t_ta, size=1,
                                safe=True, comment="size-table byte"))
        cur.instrs.append(Instr(ops.EQ, dest=t_c0, a=t_k,
                                b=fn.intern_const(0)))
        cur.instrs.append(Instr(ops.BR, a=t_c0, t1=ok_name, t2=chk_name))

        chk = Block(chk_name)
        chk.instrs.append(Instr(ops.XOR, dest=t_xor, a=source, b=dest,
                                comment="same-block test"))
        chk.instrs.append(Instr(ops.LSHR, dest=t_shr, a=t_xor, b=t_k))
        chk.instrs.append(Instr(ops.NE, dest=t_bad, a=t_shr,
                                b=fn.intern_const(0)))
        chk.instrs.append(Instr(ops.BR, a=t_bad, t1=slow_name, t2=ok_name))

        slow = Block(slow_name)
        slow.instrs.append(Instr(ops.CALL, dest=dest, name=ARITH_HANDLER,
                                 args=(source, dest), safe=True,
                                 comment="mark one-past-end or raise"))
        slow.instrs.append(Instr(ops.JMP, t1=ok_name))

        ok = Block(ok_name)
        blocks.extend((chk, slow, ok))
        self.checks += 1
        return ok

    def run(self) -> None:
        fn = self.fn
        new_blocks: List[Block] = []
        for blk in fn.blocks:
            cur = Block(blk.name)
            new_blocks.append(cur)
            for ins in blk.instrs:
                if ins.op == ops.GEP and not ins.safe and is_reg(ins.a):
                    cur = self.check_gep(new_blocks, cur, ins)
                    continue
                cur.instrs.append(ins)
        fn.blocks = new_blocks


def run_baggy_instrumentation(module: Module) -> Module:
    total = 0
    for fn in module.functions.values():
        worker = _FunctionInstrumenter(fn)
        worker.run()
        total += worker.checks
    module.meta["scheme"] = "baggy"
    module.meta["checks_inserted"] = total
    return module
