"""SGXBounds instrumentation pass (paper §3, Figure 4d).

Per function this pass:

* rewrites every stack allocation to append the 4-byte lower-bound word
  and produce a *tagged* pointer (``specify_bounds`` inlined as IR);
* clamps pointer arithmetic to the low 32 bits so attacker-controlled
  offsets cannot corrupt the in-pointer upper bound (§3.2);
* inserts the bounds check of Figure 4d before every load/store/atomic:
  extract pointer and upper bound, compare, load the lower bound from
  ``[UB]``, compare — violations branch to a slow-path call that either
  crashes (fail-stop) or redirects to the boundless-memory overlay (§4.2);
* materializes hoisted loop checks requested by the loop-hoist pass.

Accesses marked ``safe`` by the safe-access analysis are skipped
(checks-elided counter in module meta), and type casts need *no*
instrumentation — tagged pointers survive int<->pointer casts by design.
"""

from __future__ import annotations

from typing import List

from repro.core.tagged_pointer import METADATA_SIZE, M32
from repro.ir import ops
from repro.ir.instructions import Instr
from repro.ir.module import Block, Function, Module

#: Name of the slow-path native provided by the SGXBounds runtime.
VIOLATION_HANDLER = "__sgxbounds_violation"
STACK_CREATE_HOOK = "__sgxbounds_stack_create"

_ACCESS_OPS = (ops.LOAD, ops.STORE, ops.ATOMICRMW, ops.CMPXCHG)


class _FunctionInstrumenter:
    def __init__(self, fn: Function, extra_metadata: int,
                 stack_hooks: bool):
        self.fn = fn
        self.extra = extra_metadata
        self.stack_hooks = stack_hooks
        self.counter = 0
        self.checks = 0
        self.elided = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"__sb_{hint}{self.counter}"

    # -- alloca ---------------------------------------------------------
    def tag_alloca(self, out: List[Instr], ins: Instr) -> None:
        """alloca n  ->  tagged pointer with LB word appended (§3.2)."""
        fn = self.fn
        orig_size = ins.size
        raw = fn.new_reg("sb_raw")
        lb_addr = fn.new_reg("sb_lb")
        shifted = fn.new_reg("sb_sh")
        out.append(Instr(ops.ALLOCA, dest=raw,
                         size=orig_size + METADATA_SIZE + self.extra + 4,
                         b=ins.b, safe=True, comment="sgxbounds: +metadata"))
        out.append(Instr(ops.GEP, dest=lb_addr, a=raw, c=orig_size,
                         size=1, safe=True, comment="UB = base + size"))
        out.append(Instr(ops.STORE, a=lb_addr, b=raw, size=4, safe=True,
                         comment="*UB = LB"))
        out.append(Instr(ops.SHL, dest=shifted, a=lb_addr,
                         b=fn.intern_const(32)))
        out.append(Instr(ops.OR, dest=ins.dest, a=shifted, b=raw,
                         comment="tagged = (UB<<32)|p"))
        if self.stack_hooks:
            out.append(Instr(ops.CALL, name=STACK_CREATE_HOOK,
                             args=(ins.dest, fn.intern_const(orig_size)),
                             safe=True))

    # -- per-access check -----------------------------------------------
    def check_access(self, blocks: List[Block], cur: Block,
                     ins: Instr) -> Block:
        """Emit Figure 4d's check before ``ins``; returns the continuation
        block that now holds the (rewritten) access."""
        fn = self.fn
        pointer = ins.a
        size_const = fn.intern_const(ins.size)
        t_ub = fn.new_reg("sb_ub")
        t_ad = fn.new_reg("sb_ad")
        t_end = fn.new_reg("sb_end")
        t_c1 = fn.new_reg("sb_c1")
        lb_name = self.fresh("lb")
        slow_name = self.fresh("slow")
        ok_name = self.fresh("ok")
        is_write = 0 if ins.op == ops.LOAD else 1

        cur.instrs.append(Instr(ops.LSHR, dest=t_ub, a=pointer,
                                b=fn.intern_const(32),
                                comment="extract UB"))
        cur.instrs.append(Instr(ops.AND, dest=t_ad, a=pointer,
                                b=fn.intern_const(M32), comment="extract p"))
        cur.instrs.append(Instr(ops.ADD, dest=t_end, a=t_ad, b=size_const))
        cur.instrs.append(Instr(ops.UGT, dest=t_c1, a=t_end, b=t_ub))
        cur.instrs.append(Instr(ops.BR, a=t_c1, t1=slow_name, t2=lb_name,
                                comment="upper-bound check"))

        lb_blk = Block(lb_name)
        t_lb = fn.new_reg("sb_lbv")
        t_c2 = fn.new_reg("sb_c2")
        lb_blk.instrs.append(Instr(ops.LOAD, dest=t_lb, a=t_ub, size=4,
                                   safe=True, comment="LB = *UB"))
        lb_blk.instrs.append(Instr(ops.ULT, dest=t_c2, a=t_ad, b=t_lb))
        lb_blk.instrs.append(Instr(ops.BR, a=t_c2, t1=slow_name, t2=ok_name,
                                   comment="lower-bound check"))

        slow_blk = Block(slow_name)
        slow_blk.instrs.append(Instr(
            ops.CALL, dest=t_ad, name=VIOLATION_HANDLER,
            args=(pointer, size_const, fn.intern_const(is_write)),
            safe=True, comment="crash or boundless redirect"))
        slow_blk.instrs.append(Instr(ops.JMP, t1=ok_name))

        ok_blk = Block(ok_name)
        access = ins.copy()
        access.a = t_ad
        access.safe = True
        ok_blk.instrs.append(access)

        blocks.extend((lb_blk, slow_blk, ok_blk))
        self.checks += 1
        return ok_blk

    # -- hoisted checks -----------------------------------------------------
    def emit_hoisted(self, blocks_by_name) -> None:
        for request in getattr(self.fn, "hoist_requests", ()):
            pre = blocks_by_name.get(request.preheader)
            if pre is None:
                continue
            fn = self.fn
            t_ub = fn.new_reg("sb_hub")
            t_ad = fn.new_reg("sb_had")
            t_len = fn.new_reg("sb_hlen")
            t_end = fn.new_reg("sb_hend")
            t_bad = fn.new_reg("sb_hbad")
            seq = [
                Instr(ops.LSHR, dest=t_ub, a=request.base,
                      b=fn.intern_const(32), comment="hoisted check"),
                Instr(ops.AND, dest=t_ad, a=request.base,
                      b=fn.intern_const(M32)),
                Instr(ops.MUL, dest=t_len, a=request.bound,
                      b=fn.intern_const(request.scale)),
                Instr(ops.ADD, dest=t_end, a=t_ad, b=t_len),
                Instr(ops.UGT, dest=t_bad, a=t_end, b=t_ub),
            ]
            ok_name = self.fresh("hok")
            slow_name = self.fresh("hslow")
            ok_blk = Block(ok_name)
            ok_blk.instrs = pre.instrs    # the original preheader body (JMP)
            slow_blk = Block(slow_name)
            dummy = fn.new_reg("sb_hdump")
            slow_blk.instrs.append(Instr(
                ops.CALL, dest=dummy, name=VIOLATION_HANDLER,
                args=(request.base, t_len, fn.intern_const(1)), safe=True,
                comment="hoisted check failed"))
            slow_blk.instrs.append(Instr(ops.JMP, t1=ok_name))
            pre.instrs = seq + [Instr(ops.BR, a=t_bad, t1=slow_name,
                                      t2=ok_name)]
            index = self.fn.blocks.index(pre)
            self.fn.blocks.insert(index + 1, slow_blk)
            self.fn.blocks.insert(index + 2, ok_blk)

    # -- driver ----------------------------------------------------------------
    def run(self) -> None:
        fn = self.fn
        new_blocks: List[Block] = []
        for blk in fn.blocks:
            cur = Block(blk.name)
            new_blocks.append(cur)
            for ins in blk.instrs:
                if ins.op == ops.ALLOCA and not ins.safe:
                    self.tag_alloca(cur.instrs, ins)
                    continue
                if ins.op == ops.GEP:
                    if not ins.safe:
                        ins.clamp = True
                    cur.instrs.append(ins)
                    continue
                if ins.op in _ACCESS_OPS and not ins.safe:
                    cur = self.check_access(new_blocks, cur, ins)
                    continue
                if ins.op in _ACCESS_OPS and ins.safe:
                    self.elided += 1
                cur.instrs.append(ins)
        fn.blocks = new_blocks
        self.emit_hoisted({blk.name: blk for blk in new_blocks})


def run_sgxbounds_instrumentation(module: Module, extra_metadata: int = 0,
                                  stack_hooks: bool = False) -> Module:
    """Instrument ``module`` in place; returns it for chaining."""
    total_checks = 0
    total_elided = 0
    for fn in module.functions.values():
        worker = _FunctionInstrumenter(fn, extra_metadata, stack_hooks)
        worker.run()
        total_checks += worker.checks
        total_elided += worker.elided
    module.meta["scheme"] = "sgxbounds"
    module.meta["checks_inserted"] = total_checks
    module.meta["checks_elided"] = total_elided
    return module
