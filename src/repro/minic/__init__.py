"""MiniC: the C dialect the reproduction's workloads are written in."""

from typing import Optional

from repro.ir import Module, verify_module
from repro.minic.codegen import BUILTINS, compile_unit
from repro.minic.parser import parse


def compile_source(source: str, name: str = "minic",
                   verify: bool = True) -> Module:
    """Compile MiniC ``source`` into an (unfinalized) IR module.

    The module is left in basic-block form so instrumentation passes can
    transform it; call ``module.finalize()`` (the harness does) before
    handing it to the VM.
    """
    unit, structs = parse(source, name)
    module = compile_unit(unit, structs, name)
    if verify:
        verify_module(module)
    return module


__all__ = ["compile_source", "parse", "compile_unit", "BUILTINS"]
