"""MiniC recursive-descent parser.

Grammar (C subset): struct definitions, global variables with constant
initializers, function definitions; statements: blocks, if/else, while,
do-while, for (with declaration), break/continue/return, expression
statements, local declarations; expressions: full C operator set minus
comma, with precedence climbing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.minic import ast_nodes as ast
from repro.minic import ctypes as ct
from repro.minic.lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {"void", "char", "int", "uint", "double", "struct", "fnptr",
                  "const", "static"}


class Parser:
    def __init__(self, source: str, name: str = "<minic>"):
        self.tokens = tokenize(source)
        self.pos = 0
        self.name = name
        self.structs: Dict[str, ct.Struct] = {}

    # -- token helpers ----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at(self, kind: str, value: object = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: object = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise CompileError(
                f"expected {want!r}, got {token.value!r}", token.line, token.column)
        return self.next()

    def error(self, message: str) -> CompileError:
        token = self.peek()
        return CompileError(message, token.line, token.column)

    # -- types --------------------------------------------------------------
    def at_type(self) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.value in _TYPE_KEYWORDS

    def parse_type_spec(self) -> ct.CType:
        """Base type (no pointer stars): keyword or struct reference."""
        while self.accept("kw", "const") or self.accept("kw", "static"):
            pass
        token = self.expect("kw")
        if token.value == "struct":
            name_token = self.expect("ident")
            struct = self.structs.get(name_token.value)
            if struct is None:
                struct = ct.Struct(name_token.value)
                self.structs[name_token.value] = struct
            return struct
        basics = {"void": ct.VOID, "char": ct.CHAR, "int": ct.INT,
                  "uint": ct.UINT, "double": ct.DOUBLE, "fnptr": ct.FNPTR}
        if token.value not in basics:
            raise CompileError(f"not a type: {token.value!r}",
                               token.line, token.column)
        return basics[token.value]

    def parse_pointers(self, base: ct.CType) -> ct.CType:
        while self.accept("op", "*"):
            base = ct.Pointer(base)
        return base

    def parse_full_type(self) -> ct.CType:
        """Type spec + pointers (used by casts and sizeof)."""
        return self.parse_pointers(self.parse_type_spec())

    def parse_array_suffix(self, base: ct.CType) -> ct.CType:
        """Trailing [N][M]... after a declarator name."""
        dims: List[int] = []
        while self.accept("op", "["):
            size_token = self.expect("int")
            dims.append(size_token.value)
            self.expect("op", "]")
        for dim in reversed(dims):
            base = ct.Array(base, dim)
        return base

    # -- top level -------------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        decls: List[ast.Node] = []
        while not self.at("eof"):
            if self.at("kw", "struct") and self.peek(2).value == "{":
                self.parse_struct_def()
                continue
            decls.extend(self.parse_top_decl())
        return ast.TranslationUnit(decls)

    def parse_struct_def(self) -> None:
        self.expect("kw", "struct")
        name = self.expect("ident").value
        struct = self.structs.get(name)
        if struct is None:
            struct = ct.Struct(name)
            self.structs[name] = struct
        self.expect("op", "{")
        fields: List[Tuple[str, ct.CType]] = []
        while not self.accept("op", "}"):
            base = self.parse_type_spec()
            while True:
                ftype = self.parse_pointers(base)
                fname = self.expect("ident").value
                ftype = self.parse_array_suffix(ftype)
                fields.append((fname, ftype))
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        self.expect("op", ";")
        struct.define(fields)

    def parse_top_decl(self) -> List[ast.Node]:
        line = self.peek().line
        is_const = self.at("kw", "const")
        base = self.parse_type_spec()
        results: List[ast.Node] = []
        while True:
            ctype = self.parse_pointers(base)
            name = self.expect("ident").value
            if self.at("op", "("):
                results.append(self.parse_function(name, ctype, line))
                return results
            ctype = self.parse_array_suffix(ctype)
            init: Optional[ast.Expr] = None
            if self.accept("op", "="):
                init = self.parse_initializer()
            results.append(ast.GlobalDecl(name, ctype, init, is_const, line))
            if self.accept("op", ";"):
                return results
            self.expect("op", ",")

    def parse_initializer(self) -> ast.Expr:
        if self.at("op", "{"):
            line = self.next().line
            items: List[ast.Expr] = []
            while not self.accept("op", "}"):
                items.append(self.parse_initializer())
                if not self.at("op", "}"):
                    self.expect("op", ",")
            return ast.InitList(items, line)
        return self.parse_assignment()

    def parse_function(self, name: str, ret: ct.CType, line: int) -> ast.FuncDef:
        self.expect("op", "(")
        params: List[Tuple[str, ct.CType]] = []
        if not self.at("op", ")"):
            if self.at("kw", "void") and self.peek(1).value == ")":
                self.next()
            else:
                while True:
                    ptype = self.parse_full_type()
                    pname = self.expect("ident").value
                    ptype = ct.decay(self.parse_array_suffix(ptype))
                    params.append((pname, ptype))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDef(name, ret, params, body, line)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        stmts: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return ast.Block(stmts, line)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if token.kind == "kw":
            keyword = token.value
            if keyword == "if":
                return self.parse_if()
            if keyword == "while":
                return self.parse_while()
            if keyword == "do":
                return self.parse_do_while()
            if keyword == "for":
                return self.parse_for()
            if keyword == "return":
                self.next()
                value = None if self.at("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value, token.line)
            if keyword == "break":
                self.next()
                self.expect("op", ";")
                return ast.Break(token.line)
            if keyword == "continue":
                self.next()
                self.expect("op", ";")
                return ast.Continue(token.line)
            if keyword in _TYPE_KEYWORDS:
                return self.parse_local_decl()
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, token.line)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.peek().line
        base = self.parse_type_spec()
        decls: List[ast.Stmt] = []
        while True:
            ctype = self.parse_pointers(base)
            name = self.expect("ident").value
            ctype = self.parse_array_suffix(ctype)
            init: Optional[ast.Expr] = None
            if self.accept("op", "="):
                init = self.parse_initializer()
            decls.append(ast.Decl(name, ctype, init, line))
            if self.accept("op", ";"):
                break
            self.expect("op", ",")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls, line)

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        other = None
        if self.accept("kw", "else"):
            other = self.parse_statement()
        return ast.If(cond, then, other, line)

    def parse_while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def parse_do_while(self) -> ast.DoWhile:
        line = self.expect("kw", "do").line
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond, line)

    def parse_for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.accept("op", ";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(self.parse_expression(), line)
                self.expect("op", ";")
        cond: Optional[ast.Expr] = None
        if not self.at("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step: Optional[ast.Expr] = None
        if not self.at("op", ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line)

    # -- expressions ------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        token = self.peek()
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(token.value, left, value, token.line)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.at("op", "?"):
            line = self.next().line
            then = self.parse_assignment()
            self.expect("op", ":")
            other = self.parse_assignment()
            return ast.Cond(cond, then, other, line)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.value, 0)
            if prec < min_prec or prec == 0:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Bin(token.value, left, right, token.line)

    def _at_cast(self) -> bool:
        if not self.at("op", "("):
            return False
        nxt = self.peek(1)
        return nxt.kind == "kw" and nxt.value in _TYPE_KEYWORDS

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op":
            if token.value in ("-", "!", "~", "*", "&", "+"):
                self.next()
                expr = self.parse_unary()
                if token.value == "+":
                    return expr
                return ast.Unary(token.value, expr, token.line)
            if token.value in ("++", "--"):
                self.next()
                expr = self.parse_unary()
                return ast.Unary(token.value, expr, token.line)
            if self._at_cast():
                self.next()                    # '('
                ctype = self.parse_full_type()
                self.expect("op", ")")
                expr = self.parse_unary()
                return ast.Cast(ctype, expr, token.line)
        if token.kind == "kw" and token.value == "sizeof":
            self.next()
            self.expect("op", "(")
            if self.at_type():
                ctype = self.parse_full_type()
                ctype = self.parse_array_suffix(ctype)
                self.expect("op", ")")
                return ast.SizeofType(ctype, token.line)
            expr = self.parse_expression()
            self.expect("op", ")")
            return ast.SizeofExpr(expr, token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return expr
            if token.value == "(":
                self.next()
                args: List[ast.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(expr, args, token.line)
            elif token.value == "[":
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, token.line)
            elif token.value == ".":
                self.next()
                field = self.expect("ident").value
                expr = ast.Member(expr, field, False, token.line)
            elif token.value == "->":
                self.next()
                field = self.expect("ident").value
                expr = ast.Member(expr, field, True, token.line)
            elif token.value in ("++", "--"):
                self.next()
                expr = ast.Postfix(token.value, expr, token.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.Num(token.value, token.line)
        if token.kind == "char":
            return ast.Num(token.value, token.line)
        if token.kind == "float":
            return ast.Flt(token.value, token.line)
        if token.kind == "str":
            return ast.Str(token.value, token.line)
        if token.kind == "ident":
            return ast.Ident(token.value, token.line)
        if token.kind == "op" and token.value == "(":
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.value!r}",
                           token.line, token.column)


def parse(source: str, name: str = "<minic>") -> Tuple[ast.TranslationUnit, Dict[str, ct.Struct]]:
    parser = Parser(source, name)
    unit = parser.parse_unit()
    return unit, parser.structs
