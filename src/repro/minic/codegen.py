"""MiniC to IR code generation.

Scalar locals whose address is never taken live in IR registers (a built-in
mem2reg); address-taken locals, arrays and structs get stack slots via
``ALLOCA`` — exactly the objects the instrumentation passes must protect.
Array indexing compiles to a single scaled ``GEP`` so the scalar-evolution
analysis can recognize induction-variable accesses (paper §4.4).
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.ir import IRBuilder, Function, GlobalVar, Module, ops
from repro.ir.instructions import FuncRef, GlobalRef
from repro.minic import ast_nodes as ast
from repro.minic import ctypes as ct

#: Built-in (native) functions visible to every MiniC program.
BUILTINS: Dict[str, ct.CType] = {
    "malloc": ct.Pointer(ct.VOID), "calloc": ct.Pointer(ct.VOID),
    "realloc": ct.Pointer(ct.VOID), "free": ct.VOID,
    "memcpy": ct.Pointer(ct.VOID), "memmove": ct.Pointer(ct.VOID),
    "memset": ct.Pointer(ct.VOID), "memcmp": ct.INT,
    "strlen": ct.INT, "strcpy": ct.Pointer(ct.CHAR),
    "strncpy": ct.Pointer(ct.CHAR), "strcmp": ct.INT, "strncmp": ct.INT,
    "strcat": ct.Pointer(ct.CHAR), "strchr": ct.Pointer(ct.CHAR),
    "printf": ct.INT, "puts": ct.INT, "putchar": ct.INT,
    "print_str": ct.VOID, "print_int": ct.VOID, "print_float": ct.VOID,
    "clock": ct.INT, "rand": ct.INT, "srand": ct.VOID,
    "abort": ct.VOID, "exit": ct.VOID,
    "spawn": ct.INT, "join": ct.INT, "thread_yield": ct.VOID,
    "mutex_lock": ct.INT, "mutex_unlock": ct.INT,
    "net_recv": ct.INT, "net_send": ct.INT,
}

_CMP_SIGNED = {"<": ops.SLT, "<=": ops.SLE, ">": ops.SGT, ">=": ops.SGE}
_CMP_UNSIGNED = {"<": ops.ULT, "<=": ops.ULE, ">": ops.UGT, ">=": ops.UGE}
_CMP_FLOAT = {"<": ops.FLT, "<=": ops.FLE, ">": ops.FGT, ">=": ops.FGE,
              "==": ops.FEQ, "!=": ops.FNE}
_INT_BIN = {"+": ops.ADD, "-": ops.SUB, "*": ops.MUL, "&": ops.AND,
            "|": ops.OR, "^": ops.XOR, "<<": ops.SHL}
_FLOAT_BIN = {"+": ops.FADD, "-": ops.FSUB, "*": ops.FMUL, "/": ops.FDIV}

# Lvalue kinds.
_MEM = "mem"
_REG = "reg"


def _collect_address_taken(node: ast.Node, names: set) -> None:
    """Find locals whose address is taken (must live in memory)."""
    if isinstance(node, ast.Unary) and node.op == "&" \
            and isinstance(node.expr, ast.Ident):
        names.add(node.expr.name)
    for slot in getattr(node, "__slots__", ()):
        child = getattr(node, slot, None)
        if isinstance(child, ast.Node):
            _collect_address_taken(child, names)
        elif isinstance(child, list):
            for item in child:
                if isinstance(item, ast.Node):
                    _collect_address_taken(item, names)


class UnitCodegen:
    """Compiles one translation unit into an IR module."""

    def __init__(self, unit: ast.TranslationUnit,
                 structs: Dict[str, ct.Struct], name: str = "minic"):
        self.unit = unit
        self.structs = structs
        self.module = Module(name)
        self.func_types: Dict[str, Tuple[ct.CType, List[ct.CType]]] = {}
        self.global_types: Dict[str, ct.CType] = {}
        self._strings: Dict[bytes, str] = {}

    # ------------------------------------------------------------------
    def run(self) -> Module:
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDef):
                self.func_types[decl.name] = (
                    decl.ret, [ptype for _, ptype in decl.params])
        for decl in self.unit.decls:
            if isinstance(decl, ast.GlobalDecl):
                self._emit_global(decl)
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDef):
                FunctionCodegen(self, decl).run()
        return self.module

    def intern_string(self, text: bytes) -> str:
        name = self._strings.get(text)
        if name is None:
            var = self.module.add_string(text)
            name = var.name
            self._strings[text] = name
        return name

    # -- global initializers ----------------------------------------------
    def _const_value(self, expr: ast.Expr) -> Union[int, float, tuple]:
        """Evaluate a constant expression; ('ref', name) for addresses."""
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Flt):
            return expr.value
        if isinstance(expr, ast.Str):
            return ("gref", self.intern_string(expr.value))
        if isinstance(expr, ast.SizeofType):
            return expr.ctype.size
        if isinstance(expr, ast.Unary):
            if expr.op == "&" and isinstance(expr.expr, ast.Ident):
                name = expr.expr.name
                if name in self.func_types:
                    return ("fref", name)
                return ("gref", name)
            inner = self._const_value(expr.expr)
            if expr.op == "-" and isinstance(inner, (int, float)):
                return -inner
        if isinstance(expr, ast.Ident):
            if expr.name in self.func_types:
                return ("fref", expr.name)
            raise CompileError(
                f"global initializer: {expr.name!r} is not constant", expr.line)
        if isinstance(expr, ast.Bin):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            if isinstance(left, (int, float)) and isinstance(right, (int, float)):
                table = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                         "*": lambda a, b: a * b, "/": lambda a, b: a // b
                         if isinstance(a, int) else a / b,
                         "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
                         "|": lambda a, b: a | b, "&": lambda a, b: a & b}
                if expr.op in table:
                    return table[expr.op](left, right)
        if isinstance(expr, ast.Cast):
            return self._const_value(expr.expr)
        raise CompileError("unsupported constant initializer", expr.line)

    def _pack_scalar(self, ctype: ct.CType, value, offset: int,
                     out: bytearray, relocs: list) -> None:
        if isinstance(value, tuple):
            kind, name = value
            ref = GlobalRef(name) if kind == "gref" else FuncRef(name)
            relocs.append((offset, ref))
            return
        if ctype.is_float():
            out[offset:offset + 8] = _struct.pack("<d", float(value))
            return
        size = ctype.size
        out[offset:offset + size] = int(value).to_bytes(
            size, "little", signed=False) if value >= 0 else \
            (int(value) & ((1 << (size * 8)) - 1)).to_bytes(size, "little")

    def _fill_init(self, ctype: ct.CType, init: ast.Expr, offset: int,
                   out: bytearray, relocs: list) -> None:
        if isinstance(ctype, ct.Array):
            if isinstance(init, ast.Str) and ctype.elem == ct.CHAR:
                data = init.value + b"\x00"
                if len(data) > ctype.size:
                    raise CompileError("string too long for array", init.line)
                out[offset:offset + len(data)] = data
                return
            if not isinstance(init, ast.InitList):
                raise CompileError("array initializer must be a list", init.line)
            if len(init.items) > ctype.count:
                raise CompileError("too many array initializers", init.line)
            for i, item in enumerate(init.items):
                self._fill_init(ctype.elem, item, offset + i * ctype.elem.size,
                                out, relocs)
            return
        if isinstance(ctype, ct.Struct):
            if not isinstance(init, ast.InitList):
                raise CompileError("struct initializer must be a list", init.line)
            if len(init.items) > len(ctype.fields):
                raise CompileError("too many struct initializers", init.line)
            for item, (fname, ftype) in zip(init.items, ctype.fields):
                self._fill_init(ftype, item, offset + ctype.offsets[fname],
                                out, relocs)
            return
        value = self._const_value(init)
        if ctype.is_float() and isinstance(value, int):
            value = float(value)
        self._pack_scalar(ctype, value, offset, out, relocs)

    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        ctype = decl.ctype
        if ctype.size == 0:
            raise CompileError(f"global {decl.name} has incomplete type",
                               decl.line)
        out = bytearray(ctype.size)
        relocs: list = []
        if decl.init is not None:
            self._fill_init(ctype, decl.init, 0, out, relocs)
        elem = 0
        if isinstance(ctype, ct.Array):
            elem = ctype.elem.size
        init_bytes = bytes(out).rstrip(b"\x00")
        self.module.add_global(GlobalVar(
            decl.name, ctype.size, init_bytes, align=max(ctype.align, 1),
            is_const=decl.is_const, array_elem=elem, relocs=relocs))
        self.global_types[decl.name] = ctype


class FunctionCodegen:
    """Compiles one function body."""

    def __init__(self, unit: UnitCodegen, decl: ast.FuncDef):
        self.unit = unit
        self.decl = decl
        self.module = unit.module
        self.fn = Function(decl.name, [name for name, _ in decl.params])
        self.b = IRBuilder(self.fn, self.fn.block("entry"))
        self.env: List[Dict[str, Tuple[str, int, ct.CType]]] = [{}]
        self.break_stack: List[str] = []
        self.continue_stack: List[str] = []
        self.label_counter = 0
        self.terminated = False
        address_taken: set = set()
        _collect_address_taken(decl.body, address_taken)
        self.address_taken = address_taken

    # -- infrastructure -----------------------------------------------------
    def label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def start_block(self, name: str) -> None:
        self.b.set_block(self.b.new_block(name))
        self.terminated = False

    def ensure_live_block(self) -> None:
        if self.terminated:
            self.start_block(self.label("dead"))

    def lookup(self, name: str) -> Optional[Tuple[str, int, ct.CType]]:
        for scope in reversed(self.env):
            if name in scope:
                return scope[name]
        return None

    # -- entry ----------------------------------------------------------------
    def run(self) -> None:
        decl = self.decl
        for index, (pname, ptype) in enumerate(decl.params):
            ptype = ct.decay(ptype)
            if pname in self.address_taken or isinstance(ptype, ct.Struct):
                slot = self.b.alloca(max(ptype.size, 8), ptype.align)
                self.b.store(index, slot, size=ptype.size if ptype.size in
                             (1, 2, 4, 8) else 8,
                             is_float=ptype.is_float(),
                             is_pointer=ptype.is_pointer())
                self.env[0][pname] = (_MEM, slot, ptype)
            else:
                self.env[0][pname] = (_REG, index, ptype)
        self.gen_block(decl.body, new_scope=False)
        if not self.terminated:
            self.b.ret(None if decl.ret.is_void() else self.b.k(0))
        self.module.add_function(self.fn)

    # -- statements -------------------------------------------------------------
    def gen_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.env.append({})
        for stmt in block.stmts:
            self.gen_stmt(stmt)
        if new_scope:
            self.env.pop()

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        self.ensure_live_block()
        if stmt.line:
            self.b.line = stmt.line   # source location for emitted IR
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.Decl):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.b.ret(None)
            else:
                value, vtype = self.gen_expr(stmt.value)
                value = self.convert(value, vtype, self.decl.ret, stmt.line)
                self.b.ret(value)
            self.terminated = True
        elif isinstance(stmt, ast.Break):
            if not self.break_stack:
                raise CompileError("break outside loop", stmt.line)
            self.b.jmp(self.break_stack[-1])
            self.terminated = True
        elif isinstance(stmt, ast.Continue):
            if not self.continue_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.b.jmp(self.continue_stack[-1])
            self.terminated = True
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}",
                               stmt.line)

    def gen_decl(self, decl: ast.Decl) -> None:
        ctype = decl.ctype
        name = decl.name
        needs_memory = (name in self.address_taken
                        or isinstance(ctype, (ct.Array, ct.Struct)))
        if needs_memory:
            slot = self.b.alloca(max(ctype.size, 1), max(ctype.align, 1))
            self.env[-1][name] = (_MEM, slot, ctype)
            if decl.init is not None:
                self.init_memory(slot, ctype, decl.init)
        else:
            reg = self.fn.new_reg(name)
            self.env[-1][name] = (_REG, reg, ctype)
            if decl.init is not None:
                value, vtype = self.gen_expr(decl.init)
                value = self.convert(value, vtype, ctype, decl.line)
                self.b.mov(value, dest=reg)
            else:
                self.b.mov(self.b.k(0), dest=reg)

    def init_memory(self, addr: int, ctype: ct.CType, init: ast.Expr) -> None:
        """Initialize an in-memory local from an initializer expression."""
        if isinstance(init, ast.InitList):
            if isinstance(ctype, ct.Array):
                for i, item in enumerate(init.items):
                    slot = self.b.gep(addr, offset=i * ctype.elem.size)
                    self.init_memory(slot, ctype.elem, item)
                return
            if isinstance(ctype, ct.Struct):
                for item, (fname, ftype) in zip(init.items, ctype.fields):
                    slot = self.b.gep(addr, offset=ctype.offsets[fname])
                    self.init_memory(slot, ftype, item)
                return
            raise CompileError("initializer list for scalar", init.line)
        if isinstance(init, ast.Str) and isinstance(ctype, ct.Array) \
                and ctype.elem == ct.CHAR:
            src = self.b.gref(self.unit.intern_string(init.value))
            self.b.call("memcpy", [addr, src, self.b.k(len(init.value) + 1)],
                        want_result=False)
            return
        value, vtype = self.gen_expr(init)
        value = self.convert(value, vtype, ctype, init.line)
        self.store_to(addr, value, ctype)

    def gen_if(self, stmt: ast.If) -> None:
        then_label = self.label("then")
        else_label = self.label("else") if stmt.other else None
        end_label = self.label("endif")
        cond = self.gen_condition(stmt.cond)
        self.b.br(cond, then_label, else_label or end_label)
        self.start_block(then_label)
        self.gen_stmt(stmt.then)
        if not self.terminated:
            self.b.jmp(end_label)
        if stmt.other is not None:
            self.start_block(else_label)
            self.gen_stmt(stmt.other)
            if not self.terminated:
                self.b.jmp(end_label)
        self.start_block(end_label)

    def gen_while(self, stmt: ast.While) -> None:
        head = self.label("while")
        body = self.label("body")
        end = self.label("endwhile")
        self.b.jmp(head)
        self.start_block(head)
        cond = self.gen_condition(stmt.cond)
        self.b.br(cond, body, end)
        self.start_block(body)
        self.break_stack.append(end)
        self.continue_stack.append(head)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        if not self.terminated:
            self.b.jmp(head)
        self.start_block(end)

    def gen_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.label("dobody")
        head = self.label("docond")
        end = self.label("enddo")
        self.b.jmp(body)
        self.start_block(body)
        self.break_stack.append(end)
        self.continue_stack.append(head)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        if not self.terminated:
            self.b.jmp(head)
        self.start_block(head)
        cond = self.gen_condition(stmt.cond)
        self.b.br(cond, body, end)
        self.start_block(end)

    def gen_for(self, stmt: ast.For) -> None:
        self.env.append({})
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head = self.label("for")
        body = self.label("forbody")
        step = self.label("forstep")
        end = self.label("endfor")
        self.b.jmp(head)
        self.start_block(head)
        if stmt.cond is not None:
            cond = self.gen_condition(stmt.cond)
            self.b.br(cond, body, end)
        else:
            self.b.jmp(body)
        self.start_block(body)
        self.break_stack.append(end)
        self.continue_stack.append(step)
        self.gen_stmt(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        if not self.terminated:
            self.b.jmp(step)
        self.start_block(step)
        if stmt.step is not None:
            self.gen_expr(stmt.step, want_value=False)
        self.b.jmp(head)
        self.start_block(end)
        self.env.pop()

    # -- conversions -------------------------------------------------------------
    def convert(self, value: int, src: ct.CType, dst: ct.CType,
                line: int) -> int:
        src = ct.decay(src)
        dst = ct.decay(dst)
        if dst.is_void() or src == dst:
            return value
        if not ct.assignable(dst, src):
            raise CompileError(f"cannot convert {src!r} to {dst!r}", line)
        if dst.is_float() and not src.is_float():
            return self.b.sitofp(value)
        if not dst.is_float() and src.is_float():
            return self.b.fptosi(value)
        if isinstance(dst, ct.Basic) and dst.kind == "char" \
                and not src.is_float():
            truncated = self.b.trunc(value, 1)
            return self.b.sext(truncated, 1)
        return value

    def gen_condition(self, expr: ast.Expr) -> int:
        value, vtype = self.gen_expr(expr)
        if vtype.is_float():
            return self.b.cmp(ops.FNE, value, self.b.k(0.0))
        return self.b.cmp(ops.NE, value, self.b.k(0))

    # -- lvalues -------------------------------------------------------------------
    def gen_lvalue(self, expr: ast.Expr) -> Tuple[str, int, ct.CType]:
        if isinstance(expr, ast.Ident):
            binding = self.lookup(expr.name)
            if binding is not None:
                return binding
            gtype = self.unit.global_types.get(expr.name)
            if gtype is not None:
                addr = self.b.mov(self.b.gref(expr.name))
                return (_MEM, addr, gtype)
            raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value, vtype = self.gen_expr(expr.expr)
            vtype = ct.decay(vtype)
            if not vtype.is_pointer():
                raise CompileError("dereference of non-pointer", expr.line)
            return (_MEM, self._as_reg(value), vtype.pointee)
        if isinstance(expr, ast.Index):
            base, btype = self.gen_expr(expr.base)
            btype = ct.decay(btype)
            if not btype.is_pointer():
                raise CompileError("indexing non-pointer", expr.line)
            elem = btype.pointee
            index, itype = self.gen_expr(expr.index)
            if not ct.decay(itype).is_integer():
                raise CompileError("array index must be integer", expr.line)
            addr = self.b.gep(base, index, max(elem.size, 1))
            return (_MEM, addr, elem)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base, btype = self.gen_expr(expr.base)
                btype = ct.decay(btype)
                if not (btype.is_pointer()
                        and isinstance(btype.pointee, ct.Struct)):
                    raise CompileError("-> on non-struct-pointer", expr.line)
                struct = btype.pointee
                base_reg = self._as_reg(base)
            else:
                kind, where, vtype = self.gen_lvalue(expr.base)
                if not isinstance(vtype, ct.Struct):
                    raise CompileError(". on non-struct", expr.line)
                if kind != _MEM:
                    raise CompileError("struct in register?", expr.line)
                struct = vtype
                base_reg = where
            if not struct.complete:
                raise CompileError(f"struct {struct.name} is incomplete",
                                   expr.line)
            offset = struct.offsets.get(expr.field)
            if offset is None:
                raise CompileError(
                    f"struct {struct.name} has no field {expr.field!r}",
                    expr.line)
            ftype = struct.field_type(expr.field)
            # A zero-offset field still gets a GEP so instrumentation sees a
            # distinct pointer value; 'safe' is set later by the analysis.
            addr = self.b.gep(base_reg, offset=offset)
            return (_MEM, addr, ftype)
        if isinstance(expr, ast.Cast):
            kind, where, _ = self.gen_lvalue(expr.expr)
            return (kind, where, expr.ctype)
        raise CompileError(
            f"expression is not an lvalue: {type(expr).__name__}", expr.line)

    def _as_reg(self, operand: int) -> int:
        """Force an operand into a register (GEP bases must be registers for
        bounds propagation; cheap mov otherwise)."""
        if operand >= 0:
            return operand
        return self.b.mov(operand)

    def _access_size(self, ctype: ct.CType) -> int:
        size = ctype.size
        return size if size in (1, 2, 4, 8) else 8

    def load_lvalue(self, lv: Tuple[str, int, ct.CType], line: int) -> Tuple[int, ct.CType]:
        kind, where, ctype = lv
        if isinstance(ctype, ct.Array):
            # Arrays decay to a pointer to their first element.
            return where, ct.Pointer(ctype.elem)
        if isinstance(ctype, ct.Struct):
            return where, ctype   # struct "value" = its address (restricted)
        if kind == _REG:
            return where, ctype
        value = self.b.load(where, size=self._access_size(ctype),
                            signed=ctype.is_signed() and ctype.size < 8,
                            is_float=ctype.is_float(),
                            is_pointer=ctype.is_pointer())
        return value, ctype

    def store_lvalue(self, lv: Tuple[str, int, ct.CType], value: int,
                     line: int) -> None:
        kind, where, ctype = lv
        if kind == _REG:
            self.b.mov(value, dest=where)
            return
        self.store_to(where, value, ctype)

    def store_to(self, addr: int, value: int, ctype: ct.CType) -> None:
        self.b.store(value, addr, size=self._access_size(ctype),
                     is_float=ctype.is_float(),
                     is_pointer=ctype.is_pointer())

    # -- expressions --------------------------------------------------------------
    def gen_expr(self, expr: ast.Expr,
                 want_value: bool = True) -> Tuple[int, ct.CType]:
        if isinstance(expr, ast.Num):
            return self.b.k(expr.value & ((1 << 64) - 1)), ct.INT
        if isinstance(expr, ast.Flt):
            return self.b.k(float(expr.value)), ct.DOUBLE
        if isinstance(expr, ast.Str):
            name = self.unit.intern_string(expr.value)
            return self.b.gref(name), ct.Pointer(ct.CHAR)
        if isinstance(expr, ast.Ident):
            if self.lookup(expr.name) is None \
                    and expr.name not in self.unit.global_types:
                if expr.name in self.unit.func_types:
                    return self.b.fref(expr.name), ct.FNPTR
                raise CompileError(f"undeclared identifier {expr.name!r}",
                                   expr.line)
            return self.load_lvalue(self.gen_lvalue(expr), expr.line)
        if isinstance(expr, (ast.Index, ast.Member)):
            return self.load_lvalue(self.gen_lvalue(expr), expr.line)
        if isinstance(expr, ast.SizeofType):
            return self.b.k(expr.ctype.size), ct.UINT
        if isinstance(expr, ast.SizeofExpr):
            ctype = self.type_of(expr.expr)
            return self.b.k(ctype.size), ct.UINT
        if isinstance(expr, ast.Cast):
            value, vtype = self.gen_expr(expr.expr)
            target = expr.ctype
            if target.is_float() and not vtype.is_float():
                return self.b.sitofp(value), target
            if not target.is_float() and vtype.is_float():
                return self.b.fptosi(value), target
            if isinstance(target, ct.Basic) and target.kind == "char":
                truncated = self.b.trunc(value, 1)
                return self.b.sext(truncated, 1), target
            return value, target
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self.gen_incdec(expr.expr, expr.op, postfix=True)
        if isinstance(expr, ast.Bin):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.Cond):
            return self.gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr, want_value)
        raise CompileError(f"unsupported expression {type(expr).__name__}",
                           expr.line)

    def type_of(self, expr: ast.Expr) -> ct.CType:
        """Static type of an expression (for sizeof; no code emitted)."""
        if isinstance(expr, ast.Ident):
            binding = self.lookup(expr.name)
            if binding is not None:
                return binding[2]
            gtype = self.unit.global_types.get(expr.name)
            if gtype is not None:
                return gtype
            raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = ct.decay(self.type_of(expr.expr))
            if isinstance(inner, ct.Pointer):
                return inner.pointee
        if isinstance(expr, ast.Num):
            return ct.INT
        if isinstance(expr, ast.Flt):
            return ct.DOUBLE
        raise CompileError("sizeof of unsupported expression", expr.line)

    def gen_unary(self, expr: ast.Unary) -> Tuple[int, ct.CType]:
        op = expr.op
        if op == "&":
            if isinstance(expr.expr, ast.Ident) \
                    and expr.expr.name in self.unit.func_types \
                    and self.lookup(expr.expr.name) is None:
                return self.b.fref(expr.expr.name), ct.FNPTR
            kind, where, ctype = self.gen_lvalue(expr.expr)
            if kind != _MEM:
                raise CompileError("cannot take address of register variable",
                                   expr.line)
            return where, ct.Pointer(ctype)
        if op == "*":
            return self.load_lvalue(self.gen_lvalue(expr), expr.line)
        if op in ("++", "--"):
            return self.gen_incdec(expr.expr, op, postfix=False)
        value, vtype = self.gen_expr(expr.expr)
        if op == "-":
            if vtype.is_float():
                dest = self.fn.new_reg()
                from repro.ir.instructions import Instr
                self.b.emit(Instr(ops.FNEG, dest=dest, a=value))
                return dest, vtype
            return self.b.sub(self.b.k(0), value), ct.common_arith(vtype, ct.INT)
        if op == "!":
            if vtype.is_float():
                return self.b.cmp(ops.FEQ, value, self.b.k(0.0)), ct.INT
            return self.b.cmp(ops.EQ, value, self.b.k(0)), ct.INT
        if op == "~":
            return self.b.binop(ops.XOR, value, self.b.k((1 << 64) - 1)), vtype
        raise CompileError(f"unsupported unary {op!r}", expr.line)

    def gen_incdec(self, target: ast.Expr, op: str,
                   postfix: bool) -> Tuple[int, ct.CType]:
        lv = self.gen_lvalue(target)
        old, ctype = self.load_lvalue(lv, target.line)
        ctype_d = ct.decay(ctype)
        delta = 1
        if ctype_d.is_pointer():
            delta = max(ctype_d.pointee.size, 1)
        if ctype_d.is_pointer():
            new = self.b.gep(self._as_reg(old),
                             offset=delta if op == "++" else -delta)
        elif ctype_d.is_float():
            binop = ops.FADD if op == "++" else ops.FSUB
            new = self.b.binop(binop, old, self.b.k(1.0))
        else:
            binop = ops.ADD if op == "++" else ops.SUB
            new = self.b.binop(binop, old, self.b.k(1))
        self.store_lvalue(lv, new, target.line)
        return (old if postfix else new), ctype

    def gen_binary(self, expr: ast.Bin) -> Tuple[int, ct.CType]:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_logical(expr)
        left, ltype = self.gen_expr(expr.left)
        right, rtype = self.gen_expr(expr.right)
        ltype = ct.decay(ltype)
        rtype = ct.decay(rtype)
        # Pointer arithmetic.
        if op in ("+", "-") and ltype.is_pointer() and rtype.is_integer():
            scale = max(ltype.pointee.size, 1)
            if op == "-":
                right = self.b.sub(self.b.k(0), right)
            return self.b.gep(self._as_reg(left), right, scale), ltype
        if op == "+" and ltype.is_integer() and rtype.is_pointer():
            scale = max(rtype.pointee.size, 1)
            return self.b.gep(self._as_reg(right), left, scale), rtype
        if op == "-" and ltype.is_pointer() and rtype.is_pointer():
            diff = self.b.sub(left, right)
            scale = max(ltype.pointee.size, 1)
            if scale > 1:
                diff = self.b.binop(ops.SDIV, diff, self.b.k(scale))
            return diff, ct.INT
        # Comparisons.
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if ltype.is_float() or rtype.is_float():
                left = self.convert(left, ltype, ct.DOUBLE, expr.line)
                right = self.convert(right, rtype, ct.DOUBLE, expr.line)
                return self.b.cmp(_CMP_FLOAT[op], left, right), ct.INT
            if op == "==":
                return self.b.cmp(ops.EQ, left, right), ct.INT
            if op == "!=":
                return self.b.cmp(ops.NE, left, right), ct.INT
            unsigned = (ltype == ct.UINT or rtype == ct.UINT
                        or ltype.is_pointer() or rtype.is_pointer())
            table = _CMP_UNSIGNED if unsigned else _CMP_SIGNED
            return self.b.cmp(table[op], left, right), ct.INT
        # Arithmetic / bitwise.
        common = ct.common_arith(ltype if ltype.is_arith() else ct.INT,
                                 rtype if rtype.is_arith() else ct.INT)
        if common.is_float():
            left = self.convert(left, ltype, ct.DOUBLE, expr.line)
            right = self.convert(right, rtype, ct.DOUBLE, expr.line)
            if op not in _FLOAT_BIN:
                raise CompileError(f"bad float operator {op!r}", expr.line)
            return self.b.binop(_FLOAT_BIN[op], left, right), ct.DOUBLE
        unsigned = common == ct.UINT
        if op == "/":
            return self.b.binop(ops.UDIV if unsigned else ops.SDIV,
                                left, right), common
        if op == "%":
            return self.b.binop(ops.UREM if unsigned else ops.SREM,
                                left, right), common
        if op == ">>":
            return self.b.binop(ops.LSHR if unsigned else ops.ASHR,
                                left, right), common
        if op in _INT_BIN:
            return self.b.binop(_INT_BIN[op], left, right), common
        raise CompileError(f"unsupported operator {op!r}", expr.line)

    def gen_logical(self, expr: ast.Bin) -> Tuple[int, ct.CType]:
        result = self.fn.new_reg("logic")
        right_label = self.label("logic_rhs")
        end_label = self.label("logic_end")
        left = self.gen_condition(expr.left)
        self.b.mov(left, dest=result)
        if expr.op == "&&":
            self.b.br(left, right_label, end_label)
        else:
            self.b.br(left, end_label, right_label)
        self.start_block(right_label)
        right = self.gen_condition(expr.right)
        self.b.mov(right, dest=result)
        self.b.jmp(end_label)
        self.start_block(end_label)
        return result, ct.INT

    def gen_ternary(self, expr: ast.Cond) -> Tuple[int, ct.CType]:
        result = self.fn.new_reg("cond")
        then_label = self.label("condt")
        else_label = self.label("condf")
        end_label = self.label("condend")
        cond = self.gen_condition(expr.cond)
        self.b.br(cond, then_label, else_label)
        self.start_block(then_label)
        tval, ttype = self.gen_expr(expr.then)
        self.b.mov(tval, dest=result)
        self.b.jmp(end_label)
        self.start_block(else_label)
        fval, ftype = self.gen_expr(expr.other)
        self.b.mov(fval, dest=result)
        self.b.jmp(end_label)
        self.start_block(end_label)
        ttype = ct.decay(ttype)
        return result, ttype if not ttype.is_void() else ct.decay(ftype)

    def gen_assign(self, expr: ast.Assign) -> Tuple[int, ct.CType]:
        lv = self.gen_lvalue(expr.target)
        ctype = lv[2]
        if expr.op == "=":
            value, vtype = self.gen_expr(expr.value)
            value = self.convert(value, vtype, ctype, expr.line)
            self.store_lvalue(lv, value, expr.line)
            return value, ctype
        # Compound assignment: rewrite as target = target op value.
        binop = ast.Bin(expr.op[:-1], expr.target, expr.value, expr.line)
        value, vtype = self.gen_binary(binop)
        value = self.convert(value, vtype, ctype, expr.line)
        self.store_lvalue(lv, value, expr.line)
        return value, ctype

    def gen_call(self, expr: ast.Call, want_value: bool) -> Tuple[int, ct.CType]:
        args: List[int] = []
        # Direct call by name?
        if isinstance(expr.callee, ast.Ident) \
                and self.lookup(expr.callee.name) is None:
            name = expr.callee.name
            if name in self.unit.func_types:
                ret, param_types = self.unit.func_types[name]
                if len(expr.args) != len(param_types):
                    raise CompileError(
                        f"{name} expects {len(param_types)} args, "
                        f"got {len(expr.args)}", expr.line)
                for arg, ptype in zip(expr.args, param_types):
                    value, vtype = self.gen_expr(arg)
                    args.append(self.convert(value, vtype, ptype, expr.line))
                dest = self.b.call(name, args,
                                   want_result=not ret.is_void())
                return (dest if dest is not None else self.b.k(0)), ret
            if name in BUILTINS:
                for arg in expr.args:
                    value, _ = self.gen_expr(arg)
                    args.append(value)
                ret = BUILTINS[name]
                dest = self.b.call(name, args, want_result=not ret.is_void())
                return (dest if dest is not None else self.b.k(0)), ret
            raise CompileError(f"call to unknown function {name!r}", expr.line)
        # Indirect call through a function-pointer value.
        callee, ctype = self.gen_expr(expr.callee)
        for arg in expr.args:
            value, _ = self.gen_expr(arg)
            args.append(value)
        dest = self.b.call(callee, args, want_result=True)
        return dest, ct.INT


def compile_unit(unit: ast.TranslationUnit, structs: Dict[str, ct.Struct],
                 name: str = "minic") -> Module:
    return UnitCodegen(unit, structs, name).run()
