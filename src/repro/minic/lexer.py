"""MiniC lexer.

MiniC is the C-like language the reproduction's workloads are written in
(the paper's "unmodified legacy applications").  The lexer produces a flat
token stream with line/column positions for error reporting.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import CompileError

KEYWORDS = {
    "void", "char", "int", "uint", "double", "struct", "fnptr",
    "if", "else", "while", "for", "do", "break", "continue", "return",
    "sizeof", "const", "static",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


class Token(NamedTuple):
    kind: str      # 'kw', 'ident', 'int', 'float', 'str', 'char', 'op', 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens, raising CompileError on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def position() -> tuple:
        return line, i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", *position())
            for j in range(i, end):
                if source[j] == "\n":
                    line += 1
                    line_start = j + 1
            i = end + 2
            continue
        ln, col = position()
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("int", int(source[i:j], 16), ln, col))
                i = j
                continue
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    is_float = True
                j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", float(text), ln, col))
            else:
                tokens.append(Token("int", int(text), ln, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, ln, col))
            i = j
            continue
        if ch == '"':
            value = bytearray()
            j = i + 1
            while j < n and source[j] != '"':
                c = source[j]
                if c == "\\":
                    j += 1
                    if j >= n:
                        break
                    esc = source[j]
                    if esc == "x":
                        value.append(int(source[j + 1:j + 3], 16))
                        j += 2
                    elif esc in _ESCAPES:
                        value.append(_ESCAPES[esc])
                    else:
                        raise CompileError(f"bad escape \\{esc}", ln, col)
                elif c == "\n":
                    raise CompileError("newline in string literal", ln, col)
                else:
                    value.append(ord(c))
                j += 1
            if j >= n:
                raise CompileError("unterminated string literal", ln, col)
            tokens.append(Token("str", bytes(value), ln, col))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                esc = source[j + 1]
                if esc == "x":
                    value = int(source[j + 2:j + 4], 16)
                    j += 4
                elif esc in _ESCAPES:
                    value = _ESCAPES[esc]
                    j += 2
                else:
                    raise CompileError(f"bad escape \\{esc}", ln, col)
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise CompileError("unterminated char literal", ln, col)
            if j >= n or source[j] != "'":
                raise CompileError("unterminated char literal", ln, col)
            tokens.append(Token("char", value, ln, col))
            i = j + 1
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, i):
                tokens.append(Token("op", operator, ln, col))
                i += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", ln, col)
    tokens.append(Token("eof", None, line, 1))
    return tokens
