"""MiniC abstract syntax tree nodes.

Plain data holders: the parser builds them, the code generator walks them.
Every node carries the source line for error messages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.minic.ctypes import CType


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# -- expressions ---------------------------------------------------------------
class Expr(Node):
    __slots__ = ()


class Num(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class Flt(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int = 0):
        super().__init__(line)
        self.value = value


class Str(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bytes, line: int = 0):
        super().__init__(line)
        self.value = value


class Ident(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """op in: - ! ~ * & ++ -- (prefix)."""

    __slots__ = ("op", "expr")

    def __init__(self, op: str, expr: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.expr = expr


class Postfix(Expr):
    """op in: ++ -- (postfix)."""

    __slots__ = ("op", "expr")

    def __init__(self, op: str, expr: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.expr = expr


class Bin(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """op in: = += -= *= /= %= &= |= ^= <<= >>="""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Cond(Expr):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class Call(Expr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: Expr, args: Sequence[Expr], line: int = 0):
        super().__init__(line)
        self.callee = callee
        self.args = list(args)


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    __slots__ = ("base", "field", "arrow")

    def __init__(self, base: Expr, field: str, arrow: bool, line: int = 0):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow


class SizeofType(Expr):
    __slots__ = ("ctype",)

    def __init__(self, ctype: CType, line: int = 0):
        super().__init__(line)
        self.ctype = ctype


class SizeofExpr(Expr):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


class Cast(Expr):
    __slots__ = ("ctype", "expr")

    def __init__(self, ctype: CType, expr: Expr, line: int = 0):
        super().__init__(line)
        self.ctype = ctype
        self.expr = expr


class InitList(Expr):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr], line: int = 0):
        super().__init__(line)
        self.items = list(items)


# -- statements -----------------------------------------------------------------
class Stmt(Node):
    __slots__ = ()


class Decl(Stmt):
    __slots__ = ("name", "ctype", "init")

    def __init__(self, name: str, ctype: CType, init: Optional[Expr],
                 line: int = 0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], line: int = 0):
        super().__init__(line)
        self.stmts = list(stmts)


class If(Stmt):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Stmt, other: Optional[Stmt],
                 line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, line: int = 0):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt, line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# -- top level --------------------------------------------------------------------
class FuncDef(Node):
    __slots__ = ("name", "ret", "params", "body")

    def __init__(self, name: str, ret: CType,
                 params: List[Tuple[str, CType]], body: Block, line: int = 0):
        super().__init__(line)
        self.name = name
        self.ret = ret
        self.params = params
        self.body = body


class GlobalDecl(Node):
    __slots__ = ("name", "ctype", "init", "is_const")

    def __init__(self, name: str, ctype: CType, init: Optional[Expr],
                 is_const: bool = False, line: int = 0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.is_const = is_const


class TranslationUnit(Node):
    __slots__ = ("decls",)

    def __init__(self, decls: Sequence[Node]):
        super().__init__(0)
        self.decls = list(decls)
