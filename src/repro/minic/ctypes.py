"""MiniC type system.

Deliberately small C dialect: ``char`` is a signed byte, ``int``/``uint``
are 64-bit (the workloads don't depend on 32-bit wraparound, and 64-bit
ints are what tagged pointers get cast to — paper §3.2 "Type casts"),
``double`` is IEEE f64, ``fnptr`` is an opaque function pointer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.memory.layout import align_up


class CType:
    """Base class; every type knows its size and alignment."""

    size: int = 0
    align: int = 1

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_arith(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_void(self) -> bool:
        return False

    def is_signed(self) -> bool:
        return False


class Basic(CType):
    __slots__ = ("kind", "size", "align", "signed")

    def __init__(self, kind: str, size: int, signed: bool):
        self.kind = kind
        self.size = size
        self.align = size if size else 1
        self.signed = signed

    def is_integer(self) -> bool:
        return self.kind in ("char", "int", "uint", "fnptr")

    def is_float(self) -> bool:
        return self.kind == "double"

    def is_void(self) -> bool:
        return self.kind == "void"

    def is_signed(self) -> bool:
        return self.signed

    def __eq__(self, other) -> bool:
        return isinstance(other, Basic) and other.kind == self.kind

    def __hash__(self) -> int:
        return hash(self.kind)

    def __repr__(self) -> str:
        return self.kind


VOID = Basic("void", 0, False)
CHAR = Basic("char", 1, True)
INT = Basic("int", 8, True)
UINT = Basic("uint", 8, False)
DOUBLE = Basic("double", 8, True)
FNPTR = Basic("fnptr", 8, False)


class Pointer(CType):
    __slots__ = ("pointee",)
    size = 8
    align = 8

    def __init__(self, pointee: CType):
        self.pointee = pointee

    def is_pointer(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, Pointer) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class Array(CType):
    __slots__ = ("elem", "count", "size", "align")

    def __init__(self, elem: CType, count: int):
        if count <= 0:
            raise CompileError(f"array of non-positive size {count}")
        self.elem = elem
        self.count = count
        self.size = elem.size * count
        self.align = elem.align

    def __eq__(self, other) -> bool:
        return (isinstance(other, Array) and other.elem == self.elem
                and other.count == self.count)

    def __hash__(self) -> int:
        return hash(("arr", self.elem, self.count))

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.count}]"


class Struct(CType):
    """A named struct; fields are laid out with natural alignment."""

    __slots__ = ("name", "fields", "offsets", "size", "align", "complete")

    def __init__(self, name: str):
        self.name = name
        self.fields: List[Tuple[str, CType]] = []
        self.offsets: Dict[str, int] = {}
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, fields: List[Tuple[str, CType]]) -> None:
        if self.complete:
            raise CompileError(f"struct {self.name} redefined")
        offset = 0
        align = 1
        for fname, ftype in fields:
            if ftype.size == 0:
                raise CompileError(
                    f"struct {self.name}: field {fname} has incomplete type")
            offset = align_up(offset, ftype.align)
            self.offsets[fname] = offset
            offset += ftype.size
            align = max(align, ftype.align)
        self.fields = list(fields)
        self.size = align_up(max(offset, 1), align)
        self.align = align
        self.complete = True

    def field_type(self, name: str) -> CType:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise CompileError(f"struct {self.name} has no field {name!r}")

    def __repr__(self) -> str:
        return f"struct {self.name}"


def decay(ctype: CType) -> CType:
    """Array-to-pointer decay."""
    if isinstance(ctype, Array):
        return Pointer(ctype.elem)
    return ctype


def common_arith(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions (simplified)."""
    if a.is_float() or b.is_float():
        return DOUBLE
    if a == UINT or b == UINT:
        return UINT
    return INT


def assignable(dst: CType, src: CType) -> bool:
    """Whether ``src`` implicitly converts to ``dst`` (lenient, C-style)."""
    dst = decay(dst)
    src = decay(src)
    if dst == src:
        return True
    if dst.is_arith() and src.is_arith():
        return True
    if dst.is_pointer() and src.is_pointer():
        return True   # all pointer casts are implicit, like messy real C
    if dst.is_pointer() and src.is_integer():
        return True   # int->ptr (the paper's tagged-pointer casts)
    if dst.is_integer() and src.is_pointer():
        return True   # ptr->int
    if dst == FNPTR and (src == FNPTR or src.is_pointer() or src.is_integer()):
        return True
    if src == FNPTR and (dst.is_pointer() or dst.is_integer()):
        return True
    return False
