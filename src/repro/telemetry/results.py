"""Machine-readable results emission for the perf trajectory.

``benchmarks/results/*.txt`` holds the human-readable paper tables; this
module adds the JSON twin so overheads can be tracked across PRs by
tooling instead of eyeballs.  Everything funnels through
:func:`to_jsonable`, which flattens the harness's result objects (tuple
keys, ``RunResult``, NaN) into strict JSON.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, Optional

#: Default sink, matching the .txt reports.
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] \
    / "benchmarks" / "results"

#: Emitted-format version; bump on breaking layout changes.
SCHEMA_VERSION = 1


def to_jsonable(obj):
    """Recursively convert harness objects into strict-JSON values.

    * dict keys become strings (tuples joined with ``/``),
    * NaN/inf floats become None (strict JSON has no NaN),
    * sets become sorted lists, bytes decode as latin-1,
    * objects with an ``as_dict``/``snapshot`` method use it; other
      objects fall back to their public ``__dict__``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(key, tuple):
                key = "/".join(str(k) for k in key)
            out[str(key)] = to_jsonable(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    if isinstance(obj, bytes):
        return obj.decode("latin-1")
    for method in ("as_dict", "snapshot", "stats"):
        fn = getattr(obj, method, None)
        if callable(fn):
            try:
                return to_jsonable(fn())
            except TypeError:
                continue
    public = {k: v for k, v in getattr(obj, "__dict__", {}).items()
              if not k.startswith("_")}
    if public:
        return to_jsonable(public)
    return repr(obj)


def result_document(name: str, payload, meta: Optional[Dict] = None) -> Dict:
    """Wrap ``payload`` in the versioned result envelope."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "data": to_jsonable(payload),
    }
    if meta:
        doc["meta"] = to_jsonable(meta)
    return doc


def emit_result(name: str, payload, meta: Optional[Dict] = None,
                directory: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Write ``benchmarks/results/<name>.json``; returns the path."""
    directory = pathlib.Path(directory) if directory else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    write_json(path, result_document(name, payload, meta))
    return path


def write_json(path, document) -> None:
    """Deterministic strict-JSON dump (sorted keys, no NaN)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
