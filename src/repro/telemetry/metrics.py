"""Metrics primitives: counters, gauges, histograms and their registry.

The registry is the pull side of the telemetry subsystem: components
(the VM, scheme runtimes, the EPC/cache model, NetworkSim, the chaos
harness) publish named metrics into it while a run executes, and the
harness snapshots the whole registry into machine-readable JSON at the
end.  Everything is deterministic: histogram bucket boundaries are fixed
at creation time and all values derive from simulated events, never wall
clocks — two identical seeded runs produce byte-identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union


def exponential_bounds(start: int = 1, factor: int = 2,
                       count: int = 24) -> Tuple[int, ...]:
    """Deterministic geometric bucket boundaries: start * factor**i.

    The default (1, 2, 4, ..., 2**23) covers everything from single
    instructions to multi-million-cycle requests.
    """
    if start <= 0 or factor <= 1 or count <= 0:
        raise ValueError("exponential_bounds needs start>0, factor>1, count>0")
    bounds: List[int] = []
    value = start
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default boundaries shared by every histogram that does not pick its own.
DEFAULT_BOUNDS = exponential_bounds()


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-observed value (e.g. resident pages, metadata bytes)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram.

    ``bounds`` are ascending upper-inclusive bucket edges; observations
    land in the first bucket whose edge is >= the value, with one
    overflow bucket past the last edge.  Bucket ``i`` therefore counts
    values ``v`` with ``bounds[i-1] < v <= bounds[i]``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, name: str, bounds: Optional[Sequence[int]] = None):
        edges = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name!r}: bounds must be strictly "
                             f"ascending and non-empty")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: Union[int, float]) -> None:
        # First edge >= value, i.e. buckets are upper-inclusive; values
        # past the last edge land in the overflow bucket.
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value

    def percentile_bucket(self, q: float) -> Union[int, float]:
        """Upper edge of the bucket holding the q-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) \
                    else float("inf")
        return float("inf")

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics; names are globally unique."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name, *args)
        elif not isinstance(metric, factory):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[int]] = None) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds)
        elif not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted plain-dict dump of every metric."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
