"""``repro.telemetry`` — tracing, metrics, and overhead attribution.

Three cooperating pieces (see DESIGN.md, "Telemetry & attribution"):

* :class:`~repro.telemetry.metrics.MetricsRegistry` — named counters,
  gauges and deterministic-bucket histograms published by the VM, the
  scheme runtimes, the EPC/cache model, NetworkSim and the chaos harness;
* :class:`~repro.telemetry.tracer.SpanTracer` — per-function, per-native
  and per-request spans on the simulated instruction clock, exportable as
  Chrome ``trace_event`` JSON or a text flame table;
* :mod:`~repro.telemetry.profiler` — per-function counter attribution
  and the scheme-vs-native overhead decomposition (Table 3's
  check / cache / EPC-fault cycle split).

Telemetry is off by default and zero-cost when off: no VM, enclave or
network hot path does telemetry work unless a ``Telemetry`` object is
attached, and attaching one never changes simulated counters.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.core import Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)
from repro.telemetry.profiler import (
    ATTRIB_FIELDS,
    FunctionProfile,
    attribute_overhead,
    flame_rows,
)
from repro.telemetry.results import emit_result, to_jsonable, write_json
from repro.telemetry.tracer import SpanTracer

#: Process-wide default telemetry, set by CLI flags (``--trace-out``);
#: the harness falls back to it when no explicit Telemetry is passed.
_default: Optional[Telemetry] = None


def set_default(telemetry: Optional[Telemetry]) -> None:
    global _default
    _default = telemetry


def get_default() -> Optional[Telemetry]:
    return _default


__all__ = [
    "ATTRIB_FIELDS",
    "Counter",
    "FunctionProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
    "Telemetry",
    "attribute_overhead",
    "emit_result",
    "exponential_bounds",
    "flame_rows",
    "get_default",
    "set_default",
    "to_jsonable",
    "write_json",
]
