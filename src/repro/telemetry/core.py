"""The ``Telemetry`` object: registry + tracer + profiler in one handle.

Telemetry is strictly opt-in and observation-only: a VM created without
one (the default) contains no telemetry code on its hot paths beyond a
single ``is None`` test per dispatch segment, and an attached Telemetry
never charges simulated counters — so enabling it cannot change any
benchmark number, only record where the numbers come from.

A single Telemetry may observe several runs back to back (the
``--trace-out`` flag path): each attached VM gets its own ``pid`` lane
in the exported Chrome trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import BoundsViolation
from repro.telemetry.metrics import MetricsRegistry, exponential_bounds
from repro.telemetry.profiler import FunctionProfile, flame_rows
from repro.telemetry.tracer import SpanTracer

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.vm.machine import VM

#: Cycle-ish bucket edges for request/span durations (instructions).
SPAN_BOUNDS = exponential_bounds(start=16, factor=2, count=22)


class Telemetry:
    """One observability context: metrics, spans, per-function profile.

    ``enabled=False`` constructs a permanently inert handle: attaching it
    to a VM is a no-op and the VM keeps its telemetry-free fast paths.
    """

    def __init__(self, enabled: bool = True, max_events: int = 200_000):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(max_events=max_events)
        self.functions = FunctionProfile()
        self._runs = 0
        self._open_requests: Dict[tuple, tuple] = {}

    # -- lifecycle -------------------------------------------------------
    def attach_vm(self, vm: "VM") -> None:
        """Hook this telemetry into a VM and its enclave (one pid lane)."""
        self._runs += 1
        self.tracer.pid = self._runs
        vm.enclave.attach_telemetry(self)

    def label_run(self, name: str) -> None:
        """Name the current run's process lane in the trace."""
        self.tracer.label_process(name)

    def fresh_functions(self) -> FunctionProfile:
        """Swap in an empty per-function profile (per-run attribution)."""
        self.functions = FunctionProfile()
        return self.functions

    # -- VM hooks --------------------------------------------------------
    def function_enter(self, name: str, tid: int, ts: int) -> None:
        self.functions.enter(name)
        self.tracer.begin(tid, name, ts, cat="function")

    def function_exit(self, name: str, tid: int, ts: int) -> None:
        self.tracer.end(tid, name, ts)

    def native_call(self, name: str, tid: int, ts0: int, ts1: int) -> None:
        self.registry.counter(f"vm.native.{name}").inc()
        self.tracer.complete(tid, name, ts0, ts1, cat="native")

    def request_boundary(self, tid: int, ts: int, conn: int,
                         nbytes: int) -> None:
        """A request landed on ``net_recv``: close the previous request
        span on this thread and open the next one."""
        key = (self.tracer.pid, tid)
        open_span = self._open_requests.get(key)
        if open_span is not None:
            ts0, conn0, bytes0 = open_span
            self._finish_request(tid, ts0, ts, conn0, bytes0)
        self._open_requests[key] = (ts, conn, nbytes)
        self.registry.counter("net.requests_received").inc()
        self.registry.histogram("net.request_bytes").observe(max(1, nbytes))

    def _finish_request(self, tid: int, ts0: int, ts1: int, conn: int,
                        nbytes: int) -> None:
        self.tracer.complete(tid, "request", ts0, ts1, cat="request",
                             args={"conn": conn, "bytes": nbytes})
        self.registry.histogram("request.instructions",
                                SPAN_BOUNDS).observe(max(1, ts1 - ts0))

    def request_dropped(self, tid: int, ts: int, depth: int) -> None:
        """Drop-request recovery rolled a thread back to its checkpoint."""
        self.registry.counter("vm.requests_dropped").inc()
        self.tracer.unwind(tid, depth, ts)
        self.tracer.instant("request_dropped", ts, tid, cat="recovery")

    # -- enclave / scheme hooks ------------------------------------------
    def epc_fault(self, page: int, ts: int, resident: int) -> None:
        self.registry.counter("epc.faults").inc()
        self.registry.histogram("epc.resident_pages").observe(
            max(1, resident))
        self.tracer.instant("epc_fault", ts, 0, cat="epc",
                            args={"page": page})

    def epc_flush(self, evicted: int) -> None:
        self.registry.counter("epc.flushes").inc()
        self.registry.counter("epc.flush_evictions").inc(evicted)
        self.tracer.instant("epc_flush", self.tracer.last_ts, 0, cat="epc",
                            args={"evicted": evicted})

    def violation(self, scheme: str, err: BoundsViolation, ts: int,
                  tid: int = 0) -> None:
        self.registry.counter(f"violations.{scheme}").inc()
        self.tracer.instant("bounds_violation", ts, tid, cat="violation",
                            args={"scheme": scheme,
                                  "address": err.address,
                                  "access": getattr(err, "access", None)})

    # -- fleet hooks ------------------------------------------------------
    def fleet_event(self, kind: str, wid: int, tick: int,
                    detail: str = "") -> None:
        """Lifecycle event from the fleet supervisor/balancer
        (crash/restart/dead/breaker-open/watchdog)."""
        self.registry.counter(f"fleet.{kind}").inc()
        self.tracer.instant(f"fleet_{kind}", self.tracer.last_ts, wid,
                            cat="fleet",
                            args={"worker": wid, "tick": tick,
                                  "detail": detail})

    def overload_event(self, kind: str, tick: int,
                       priority: str = "") -> None:
        """Admission/brownout event from the overload layer
        (reject-deadline/reject-shed/brownout level changes)."""
        self.registry.counter(f"overload.{kind}").inc()
        self.tracer.instant(f"overload_{kind}", self.tracer.last_ts, 0,
                            cat="overload",
                            args={"tick": tick, "priority": priority})

    # -- run-end collection ----------------------------------------------
    def collect_counters(self, snapshot: Dict[str, int],
                         prefix: str = "sgx") -> None:
        """Publish a final PerfCounters snapshot as gauges."""
        for name, value in snapshot.items():
            self.registry.gauge(f"{prefix}.{name}").set(value)

    def fastpath_hits(self, stats: Dict[str, int]) -> None:
        """Publish the VM's dynamic superinstruction hit counts as the
        ``vm.fastpath.<kind>`` counter family.  Zero-hit kinds are not
        published: a reference-interpreter run (or a scheme that fuses
        nothing) leaves the registry without fastpath entries, so counter
        parity between the two interpreters stays a hard invariant."""
        for kind, hits in stats.items():
            if hits:
                self.registry.counter(f"vm.fastpath.{kind}").inc(hits)

    # -- export ----------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """Chrome trace_event export; always a valid document, even for
        an empty or overflowed span buffer.  Publishes the overflow as a
        ``trace.dropped_events`` counter so a truncated trace is visible
        in the metrics snapshot, not just inside the trace file."""
        dropped = self.tracer.dropped
        if dropped:
            counter = self.registry.counter("trace.dropped_events")
            if dropped > counter.value:
                counter.inc(dropped - counter.value)
        return self.tracer.chrome_trace()

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()

    def flame_table(self, limit: int = 20) -> str:
        """Compact text flame table over the current function profile."""
        from repro.harness import report
        rows = flame_rows(self.functions.snapshot(), limit=limit)
        return report.series_table(
            "Flame table (flat per-function profile, hottest first)",
            ["function", "calls", "self_instr", "%instr", "cycles",
             "checks", "llc_miss", "epc_faults"], rows)
