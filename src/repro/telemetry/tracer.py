"""Span/event tracer with Chrome ``trace_event`` export.

Spans are measured on the simulated instruction clock (retired
instructions so far), which makes traces deterministic: two identical
seeded runs emit byte-identical event streams.  Events are stored in the
Chrome trace-event dialect directly — ``ph`` "X" for complete spans,
"i" for instants, "M" for metadata — so the export is a plain
``json.dump`` loadable by ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SpanTracer:
    """Nested spans + instant events on a deterministic clock.

    ``pid`` identifies the current run (one simulated process per VM);
    the attach path bumps it so traces from several runs merge into one
    timeline with separate process lanes.  ``max_events`` bounds memory:
    past the cap new events are counted in ``dropped`` instead of stored
    (open-span bookkeeping keeps working so nesting stays consistent).
    """

    def __init__(self, max_events: int = 200_000):
        self.max_events = max_events
        self.events: List[Dict[str, object]] = []
        self.dropped = 0
        self.pid = 1
        self.last_ts = 0
        #: Max timestamp seen per process lane: open spans of a crashed
        #: run must close at *that run's* end, not at the global max a
        #: later, longer run advanced (which inflated crash durations).
        self._pid_last_ts: Dict[int, int] = {}
        self._stacks: Dict[Tuple[int, int], List[Tuple[str, int, str]]] = {}

    # ------------------------------------------------------------------
    def _emit(self, event: Dict[str, object]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def _note_ts(self, ts: int) -> None:
        if ts > self.last_ts:
            self.last_ts = ts
        if ts > self._pid_last_ts.get(self.pid, 0):
            self._pid_last_ts[self.pid] = ts

    # ------------------------------------------------------------------
    def begin(self, tid: int, name: str, ts: int,
              cat: str = "function") -> None:
        """Open a span; closed by the matching :meth:`end`."""
        self._note_ts(ts)
        self._stacks.setdefault((self.pid, tid), []).append((name, ts, cat))

    def end(self, tid: int, name: str, ts: int) -> None:
        """Close the innermost open span named ``name``.

        Mismatched names (e.g. after a request rollback discarded frames)
        close the intervening orphans at the same timestamp, keeping the
        trace well-nested.
        """
        self._note_ts(ts)
        stack = self._stacks.get((self.pid, tid))
        if not stack:
            return
        names = [entry[0] for entry in stack]
        if name not in names:
            return
        while stack:
            open_name, ts0, cat = stack.pop()
            self._emit({"name": open_name, "cat": cat, "ph": "X",
                        "ts": ts0, "dur": max(0, ts - ts0),
                        "pid": self.pid, "tid": tid})
            if open_name == name:
                return

    def unwind(self, tid: int, depth: int, ts: int) -> None:
        """Close open spans until at most ``depth`` remain (rollback)."""
        self._note_ts(ts)
        stack = self._stacks.get((self.pid, tid))
        if not stack:
            return
        while len(stack) > depth:
            open_name, ts0, cat = stack.pop()
            self._emit({"name": open_name, "cat": cat, "ph": "X",
                        "ts": ts0, "dur": max(0, ts - ts0),
                        "pid": self.pid, "tid": tid})

    def complete(self, tid: int, name: str, ts0: int, ts1: int,
                 cat: str = "native",
                 args: Optional[Dict[str, object]] = None) -> None:
        """Record a closed span directly (native calls, requests)."""
        self._note_ts(ts1)
        event: Dict[str, object] = {
            "name": name, "cat": cat, "ph": "X", "ts": ts0,
            "dur": max(0, ts1 - ts0), "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    def instant(self, name: str, ts: int, tid: int = 0,
                cat: str = "event",
                args: Optional[Dict[str, object]] = None) -> None:
        self._note_ts(ts)
        event: Dict[str, object] = {
            "name": name, "cat": cat, "ph": "i", "ts": ts, "s": "t",
            "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    def label_process(self, name: str) -> None:
        """Name the current run's lane in the trace viewer."""
        self._emit({"name": "process_name", "ph": "M", "ts": 0,
                    "pid": self.pid, "tid": 0,
                    "args": {"name": name}})

    # ------------------------------------------------------------------
    def close_open_spans(self) -> None:
        """Flush still-open spans (crashed runs), each at its own
        process lane's last timestamp — deterministic, and a short
        crashed run is not stretched to the end of a longer one."""
        for (pid, tid), stack in self._stacks.items():
            while stack:
                open_name, ts0, cat = stack.pop()
                end_ts = self._pid_last_ts.get(pid, ts0)
                self._emit({"name": open_name, "cat": cat, "ph": "X",
                            "ts": ts0,
                            "dur": max(0, end_ts - ts0),
                            "pid": pid, "tid": tid})

    def chrome_trace(self) -> Dict[str, object]:
        """The ``chrome://tracing``-loadable document."""
        self.close_open_spans()
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "retired simulated instructions",
                "dropped_events": self.dropped,
            },
        }
