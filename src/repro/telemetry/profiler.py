"""Per-function counter attribution and scheme-vs-native overhead diffs.

This is the Table-3 machinery: the paper explains each scheme's slowdown
as *extra instructions* (the checks themselves), *extra cache misses*
(metadata traffic breaking locality) and *EPC page faults* (metadata
blowing the enclave page cache).  :class:`FunctionProfile` accumulates a
flat per-function profile of the raw events while the VM runs;
:func:`attribute_overhead` then diffs an instrumented run against its
native baseline and prices each delta with the run's cost model, giving
a per-function and per-run cycle decomposition.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sgx.counters import CostModel, PerfCounters

#: Events attributed per function (a subset of PerfCounters: the ones the
#: paper's analysis decomposes overheads into).
ATTRIB_FIELDS: Tuple[str, ...] = (
    "instructions", "branches", "calls", "loads", "stores",
    "l1_accesses", "l1_misses", "llc_misses", "epc_faults",
    "mee_decrypts", "bounds_checks",
)

_N_FIELDS = len(ATTRIB_FIELDS)


class FunctionProfile:
    """Flat (self-time) per-function accumulation of counter deltas.

    The VM calls :meth:`begin` when it starts executing a segment of a
    function and :meth:`end` when the segment finishes (call, return,
    quantum expiry); the delta between the two counter snapshots is
    credited to that function.  Work natives perform on a function's
    behalf lands in the calling function, matching how a sampling
    profiler attributes wrapper time.
    """

    __slots__ = ("_acc", "calls")

    def __init__(self) -> None:
        self._acc: Dict[str, list] = {}
        self.calls: Dict[str, int] = {}

    def enter(self, name: str) -> None:
        self.calls[name] = self.calls.get(name, 0) + 1

    def begin(self, counters: PerfCounters) -> tuple:
        return (counters.instructions, counters.branches, counters.calls,
                counters.loads, counters.stores, counters.l1_accesses,
                counters.l1_misses, counters.llc_misses,
                counters.epc_faults, counters.mee_decrypts,
                counters.bounds_checks)

    def end(self, name: str, counters: PerfCounters, snap: tuple) -> None:
        acc = self._acc.get(name)
        if acc is None:
            acc = self._acc[name] = [0] * _N_FIELDS
        now = self.begin(counters)
        for i in range(_N_FIELDS):
            acc[i] += now[i] - snap[i]

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for name in sorted(self._acc):
            acc = self._acc[name]
            row = dict(zip(ATTRIB_FIELDS, acc))
            row["calls_entered"] = self.calls.get(name, 0)
            out[name] = row
        return out


# ---------------------------------------------------------------------------
def function_cycles(row: Dict[str, int], cost: CostModel,
                    enclave: bool = True) -> int:
    """Cycles implied by one function's counter row under ``cost``."""
    counters = PerfCounters()
    for field in ATTRIB_FIELDS:
        setattr(counters, field, row.get(field, 0))
    return cost.cycles_for(counters, enclave)


def _decompose(delta: Dict[str, int], cost: CostModel,
               enclave: bool) -> Dict[str, int]:
    """Price a counter delta into the paper's three overhead buckets."""
    d_l1_hits = ((delta["l1_accesses"] - delta["l1_misses"]))
    d_llc_hits = delta["l1_misses"] - delta["llc_misses"]
    check_cycles = (delta["instructions"] * cost.instruction
                    + delta["branches"] * cost.branch)
    cache_cycles = (d_l1_hits * cost.l1_hit
                    + d_llc_hits * cost.llc_hit
                    + delta["llc_misses"] * cost.dram)
    if enclave:
        cache_cycles += delta["llc_misses"] * cost.mee_decrypt
    epc_cycles = delta["epc_faults"] * cost.epc_fault
    return {
        "check_cycles": check_cycles,
        "cache_cycles": cache_cycles,
        "epc_fault_cycles": epc_cycles,
        "total_cycles": check_cycles + cache_cycles + epc_cycles,
    }


def _shares(breakdown: Dict[str, int]) -> Dict[str, float]:
    total = breakdown["total_cycles"]
    if total == 0:
        return {"check": 0.0, "cache": 0.0, "epc_fault": 0.0}
    return {
        "check": breakdown["check_cycles"] / total,
        "cache": breakdown["cache_cycles"] / total,
        "epc_fault": breakdown["epc_fault_cycles"] / total,
    }


def attribute_overhead(scheme_profile: Dict[str, Dict[str, int]],
                       native_profile: Dict[str, Dict[str, int]],
                       cost: Optional[CostModel] = None,
                       enclave: bool = True) -> Dict[str, object]:
    """Diff two per-function profiles into a Table-3-style breakdown.

    Returns ``{"functions": {name: {...}}, "totals": {...},
    "shares": {...}}`` where every function row carries the raw counter
    deltas plus the priced check/cache/EPC-fault cycle split.  Functions
    only present on one side still contribute (missing side counts as
    zero, which is what a crashed or never-reached function should
    report).
    """
    cost = cost or CostModel()
    functions: Dict[str, Dict[str, object]] = {}
    totals = {"check_cycles": 0, "cache_cycles": 0,
              "epc_fault_cycles": 0, "total_cycles": 0}
    names = sorted(set(scheme_profile) | set(native_profile))
    for name in names:
        sc = scheme_profile.get(name, {})
        na = native_profile.get(name, {})
        delta = {field: sc.get(field, 0) - na.get(field, 0)
                 for field in ATTRIB_FIELDS}
        breakdown = _decompose(delta, cost, enclave)
        for key in totals:
            totals[key] += breakdown[key]
        functions[name] = {
            "delta": delta,
            "bounds_checks": sc.get("bounds_checks", 0),
            **breakdown,
            "shares": _shares(breakdown),
        }
    return {
        "functions": functions,
        "totals": totals,
        "shares": _shares(totals),
    }


def flame_rows(profile: Dict[str, Dict[str, int]],
               cost: Optional[CostModel] = None,
               enclave: bool = True,
               limit: Optional[int] = None
               ) -> Sequence[Sequence[object]]:
    """Rows for a compact text flame table, hottest function first.

    ``limit=0`` is a valid request for an empty table; negative limits
    clamp to 0 (Python slicing would otherwise drop rows from the *end*,
    silently returning the coldest functions).
    """
    cost = cost or CostModel()
    if limit is not None:
        limit = max(0, limit)
    rows = []
    total = sum(row.get("instructions", 0) for row in profile.values()) or 1
    for name, row in profile.items():
        rows.append([
            name,
            row.get("calls_entered", 0),
            row.get("instructions", 0),
            100.0 * row.get("instructions", 0) / total,
            function_cycles(row, cost, enclave),
            row.get("bounds_checks", 0),
            row.get("llc_misses", 0),
            row.get("epc_faults", 0),
        ])
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows[:limit] if limit is not None else rows
