"""SGXBounds proper: tagged pointers, runtime, boundless memory, metadata."""

from repro.core.boundless import BoundlessCache
from repro.core.metadata import DoubleFreeGuard, MetadataManager
from repro.core.runtime import SGXBoundsScheme
from repro.core.tagged_pointer import (
    METADATA_SIZE,
    bounds_violated,
    extract_p,
    extract_ub,
    is_tagged,
    pointer_arith,
    specify_bounds,
    unpack,
    untag,
)

__all__ = [
    "SGXBoundsScheme",
    "BoundlessCache",
    "MetadataManager",
    "DoubleFreeGuard",
    "METADATA_SIZE",
    "specify_bounds",
    "extract_p",
    "extract_ub",
    "is_tagged",
    "bounds_violated",
    "pointer_arith",
    "unpack",
    "untag",
]
