"""Generic per-object metadata management (paper §4.3, Table 2).

SGXBounds' memory layout — metadata appended right after the object —
generalizes beyond the lower bound: an arbitrary number of 4-byte items can
follow it.  This module exposes the paper's three-hook API:

* ``on_create(objbase, objsize, objtype)`` — after object creation
  (globals, heap; stack hooks are opt-in because they cost a native call
  per frame);
* ``on_access(address, size, metadata, accesstype)`` — before memory
  accesses routed through the slow path / libc wrappers;
* ``on_delete(metadata)`` — before heap deallocation.

The double-free guard of §4.3 ("a magic number to compare with") ships as
:class:`DoubleFreeGuard`, both as a usable feature and as the reference
example of extending SGXBounds through this API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.tagged_pointer import METADATA_SIZE, extract_ub, untag
from repro.errors import DoubleFree

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.vm.machine import VM

OBJ_GLOBAL = "global"
OBJ_HEAP = "heap"
OBJ_STACK = "stack"

ACCESS_READ = "read"
ACCESS_WRITE = "write"


class MetadataManager:
    """Registry of metadata items and lifecycle hooks.

    Each registered item reserves one 4-byte word after the lower bound;
    the total per-object footprint is ``4 * (1 + len(items))`` bytes.
    """

    def __init__(self) -> None:
        self._items: Dict[str, int] = {}          # name -> index
        self.on_create_hooks: List[Callable] = []
        self.on_access_hooks: List[Callable] = []
        self.on_delete_hooks: List[Callable] = []

    # -- item registry ------------------------------------------------------
    def register_item(self, name: str) -> int:
        """Reserve a metadata word; returns its index (0-based, after LB)."""
        if name in self._items:
            raise ValueError(f"metadata item {name!r} already registered")
        index = len(self._items)
        self._items[name] = index
        return index

    @property
    def extra_bytes(self) -> int:
        """Extra bytes appended to every object beyond the LB word."""
        return METADATA_SIZE * len(self._items)

    def item_address(self, tagged_ptr: int, name: str) -> int:
        """Address of item ``name`` for the object ``tagged_ptr`` points into."""
        upper = extract_ub(tagged_ptr)
        return upper + METADATA_SIZE * (1 + self._items[name])

    def read_item(self, vm: "VM", tagged_ptr: int, name: str) -> int:
        return vm.space.read_u32(self.item_address(tagged_ptr, name))

    def write_item(self, vm: "VM", tagged_ptr: int, name: str,
                   value: int) -> None:
        vm.space.write_u32(self.item_address(tagged_ptr, name), value)

    # -- hook registry ---------------------------------------------------------
    def on_create(self, hook: Callable) -> Callable:
        """hook(vm, objbase, objsize, objtype, tagged_ptr)"""
        self.on_create_hooks.append(hook)
        return hook

    def on_access(self, hook: Callable) -> Callable:
        """hook(vm, address, size, tagged_ptr, accesstype)"""
        self.on_access_hooks.append(hook)
        return hook

    def on_delete(self, hook: Callable) -> Callable:
        """hook(vm, tagged_ptr)"""
        self.on_delete_hooks.append(hook)
        return hook

    # -- dispatch (called by the SGXBounds runtime) -----------------------------
    def fire_create(self, vm: "VM", base: int, size: int, objtype: str,
                    tagged: int) -> None:
        for hook in self.on_create_hooks:
            hook(vm, base, size, objtype, tagged)

    def fire_access(self, vm: "VM", address: int, size: int, tagged: int,
                    accesstype: str) -> None:
        for hook in self.on_access_hooks:
            hook(vm, address, size, tagged, accesstype)

    def fire_delete(self, vm: "VM", tagged: int) -> None:
        for hook in self.on_delete_hooks:
            hook(vm, tagged)


class DoubleFreeGuard:
    """Probabilistic double-free detection via a magic-number item (§4.3)."""

    MAGIC = 0xA110C8ED

    def __init__(self, manager: MetadataManager):
        self.manager = manager
        manager.register_item("dfguard_magic")
        manager.on_create(self._created)
        manager.on_delete(self._deleted)
        self.detected = 0

    def _created(self, vm: "VM", base: int, size: int, objtype: str,
                 tagged: int) -> None:
        if objtype == OBJ_HEAP:
            self.manager.write_item(vm, tagged, "dfguard_magic", self.MAGIC)

    def _deleted(self, vm: "VM", tagged: int) -> None:
        magic = self.manager.read_item(vm, tagged, "dfguard_magic")
        if magic != self.MAGIC:
            self.detected += 1
            raise DoubleFree(untag(tagged))
        self.manager.write_item(vm, tagged, "dfguard_magic", 0)
