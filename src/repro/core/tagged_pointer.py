"""Tagged-pointer codec (paper §3.1–3.2, Figure 5).

A 64-bit SGXBounds pointer is::

    63            32 31             0
    +---------------+---------------+
    |  upper bound  |    pointer    |
    +---------------+---------------+

The upper bound (UB) doubles as the address of the object's metadata area:
the 4-byte lower bound (LB) lives *at* UB, i.e. immediately after the
object.  These helpers are the Python mirror of the always-inlined runtime
functions in §3.2; the instrumentation pass emits the same operations as
IR so they are executed (and costed) on the simulated CPU.
"""

from __future__ import annotations

from typing import Tuple

M32 = 0xFFFFFFFF
M64 = (1 << 64) - 1
TAG_SHIFT = 32

#: Bytes of per-object metadata (the lower-bound word).
METADATA_SIZE = 4


def specify_bounds(pointer: int, upper_bound: int) -> int:
    """Build a tagged pointer (the paper's ``specify_bounds``).

    The caller must separately store the lower bound at ``upper_bound``
    (see :func:`write_lower_bound`), matching §3.2::

        void* specify_bounds(void *p, void *UB):
            LBaddr = UB; *LBaddr = p
            tagged = (UB << 32) | p
    """
    return ((upper_bound & M32) << TAG_SHIFT) | (pointer & M32)


def extract_p(tagged: int) -> int:
    """Plain pointer: the low 32 bits."""
    return tagged & M32


def extract_ub(tagged: int) -> int:
    """Upper bound: the high 32 bits."""
    return (tagged >> TAG_SHIFT) & M32


def is_tagged(tagged: int) -> bool:
    """Whether the value carries a bound (untagged values have UB = 0)."""
    return (tagged >> TAG_SHIFT) != 0


def bounds_violated(tagged: int, lower: int, size: int = 1) -> bool:
    """The paper's ``bounds_violated``: [p, p+size) outside [LB, UB)."""
    pointer = tagged & M32
    upper = (tagged >> TAG_SHIFT) & M32
    return pointer < lower or pointer + size > upper


def pointer_arith(tagged: int, delta: int) -> int:
    """Pointer arithmetic confined to the low 32 bits (§3.2).

    An attacker-controlled delta cannot corrupt the upper bound: only the
    pointer half wraps.
    """
    return (tagged & ~M32 & M64) | ((tagged + delta) & M32)


def untag(value: int) -> int:
    """Alias of :func:`extract_p` for readability at call sites."""
    return value & M32


def unpack(tagged: int) -> Tuple[int, int]:
    """(pointer, upper_bound)."""
    return tagged & M32, (tagged >> TAG_SHIFT) & M32
