"""Boundless memory blocks: failure-oblivious overlay (paper §4.2, Fig. 6).

When an out-of-bounds access is detected and the scheme runs in boundless
mode, the access is redirected to an *overlay* area so neighbouring objects
are never corrupted:

* the overlay is a bounded LRU cache mapping out-of-bounds addresses to
  1 KiB spare chunks, capped at 1 MiB total (so an attack spanning
  gigabytes — e.g. a negative length — cannot exhaust memory);
* out-of-bounds **writes** allocate a chunk on demand (evicting the least
  recently used when full);
* out-of-bounds **reads** hit a previously written chunk if one exists,
  otherwise they're served from a shared always-zero page — the
  failure-oblivious "return zero" policy of Rinard et al.

All cache operations go through one lock in the paper; our VM's natives
execute atomically with respect to simulated threads, which models the
same global-lock slow path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.memory.address_space import PERM_READ
from repro.memory.layout import PAGE_SIZE

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.vm.machine import VM

CHUNK_SIZE = 1024
DEFAULT_CAPACITY = 1024 * 1024   # 1 MiB of overlay, as in the paper

#: Per-request leak tallies kept at most this many entries; totals keep
#: counting past the cap (long campaigns must stay bounded).
LEAK_TALLY_CAP = 512


class BoundlessCache:
    """LRU map from out-of-bounds chunk keys to overlay chunks."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY,
                 chunk_size: int = CHUNK_SIZE):
        self.chunk_size = chunk_size
        self.capacity_chunks = max(1, capacity_bytes // chunk_size)
        self._chunks: Dict[int, int] = {}     # key -> overlay address (LRU order)
        self._free: List[int] = []
        #: key each simulated thread was most recently handed a chunk for.
        #: Eviction must skip these: the thread performs its redirected
        #: access *after* translate() returns, and recycling the chunk
        #: under it would corrupt an unrelated overlay key's data.
        self._pinned: Dict[int, int] = {}     # tid -> chunk key
        self._zero_page: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0
        #: Leaked-bytes accounting: every failure-oblivious *read* that
        #: crossed an object boundary is an information-disclosure
        #: opportunity the redteam triage must price, whether it was
        #: served from a written chunk or from manufactured zeros.
        self.oblivious_reads = 0
        self.leaked_bytes = 0
        self.leaked_by_request: Dict[int, int] = {}
        self.leak_tally_dropped = 0

    # -- backing storage -------------------------------------------------
    def _alloc_chunk(self, vm: "VM") -> int:
        if self._free:
            return self._free.pop()
        base = vm.enclave.heap.mmap.alloc(PAGE_SIZE, "boundless-overlay")
        for offset in range(self.chunk_size, PAGE_SIZE, self.chunk_size):
            self._free.append(base + offset)
        self.allocations += 1
        return base

    def zero_page(self, vm: "VM") -> int:
        """Shared read-only page of zeros for unmatched OOB reads."""
        if self._zero_page is None:
            page = vm.enclave.heap.mmap.alloc(PAGE_SIZE, "boundless-zero")
            vm.space.protect(page, PAGE_SIZE, PERM_READ)
            self._zero_page = page
        return self._zero_page

    # -- leaked-bytes accounting ----------------------------------------
    def note_oblivious_read(self, vm: "VM", nbytes: int) -> None:
        """Tally ``nbytes`` of failure-oblivious read past an object
        boundary (redirected plain loads and clamped libc tails alike).

        Totals are unconditional; the per-request breakdown is bounded
        by :data:`LEAK_TALLY_CAP` and telemetry counters fire only when a
        registry is attached, so default runs stay counter-identical.
        """
        self.oblivious_reads += 1
        self.leaked_bytes += nbytes
        rid = getattr(vm, "request_id", None)
        if rid is not None:
            tally = self.leaked_by_request
            if rid in tally or len(tally) < LEAK_TALLY_CAP:
                tally[rid] = tally.get(rid, 0) + nbytes
            else:
                self.leak_tally_dropped += 1
        telemetry = getattr(vm, "telemetry", None)
        if telemetry is not None:
            registry = telemetry.registry
            registry.counter("boundless.oblivious_reads").inc()
            registry.counter("boundless.leaked_bytes").inc(nbytes)

    # -- translation ---------------------------------------------------------
    def translate(self, vm: "VM", address: int, size: int,
                  is_write: bool) -> int:
        """Overlay address for an out-of-bounds access at ``address``."""
        key = address // self.chunk_size
        offset = address % self.chunk_size
        current = getattr(vm, "current", None)
        tid = current.tid if current is not None else -1
        if not is_write:
            self.note_oblivious_read(vm, size)
        chunk = self._chunks.get(key)
        if chunk is not None:
            # Refresh LRU position.
            del self._chunks[key]
            self._chunks[key] = chunk
            self.hits += 1
            vm.counters.boundless_hits += 1
            self._pinned[tid] = key
            return chunk + offset
        self.misses += 1
        if not is_write:
            # Failure-oblivious read: manufactured zeros.  (Evicted chunks
            # land here too — boundless data is best-effort, §4.2.)
            self._pinned.pop(tid, None)
            return self.zero_page(vm) + (offset % (PAGE_SIZE - 8))
        if len(self._chunks) >= self.capacity_chunks:
            self._evict_one()
        chunk = self._alloc_chunk(vm)
        vm.counters.boundless_allocs += 1
        # Fresh chunks must read as zeros even after reuse.
        tracer, vm.space.tracer = vm.space.tracer, None
        try:
            vm.space.fill(chunk, 0, self.chunk_size)
        finally:
            vm.space.tracer = tracer
        self._chunks[key] = chunk
        self._pinned[tid] = key
        return chunk + offset

    def _evict_one(self) -> None:
        """Drop the least-recently-used chunk no thread is mid-access on.
        Falls back to plain LRU if every chunk is pinned (more threads
        than chunks — the access that loses its chunk reads zeros)."""
        pinned = set(self._pinned.values())
        victim = None
        for key in self._chunks:
            if key not in pinned:
                victim = key
                break
        if victim is None:
            victim = next(iter(self._chunks))
        self._free.append(self._chunks.pop(victim))
        self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "chunks_live": len(self._chunks),
            "hits": self.hits,
            "misses": self.misses,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "oblivious_reads": self.oblivious_reads,
            "leaked_bytes": self.leaked_bytes,
            "requests_with_leaks": len(self.leaked_by_request),
        }
