"""The SGXBounds runtime (paper §3.2, §5.1).

The compile-time half lives in ``repro.passes.instrument_sgxbounds``; this
module is the run-time half: tagged malloc/free wrappers, tagged global
layout, the libc-wrapper range checks, the slow-path violation handler
(fail-stop or boundless), and the metadata-management hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.boundless import BoundlessCache
from repro.core.metadata import (
    ACCESS_READ,
    ACCESS_WRITE,
    MetadataManager,
    OBJ_GLOBAL,
    OBJ_HEAP,
    OBJ_STACK,
)
from repro.core.tagged_pointer import (
    M32,
    METADATA_SIZE,
    extract_p,
    extract_ub,
    specify_bounds,
)
from repro.errors import BoundsViolation
from repro.vm import policy as violation_policy
from repro.vm.scheme import SchemeRuntime

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.ir.module import GlobalVar, Module
    from repro.vm.machine import VM


class SGXBoundsScheme(SchemeRuntime):
    """Runtime for SGXBounds-instrumented programs.

    Parameters mirror the paper's configurations:

    * ``boundless`` — tolerate out-of-bounds accesses via the overlay LRU
      instead of crashing (§4.2);
    * ``optimize_safe`` / ``optimize_hoist`` — the two optimizations of
      §4.4 (both on by default, can be disabled for the Fig. 10 ablation);
    * ``stack_hooks`` — fire metadata ``on_create`` for stack objects too.
    """

    name = "sgxbounds"
    # Figure-4d checks are emitted as plain IR (CMP+BR into the violation
    # stub), so the generic fusion classes cover them; PerfCounters are
    # identical either way (tests/test_vm_differential.py).
    fastpath_fusion = ("cmp_br", "gep_load", "gep_store")

    def __init__(self, boundless: bool = False, optimize_safe: bool = True,
                 optimize_hoist: bool = True, stack_hooks: bool = False,
                 metadata: Optional[MetadataManager] = None,
                 policy: Optional[str] = None):
        if policy is None:
            policy = (violation_policy.BOUNDLESS if boundless
                      else violation_policy.ABORT)
        super().__init__(policy=policy)
        self.boundless = (self.policy == violation_policy.BOUNDLESS)
        self.optimize_safe = optimize_safe
        # Hoisted checks fire before the access they guard, which breaks
        # in-place continuation (boundless/audit); drop-request unwinds the
        # whole request anyway, so hoisting stays sound there.
        self.optimize_hoist = (optimize_hoist and
                               self.policy not in violation_policy.CONTINUING)
        self.stack_hooks = stack_hooks
        self.metadata = metadata or MetadataManager()
        self.overlay = BoundlessCache()
        self.metadata_bytes = 0

    # -- compile-time --------------------------------------------------------
    def instrument(self, module: "Module") -> "Module":
        from repro.passes.instrument_sgxbounds import run_sgxbounds_instrumentation
        from repro.passes.loop_hoist import run_loop_hoist
        from repro.passes.safe_access import run_safe_access
        module = module.clone()
        if self.optimize_safe:
            run_safe_access(module)
        if self.optimize_hoist:
            run_loop_hoist(module)
        return run_sgxbounds_instrumentation(
            module, extra_metadata=self.metadata.extra_bytes,
            stack_hooks=self.stack_hooks or bool(
                self.metadata.on_create_hooks))

    # -- helpers ---------------------------------------------------------------
    def _metadata_footprint(self) -> int:
        return METADATA_SIZE + self.metadata.extra_bytes

    def _tag_new_object(self, vm: "VM", base: int, size: int,
                        objtype: str) -> int:
        upper = base + size
        vm.space.write_u32(upper, base)          # *UB = LB (traced store)
        tagged = specify_bounds(base, upper)
        self.metadata_bytes += self._metadata_footprint()
        telemetry = vm.telemetry
        if telemetry is not None:
            telemetry.registry.gauge("sgxbounds.metadata_bytes").set(
                self.metadata_bytes)
            telemetry.registry.histogram("sgxbounds.object_bytes").observe(
                max(1, size))
        self.metadata.fire_create(vm, base, size, objtype, tagged)
        return tagged

    # -- allocation wrappers (paper §3.2 "Pointer creation") --------------------
    def malloc(self, vm: "VM", size: int) -> int:
        size = max(int(size), 1)
        base = vm.enclave.heap.malloc(size + self._metadata_footprint())
        return self._tag_new_object(vm, base, size, OBJ_HEAP)

    def calloc(self, vm: "VM", count: int, size: int) -> int:
        total = max(int(count * size), 1)
        base = vm.enclave.heap.malloc(total + self._metadata_footprint())
        tracer, vm.space.tracer = vm.space.tracer, None
        try:
            vm.space.fill(base, 0, total)
        finally:
            vm.space.tracer = tracer
        vm.touch_range(base, total, True)
        return self._tag_new_object(vm, base, total, OBJ_HEAP)

    def realloc(self, vm: "VM", ptr: int, size: int) -> int:
        if extract_p(ptr) == 0:
            return self.malloc(vm, size)
        base = extract_p(ptr)
        size = max(int(size), 1)
        new_base = vm.enclave.heap.realloc(
            base, size + self._metadata_footprint())
        return self._tag_new_object(vm, new_base, size, OBJ_HEAP)

    def free(self, vm: "VM", ptr: int) -> None:
        base = extract_p(ptr)
        if base == 0:
            return
        if self.metadata.on_delete_hooks:
            self.metadata.fire_delete(vm, ptr)
        vm.enclave.heap.free(base)

    # -- globals (loader hooks) ---------------------------------------------------
    def global_padding(self, var: "GlobalVar") -> Tuple[int, int]:
        return (0, self._metadata_footprint())

    def resolve_global_address(self, address: int, var: "GlobalVar") -> int:
        return specify_bounds(address, address + var.size)

    def on_global_loaded(self, vm: "VM", address: int, var: "GlobalVar") -> None:
        upper = address + var.size
        vm.space.write_u32(upper, address)
        self.metadata_bytes += self._metadata_footprint()
        self.metadata.fire_create(vm, address, var.size, OBJ_GLOBAL,
                                  specify_bounds(address, upper))

    # -- pointer handling for libc wrappers ------------------------------------------
    def strip(self, ptr: int) -> int:
        return ptr & M32

    def object_extent(self, vm: "VM", ptr: int) -> Optional[int]:
        upper = extract_ub(ptr)
        if upper == 0:
            return None
        return max(0, upper - extract_p(ptr))

    def libc_range(self, vm: "VM", ptr: int, size: int, is_write: bool,
                   arg_bounds=None) -> Tuple[int, int]:
        address = ptr & M32
        upper = extract_ub(ptr)
        if upper == 0:
            return (address, size)
        lower = vm.space.read_u32(upper)     # traced LB load, as a wrapper would
        vm.charge(4)
        access = "write" if is_write else "read"
        if address < lower:
            self.handle_violation(vm, BoundsViolation(
                self.name, address, lower, upper, size, access=access,
                what="libc wrapper: below lower bound"))
            if self.policy == violation_policy.LOG_AND_CONTINUE:
                return (address, size)   # audit only: raw access proceeds
            if self.boundless and not is_write:
                # The wrapper will manufacture the whole range (zero fill):
                # all of it is boundary-crossing read volume to account.
                self.overlay.note_oblivious_read(vm, size)
            return (address, 0)
        if address + size > upper:
            self.handle_violation(vm, BoundsViolation(
                self.name, address, lower, upper, size, access=access,
                what="libc wrapper: beyond upper bound"))
            if self.policy == violation_policy.LOG_AND_CONTINUE:
                return (address, size)   # audit only: raw overflow proceeds
            valid = max(0, upper - address)
            if self.boundless and not is_write:
                # Clamped tail (e.g. Heartbleed's over-long memcpy source):
                # the caller still receives size bytes, the out-of-bounds
                # tail manufactured as zeros — bounded, *measured* leakage.
                self.overlay.note_oblivious_read(vm, size - valid)
            return (address, valid)
        return (address, size)

    # -- slow path ----------------------------------------------------------------------
    def _violation(self, vm: "VM", thread, args) -> int:
        """The pass-inserted slow path: crash or redirect (§4.2)."""
        tagged, size, is_write = args[0], args[1], bool(args[2])
        address = tagged & M32
        upper = extract_ub(tagged)
        if upper == 0:
            # Untagged pointer (runtime-internal); allow the plain access.
            return address
        lower = vm.space.read_u32(upper)
        if lower <= address and address + size <= upper:
            return address   # spurious slow-path entry; access is fine
        self.metadata.fire_access(vm, address, size, tagged,
                                  ACCESS_WRITE if is_write else ACCESS_READ)
        self.handle_violation(vm, BoundsViolation(
            self.name, address, lower, upper, size,
            access="write" if is_write else "read"))
        if self.boundless:
            vm.charge(60)    # LRU lookup under the global lock (§5.1)
            if vm.telemetry is not None:
                vm.telemetry.registry.counter(
                    "sgxbounds.boundless_redirects").inc()
            return self.overlay.translate(vm, address, size, is_write)
        return address       # log-and-continue: the raw access proceeds

    def _stack_create(self, vm: "VM", thread, args) -> int:
        tagged, size = args[0], args[1]
        self.metadata.fire_create(vm, extract_p(tagged), size, OBJ_STACK,
                                  tagged)
        return 0

    def natives(self) -> Dict[str, object]:
        return {
            "__sgxbounds_violation": self._violation,
            "__sgxbounds_stack_create": self._stack_create,
        }

    # -- reporting -----------------------------------------------------------------------
    def memory_overhead_report(self, vm: "VM") -> Dict[str, int]:
        report = {
            "metadata_bytes": self.metadata_bytes,
            "violations": self.violations,
        }
        if self.boundless:
            report.update({f"overlay_{k}": v
                           for k, v in self.overlay.stats().items()})
        return report
