"""SGXBounds reproduction: memory safety for shielded execution.

Public API tour:

* compile a MiniC program: :func:`repro.minic.compile_source`;
* pick a protection scheme: :class:`repro.core.SGXBoundsScheme`,
  :class:`repro.asan.ASanScheme`, :class:`repro.mpx.MPXScheme`,
  :class:`repro.baggy.BaggyScheme` (or ``None`` for native);
* run it: :class:`repro.vm.VM` over a :class:`repro.sgx.Enclave`;
* or use the harness: :func:`repro.harness.run_workload` and the
  per-figure drivers in :mod:`repro.harness.experiments`.
"""

from repro.errors import (
    BoundsViolation,
    ControlFlowHijack,
    DoubleFree,
    OutOfMemory,
    ReproError,
    SegmentationFault,
)
from repro.sgx import Enclave, EnclaveConfig

__version__ = "1.0.0"

__all__ = [
    "Enclave",
    "EnclaveConfig",
    "ReproError",
    "BoundsViolation",
    "SegmentationFault",
    "ControlFlowHijack",
    "DoubleFree",
    "OutOfMemory",
    "__version__",
]
