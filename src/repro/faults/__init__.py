"""Deterministic fault injection for the server case studies.

Two layers, both driven by seeded RNGs so every chaos run replays
byte-for-byte:

* :class:`RequestFuzzer` corrupts the *workload* before it reaches the
  network — scripted out-of-bounds probes (the CVE attack payloads),
  inflated or negative length fields, truncated messages, and bit-flips
  in request bodies.  This is what an adversarial or buggy client does.
* :class:`FaultInjector` corrupts the *runtime* — bit-flips in the tag
  half of freshly allocated pointers (modelling the memory-corruption
  precursors SGXBounds must survive) and forced EPC pressure spikes
  (another enclave grabbing the page cache), fired at the ``net_recv``
  boundary.

Neither layer is active unless explicitly constructed and attached, so
the default pipeline is bit-identical to the unfaulted simulator.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class LengthField:
    """Where a protocol's length field lives inside a request."""

    __slots__ = ("offset", "width", "signed")

    def __init__(self, offset: int, width: int, signed: bool = False):
        self.offset = offset
        self.width = width
        self.signed = signed

    def _fmt(self) -> str:
        base = {1: "b", 2: "h", 4: "i"}[self.width]
        return "<" + (base if self.signed else base.upper())

    def patch(self, request: bytes, value: int) -> bytes:
        """Overwrite the length field with ``value`` (clamped to range)."""
        if len(request) < self.offset + self.width:
            return request
        bits = self.width * 8
        if self.signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        packed = struct.pack(self._fmt(), max(lo, min(hi, value)))
        return (request[:self.offset] + packed
                + request[self.offset + self.width:])


class RequestFuzzer:
    """Seeded corruption of a request list.

    ``rate`` is the probability each request is corrupted; ``weights``
    maps strategy name to relative weight.  Strategies that need a length
    field or attack factory silently fall back to ``bit-flip`` when the
    profile lacks them, so every profile supports every weight table.
    """

    STRATEGIES = ("oob-probe", "inflate-length", "negative-length",
                  "truncate", "bit-flip")

    def __init__(self, seed: int, rate: float,
                 length_field: Optional[LengthField] = None,
                 attacks: Sequence[Callable[[], bytes]] = (),
                 weights: Optional[Dict[str, float]] = None):
        self.seed = seed
        self.rate = rate
        self.length_field = length_field
        self.attacks = list(attacks)
        self.weights = dict(weights) if weights else {"bit-flip": 1.0}
        for name in self.weights:
            if name not in self.STRATEGIES:
                raise ValueError(f"unknown fuzz strategy {name!r}")
        self.injected: Dict[str, int] = {}

    # -- strategies ------------------------------------------------------
    def _oob_probe(self, rng: random.Random, request: bytes) -> bytes:
        if not self.attacks:
            return self._bit_flip(rng, request)
        return rng.choice(self.attacks)()

    def _inflate_length(self, rng: random.Random, request: bytes) -> bytes:
        field = self.length_field
        if field is None:
            return self._bit_flip(rng, request)
        scale = rng.choice((4, 16, 64, 1024))
        return field.patch(request, len(request) * scale)

    def _negative_length(self, rng: random.Random, request: bytes) -> bytes:
        field = self.length_field
        if field is None or not field.signed:
            return self._inflate_length(rng, request)
        return field.patch(request, -rng.randrange(1, 1 << 16))

    def _truncate(self, rng: random.Random, request: bytes) -> bytes:
        if len(request) < 2:
            return request
        return request[:rng.randrange(1, len(request))]

    def _bit_flip(self, rng: random.Random, request: bytes) -> bytes:
        if not request:
            return request
        pos = rng.randrange(len(request))
        return (request[:pos] + bytes((request[pos] ^ (1 << rng.randrange(8)),))
                + request[pos + 1:])

    # -- driver ----------------------------------------------------------
    def apply(self, requests: Sequence[bytes]) -> List[bytes]:
        """Return a corrupted copy of ``requests`` (input untouched)."""
        rng = random.Random(self.seed)
        names = sorted(self.weights)
        weights = [self.weights[n] for n in names]
        handlers = {
            "oob-probe": self._oob_probe,
            "inflate-length": self._inflate_length,
            "negative-length": self._negative_length,
            "truncate": self._truncate,
            "bit-flip": self._bit_flip,
        }
        out: List[bytes] = []
        for request in requests:
            if rng.random() >= self.rate:
                out.append(request)
                continue
            name = rng.choices(names, weights=weights)[0]
            out.append(handlers[name](rng, request))
            self.injected[name] = self.injected.get(name, 0) + 1
        return out

    def stats(self) -> Dict[str, int]:
        out = dict(self.injected)
        out["injected_total"] = sum(self.injected.values())
        return out


class FaultInjector:
    """Seeded runtime fault injector attached to a VM (``vm.faults``).

    * ``tag_flip_rate`` — probability a freshly ``malloc``'d pointer gets
      one bit of its *tag half* (bits 32..63, the SGXBounds upper bound)
      flipped.  Models metadata corruption: the scheme should detect the
      resulting bogus bounds rather than walk off the object.
    * ``epc_spike_rate`` — probability each received request is preceded
      by a full EPC flush (pressure spike), forcing the enclave to
      re-fault its working set.
    """

    def __init__(self, seed: int, tag_flip_rate: float = 0.0,
                 epc_spike_rate: float = 0.0):
        self.rng = random.Random(seed)
        self.tag_flip_rate = tag_flip_rate
        self.epc_spike_rate = epc_spike_rate
        self.tag_flips = 0
        self.epc_spikes = 0
        self.epc_pages_flushed = 0

    def corrupt_pointer(self, vm, ptr: int) -> int:
        """Maybe flip one tag bit of ``ptr`` (called from ``malloc``)."""
        if self.tag_flip_rate <= 0.0 or ptr >> 32 == 0:
            return ptr
        if self.rng.random() >= self.tag_flip_rate:
            return ptr
        self.tag_flips += 1
        return ptr ^ (1 << self.rng.randrange(32, 64))

    def on_request(self, vm) -> None:
        """Maybe fire an EPC pressure spike (called from ``net_recv``)."""
        if self.epc_spike_rate <= 0.0:
            return
        if self.rng.random() >= self.epc_spike_rate:
            return
        epc = vm.enclave.epc
        if epc is None:
            return
        self.epc_spikes += 1
        self.epc_pages_flushed += epc.flush()
        # The spike itself costs the enclave: the paper's §2.1 eviction
        # path (re-encryption + ocall) per page, coarsely.
        vm.charge(50 * max(1, self.epc_pages_flushed // max(1, self.epc_spikes)))

    def stats(self) -> Dict[str, int]:
        return {
            "tag_flips": self.tag_flips,
            "epc_spikes": self.epc_spikes,
            "epc_pages_flushed": self.epc_pages_flushed,
        }


def derive(seed: int, salt: str) -> int:
    """Stable sub-seed for component ``salt`` of a run seeded ``seed``."""
    h = 0x811C9DC5
    for ch in f"{seed}:{salt}".encode():
        h = ((h ^ ch) * 0x01000193) & 0xFFFFFFFF
    return h
