"""Redteam subsystem: attack synthesis, triage, and the detection matrix.

Three layers (ISSUE 7 / paper §6.6 extended):

* :mod:`repro.redteam.templates` — parameterized MiniC exploit templates
  (in-struct, adjacent, laundered, off-by-N, underflow, temporal) plus
  TeeRex-style hostile request-interface attacks and benign boundary
  twins for false-positive measurement;
* :mod:`repro.redteam.triage` — runs one attack under one scheme ×
  violation policy and classifies the outcome (detected / crash /
  no-effect / silent-corruption / control-flow-hijack / info-leak) with
  evidence attached;
* :mod:`repro.redteam.matrix` — the scheme × attack-class detection
  grid, false-positive table, boundless leaked-bytes accounting, and the
  fleet-storm "under load" availability column
  (:mod:`repro.redteam.storm`).
"""

from repro.redteam.matrix import (
    MATRIX_POLICIES,
    MATRIX_SCHEMES,
    matrix_document,
    run_matrix,
)
from repro.redteam.templates import (
    ATTACK_CLASSES,
    AttackSpec,
    compile_catalog,
    compile_twins,
)
from repro.redteam.triage import EXPLOITED, LABELS, TriageRecord, triage

__all__ = [
    "ATTACK_CLASSES",
    "AttackSpec",
    "EXPLOITED",
    "LABELS",
    "MATRIX_POLICIES",
    "MATRIX_SCHEMES",
    "TriageRecord",
    "compile_catalog",
    "compile_twins",
    "matrix_document",
    "run_matrix",
    "triage",
]
