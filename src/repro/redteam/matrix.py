"""Detection-matrix reporter: scheme × attack-class grid + triage detail.

The redteam's headline artifact.  For every scheme it answers, per attack
class: how many of the class's attacks were *detected* (fail-stop), what
the undetected ones actually bought the attacker (triage breakdown), how
the scheme behaves when it keeps running (boundless column: contained,
with leaked bytes *measured* by the overlay tally), whether benign
boundary twins trip false positives, and — via the fleet storm — how
much availability the scheme preserves while the same attacks arrive
interleaved with production traffic.

Everything is seeded and visited in catalog order; two runs with the
same seed produce byte-identical text and JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import report
from repro.redteam import storm as storm_mod
from repro.redteam.templates import (
    ATTACK_CLASSES,
    AttackSpec,
    compile_catalog,
    compile_twins,
)
from repro.redteam.triage import (
    DETECTED,
    EXPLOITED,
    LABELS,
    NO_EFFECT,
    TriageRecord,
    triage,
)
from repro.telemetry.results import result_document

#: Matrix column order: the paper's Table 4 schemes + the Baggy extension.
MATRIX_SCHEMES = ("native", "sgxbounds", "asan", "mpx", "baggy")

#: Policies each protected scheme is triaged under.  Native has no
#: violation policy; it runs once and is reported under "-".
MATRIX_POLICIES = ("abort", "boundless")

#: Apps whose interface attacks also run as fleet storms.
STORM_APPS = ("memcached",)


def _policy_axis(scheme: str, policies: Sequence[str]) -> Tuple[str, ...]:
    return ("-",) if scheme == "native" else tuple(policies)


def run_matrix(seed: int = 1234,
               schemes: Sequence[str] = MATRIX_SCHEMES,
               policies: Sequence[str] = MATRIX_POLICIES,
               under_load: bool = True,
               catalog: Optional[Sequence[AttackSpec]] = None,
               twins: Optional[Sequence[AttackSpec]] = None
               ) -> Tuple[Dict, str]:
    """Run the full triage sweep; returns ``(data, text)``.

    ``data`` is the versioned artifact payload (see ``result_document``
    call in :func:`matrix_document`); ``text`` is the deterministic
    stdout report.
    """
    catalog = tuple(catalog if catalog is not None else compile_catalog())
    twins = tuple(twins if twins is not None else compile_twins())
    records: List[TriageRecord] = []
    for scheme in schemes:
        for policy in _policy_axis(scheme, policies):
            run_policy = "abort" if policy == "-" else policy
            for spec in catalog:
                records.append(triage(spec, scheme, run_policy, seed=seed))
                if policy == "-":
                    records[-1].policy = "-"
    twin_records: List[TriageRecord] = []
    for scheme in schemes:
        for spec in twins:
            rec = triage(spec, scheme, "abort", seed=seed)
            if scheme == "native":
                rec.policy = "-"
            twin_records.append(rec)

    classes = [c for c in ATTACK_CLASSES
               if any(s.attack_class == c for s in catalog)]
    grid: Dict[str, Dict[str, Dict[str, int]]] = {}
    for cls in classes:
        grid[cls] = {}
        for scheme in schemes:
            fail_stop = [r for r in records
                         if r.attack_class == cls and r.scheme == scheme
                         and r.policy in ("abort", "-")]
            grid[cls][scheme] = {
                "detected": sum(1 for r in fail_stop if r.label == DETECTED),
                "exploited": sum(1 for r in fail_stop
                                 if r.label in EXPLOITED),
                "total": len(fail_stop),
            }

    breakdown: Dict[str, Dict[str, int]] = {}
    for rec in records:
        key = f"{rec.scheme}/{rec.policy}"
        row = breakdown.setdefault(key, {label: 0 for label in LABELS})
        row[rec.label] += 1

    false_positives: Dict[str, Dict[str, object]] = {}
    for scheme in schemes:
        mine = [r for r in twin_records if r.scheme == scheme]
        flagged = [r.attack for r in mine if r.label != NO_EFFECT]
        false_positives[scheme] = {
            "false_positives": len(flagged),
            "twins": len(mine),
            "flagged": flagged,
        }

    leaks: Dict[str, Dict[str, int]] = {}
    for scheme in schemes:
        for policy in _policy_axis(scheme, policies):
            mine = [r for r in records
                    if r.scheme == scheme and r.policy == policy]
            reads = sum(r.evidence.get("oblivious_reads", 0) for r in mine)
            if reads:
                leaks[f"{scheme}/{policy}"] = {
                    "oblivious_reads": reads,
                    "leaked_bytes": sum(r.evidence.get("leaked_bytes", 0)
                                        for r in mine),
                }

    storm_rows: List[Dict[str, object]] = []
    if under_load:
        for app in STORM_APPS:
            for scheme in schemes:
                storm_rows.append(storm_mod.availability_under_attack(
                    scheme, app=app, seed=seed, catalog=catalog))

    data = {
        "seed": seed,
        "schemes": list(schemes),
        "policies": list(policies),
        "attack_classes": classes,
        "attacks": [s.name for s in catalog],
        "twins": [s.name for s in twins],
        "grid": grid,
        "triage_breakdown": breakdown,
        "false_positives": false_positives,
        "boundless_leaks": leaks,
        "under_load": storm_rows,
        "records": [r.as_dict() for r in records],
        "twin_records": [r.as_dict() for r in twin_records],
    }
    return data, _render(data)


def _render(data: Dict) -> str:
    schemes = data["schemes"]
    chunks: List[str] = []
    rows = []
    for cls in data["attack_classes"]:
        row: List[object] = [cls]
        for scheme in schemes:
            cell = data["grid"][cls][scheme]
            row.append(f"{cell['detected']}/{cell['total']}")
        rows.append(row)
    chunks.append(report.series_table(
        f"Detection matrix (fail-stop): detected/total per attack class "
        f"(seed {data['seed']})",
        ["class"] + list(schemes), rows))

    rows = []
    for key in sorted(data["triage_breakdown"]):
        counts = data["triage_breakdown"][key]
        rows.append([key] + [counts[label] for label in LABELS])
    chunks.append(report.series_table(
        "Triage breakdown: outcome counts per scheme/policy",
        ["scheme/policy"] + list(LABELS), rows))

    rows = []
    for scheme in schemes:
        fp = data["false_positives"][scheme]
        rows.append([scheme, fp["false_positives"], fp["twins"],
                     ",".join(fp["flagged"]) or "-"])
    chunks.append(report.series_table(
        "Benign boundary twins: false positives per scheme",
        ["scheme", "false_pos", "twins", "flagged"], rows))

    rows = []
    for key in sorted(data["boundless_leaks"]):
        leak = data["boundless_leaks"][key]
        rows.append([key, leak["oblivious_reads"], leak["leaked_bytes"]])
    if rows:
        chunks.append(report.series_table(
            "Failure-oblivious leakage: reads crossing object bounds "
            "(boundless overlay tally)",
            ["scheme/policy", "oblivious_reads", "leaked_bytes"], rows))

    if data["under_load"]:
        rows = [[s["app"], s["scheme"], s["policy"], s["availability"],
                 s["served"], s["submitted"], s["attacks_injected"],
                 s["crashes"], s["restarts"]]
                for s in data["under_load"]]
        chunks.append(report.series_table(
            "Under load: attack storm interleaved with production traffic",
            ["app", "scheme", "policy", "avail", "served", "submitted",
             "attacks", "crashes", "restarts"], rows))
    return "\n\n".join(chunks)


def matrix_document(data: Dict) -> Dict:
    """Versioned JSON artifact for ``--results-out``."""
    slim = dict(data)
    return result_document("redteam_matrix", slim,
                           meta={"seed": data["seed"]})
