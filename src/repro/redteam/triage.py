"""Exploitability triage: run one attack, classify what it bought.

Labels, from the defender's best case to worst:

* ``detected`` — the scheme flagged the violation (fail-stop abort, or a
  continuing policy that logged/contained it without the attack landing);
* ``crash`` — the run died on a non-bounds error (segfault, double-free
  abort, watchdog...): no detection credit, but no exploit either;
* ``no-effect`` — the attack ran to completion without landing (layout
  did not cooperate, or a continuing policy absorbed it);
* ``silent-corruption`` — attacker-controlled bytes observably landed in
  another object's state, nobody noticed;
* ``control-flow-hijack`` — the attack redirected control flow;
* ``info-leak`` — the attacker read bytes that belong to another object.

Evidence rides along with every verdict: the exception that ended the
run, the scheme's violation count, a forensics postmortem digest when one
was captured, and — under boundless — the overlay's leaked-bytes tally,
so "contained" is a *measured* claim, not an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import (
    BoundsViolation,
    ControlFlowHijack,
    ReproError,
    SegmentationFault,
)
from repro.faults import derive
from repro.forensics import Forensics
from repro.harness.chaos import PROFILES
from repro.harness.experiments import APP_CONFIG
from repro.harness.runner import SCHEMES, run_server
from repro.minic import compile_source
from repro.redteam.templates import AttackSpec
from repro.vm import VM
from repro.vm import policy as violation_policy
from repro.workloads import NetworkSim

DETECTED = "detected"
CRASH = "crash"
NO_EFFECT = "no-effect"

#: All triage labels, defender-best first.
LABELS = (DETECTED, CRASH, NO_EFFECT, "silent-corruption",
          "control-flow-hijack", "info-leak")

#: Labels that mean the attacker got something.
EXPLOITED = ("silent-corruption", "control-flow-hijack", "info-leak")


@dataclass
class TriageRecord:
    """One (attack, scheme, policy) verdict with its evidence."""

    attack: str
    attack_class: str
    scheme: str
    policy: str
    label: str
    evidence: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "attack": self.attack,
            "attack_class": self.attack_class,
            "scheme": self.scheme,
            "policy": self.policy,
            "label": self.label,
            "evidence": self.evidence,
        }


def _leak_evidence(scheme) -> Dict[str, int]:
    overlay = getattr(scheme, "overlay", None)
    if overlay is None:
        return {}
    return {"leaked_bytes": overlay.leaked_bytes,
            "oblivious_reads": overlay.oblivious_reads}


def _postmortem_digest(forensics: Optional[Forensics]) -> Dict[str, object]:
    if forensics is None or not forensics.postmortems:
        return {}
    pm = forensics.postmortems[0]
    return {"postmortem": {"trigger": pm.get("trigger", ""),
                           "count": len(forensics.postmortems)}}


def triage_program(spec: AttackSpec, scheme_name: str,
                   policy: str) -> TriageRecord:
    """Run a program-kind attack under one scheme × policy."""
    scheme = (SCHEMES[scheme_name](policy=policy)
              if scheme_name != "native" else None)
    module = compile_source(spec.source, spec.name)
    module = scheme.instrument(module) if scheme else module.clone()
    module.finalize()
    forensics = Forensics(enabled=True)
    vm = VM(scheme=scheme, forensics=forensics)
    vm.load(module)
    evidence: Dict[str, object] = {}
    label = NO_EFFECT
    try:
        result = vm.run("main")
    except BoundsViolation as err:
        label = DETECTED
        evidence["exception"] = type(err).__name__
    except ControlFlowHijack as err:
        label = "control-flow-hijack"
        evidence["exception"] = type(err).__name__
    except ReproError as err:
        label = CRASH
        evidence["exception"] = type(err).__name__
        # Baggy detects out-of-block pointers by OOB-marking them (bit 31)
        # so the dereference traps — that segfault IS the scheme's
        # designed detection path (Akritidis et al.), not collateral.
        mark = getattr(scheme, "OOB_MARK", 0)
        if (mark and isinstance(err, SegmentationFault)
                and err.address & mark):
            label = DETECTED
            evidence["oob_trap"] = True
    else:
        violations = scheme.violations if scheme is not None else 0
        evidence["result"] = result
        if violations and policy == violation_policy.BOUNDLESS:
            # The overlay absorbed the out-of-bounds accesses: whatever
            # the program observed, no *other* object was touched.  The
            # readback probes see their own redirected writes, so the
            # return value is not trustworthy here — the leak tally is.
            label = DETECTED
        elif result == 1:
            label = spec.success_label
        elif violations:
            label = DETECTED
    if scheme is not None:
        evidence["violations"] = scheme.violations
        evidence.update(_leak_evidence(scheme))
    evidence.update(_postmortem_digest(forensics))
    return TriageRecord(spec.name, spec.attack_class, scheme_name, policy,
                        label, evidence)


def _responses(net: NetworkSim, conns: int):
    for conn in range(conns):
        for message in net.sent(conn):
            yield message


def triage_interface(spec: AttackSpec, scheme_name: str, policy: str,
                     seed: int = 1234) -> TriageRecord:
    """Run an interface-kind attack: hostile requests against the app's
    real server build, TeeRex-style (the attacker only holds the request
    socket).  The hostile requests are framed by the app's own benign
    traffic so a served-but-corrupted server is distinguishable from a
    dead one."""
    profile = PROFILES[spec.app]
    mod = profile.module
    threads = profile.threads
    benign = mod.workload(4 * threads)
    requests = list(benign[:2 * threads]) + list(spec.requests) \
        + list(benign[2 * threads:])
    count = len(requests)
    if threads > 1:
        per = count // threads
        by_conn = [requests[i * per:(i + 1) * per] for i in range(threads)]
        by_conn[-1].extend(requests[threads * per:])
    else:
        by_conn = [requests]
    net = NetworkSim(seed=derive(seed, f"redteam-net:{spec.name}"))
    result = run_server(mod.SOURCE, by_conn, scheme_name, count,
                        threads=threads, config=APP_CONFIG, name=spec.app,
                        policy=policy if scheme_name != "native" else None,
                        net=net,
                        seed=derive(seed, f"redteam-sched:{spec.name}"))
    evidence: Dict[str, object] = {
        "status": result.crashed or "ok",
        "violations": result.resilience["violations"],
        "responses": result.resilience["net"]["responses"],
    }
    leak_hit = False
    if spec.leak_marker:
        leak_hit = any(spec.leak_marker in message
                       for message in _responses(net, threads))
        evidence["leak_marker_seen"] = leak_hit
    overlay = None
    scheme_report = result.scheme_report
    if scheme_report:
        for key in ("overlay_leaked_bytes", "overlay_oblivious_reads"):
            if key in scheme_report:
                evidence[key[len("overlay_"):]] = scheme_report[key]
                overlay = True
    if result.crashed == "BoundsViolation":
        label = DETECTED
    elif result.crashed == "ControlFlowHijack":
        label = "control-flow-hijack"
    elif result.crashed is not None:
        label = CRASH
    elif leak_hit:
        label = "info-leak"
    elif evidence["violations"]:
        label = DETECTED
    elif (result.result is not None
          and result.result < (count // threads) * threads):
        # Server survived but silently lost requests it never flagged
        # (the per-thread division floor is the app's own behaviour,
        # not the attacker's doing).
        label = spec.success_label
    else:
        label = NO_EFFECT
    del overlay
    return TriageRecord(spec.name, spec.attack_class, scheme_name, policy,
                        label, evidence)


def triage(spec: AttackSpec, scheme_name: str, policy: str,
           seed: int = 1234) -> TriageRecord:
    if spec.kind == "interface":
        return triage_interface(spec, scheme_name, policy, seed=seed)
    return triage_program(spec, scheme_name, policy)
