"""Attack storms against a live fleet: availability under attack.

The detection matrix prices each attack in isolation; production asks a
different question — when the attack catalog is interleaved with
legitimate traffic against a supervised fleet, how much service survives?
This module runs one seeded campaign per scheme with the redteam's
interface payloads injected through the campaign's storm window, and
reports the SLOTracker's availability plus the fleet's crash/restart
toll.  Everything derives from the campaign seed, so the "under load"
column is as byte-stable as the rest of the matrix.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.fleet.campaign import CampaignConfig, run_campaign
from repro.redteam.templates import AttackSpec, compile_catalog

#: Storm window (ticks) and in-window fuzz rate for the default campaign.
STORM_WINDOW = (5, 25)
STORM_RATE = 1.0


def attack_payloads(app: str,
                    catalog: Sequence[AttackSpec] = ()) -> Tuple[bytes, ...]:
    """Every interface-attack request the catalog aims at ``app``."""
    specs = catalog or compile_catalog()
    out = []
    for spec in specs:
        if spec.kind == "interface" and spec.app == app:
            out.extend(spec.requests)
    return tuple(out)


def availability_under_attack(scheme: str, app: str = "memcached",
                              policy: str = "drop-request",
                              workers: int = 4, size: str = "XS",
                              seed: int = 1234,
                              catalog: Sequence[AttackSpec] = ()
                              ) -> Dict[str, object]:
    """One campaign: legit traffic + a storm of redteam payloads."""
    payloads = attack_payloads(app, catalog)
    if not payloads:
        raise ValueError(f"no interface attacks target app {app!r}")
    config = CampaignConfig(
        app=app, scheme=scheme,
        policy=policy if scheme != "native" else "abort",
        workers=workers, fault_rate=0.0, seed=seed, size=size,
        storm=(STORM_WINDOW[0], STORM_WINDOW[1], STORM_RATE),
        storm_attacks=payloads)
    result = run_campaign(config)
    slo = result.slo
    return {
        "app": app,
        "scheme": scheme,
        "policy": config.policy,
        "availability": slo["availability"],
        "served": slo["served"],
        "submitted": slo["submitted"],
        "attacks_injected": result.fuzzed_requests,
        "crashes": result.crashes,
        "restarts": result.supervisor.get("restarts", 0),
        "ticks": result.ticks,
    }
