"""Attack template compiler: parameterized MiniC exploits + benign twins.

Every attack is generated from a parameterized template (location, target,
overflow distance N, laundering...) instead of being a fixed source blob,
in the spirit of TeeRex's systematic interface exploration: the same
template expanded at a different point in parameter space probes a
different blind spot.  Each attack class also compiles a *benign boundary
twin* — a program (or request) that walks right up to the same boundary
without crossing it — so the triage engine can price false positives, not
just detections.

Attack program protocol: ``main`` returns

* ``0`` — the attack had no observable effect (prevented, contained, or
  layout did not cooperate);
* ``1`` — the attack payload observably landed (corrupted target state,
  read secret bytes, ran the hijacked handler).

What "landing" *means* per attack is declared in
:attr:`AttackSpec.success_label` (control-flow-hijack, silent-corruption,
info-leak); the triage engine combines the return value with runtime
evidence (exceptions, violation counts, overlay leak tallies, response
bytes) into the final label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workloads.apps import apache, memcached, nginx

#: Triage outcome labels an attack can claim on success.
HIJACK = "control-flow-hijack"
CORRUPTION = "silent-corruption"
INFO_LEAK = "info-leak"

#: Attack classes, in matrix row order.
ATTACK_CLASSES = (
    "in-struct",
    "adjacent-direct",
    "adjacent-laundered",
    "off-by-n",
    "underflow",
    "temporal",
    "interface",
)

_PRELUDE = r"""
int g_flag;
int evil() { g_flag = 1; return 1; }
int benign() { return 0; }
"""


@dataclass(frozen=True)
class AttackSpec:
    """One compiled attack (or its benign twin)."""

    name: str
    attack_class: str            # one of ATTACK_CLASSES
    kind: str                    # "program" | "interface"
    success_label: str           # HIJACK | CORRUPTION | INFO_LEAK
    source: str = ""             # program kind: MiniC source
    app: str = ""                # interface kind: chaos profile app name
    requests: Tuple[bytes, ...] = ()   # interface kind: request sequence
    leak_marker: bytes = b""     # scan responses for this byte-run
    params: Tuple[Tuple[str, object], ...] = ()   # expansion point


# -- program templates ------------------------------------------------------

def in_struct(location: str, target: str) -> str:
    """In-struct overflow: buffer and target in one struct — invisible to
    every object-granularity scheme (paper Table 4)."""
    if location == "heap":
        obtain = ("struct Victim *v = "
                  "(struct Victim*)malloc(sizeof(struct Victim));")
    else:
        obtain = "struct Victim vs; struct Victim *v = &vs;"
    if target == "funcptr":
        payload = r"""
    uint evil_addr = (uint)evil;
    for (int i = 0; i < 24; i++) {
        char byte = (char)0xAA;
        if (i >= 16) byte = (char)(evil_addr >> ((i - 16) * 8));
        v->buf[i] = byte;
    }
    v->handler();
"""
    else:
        payload = r"""
    for (int i = 0; i < 28; i++) v->buf[i] = (char)0x01;
    if (v->auth) g_flag = 1;
"""
    return (_PRELUDE
            + "struct Victim { char buf[16]; fnptr handler; int auth; };\n"
            + f"int main() {{\n    {obtain}\n"
            + "    v->handler = benign;\n    v->auth = 0;\n"
            + payload + "    return g_flag;\n}\n")


def in_struct_twin() -> str:
    """Benign twin: same struct, the loop stops at the boundary."""
    return (_PRELUDE
            + "struct Victim { char buf[16]; fnptr handler; int auth; };\n"
            + r"""
int main() {
    struct Victim vs; struct Victim *v = &vs;
    v->handler = benign;
    v->auth = 0;
    for (int i = 0; i < 16; i++) v->buf[i] = (char)0xAA;
    v->handler();
    return g_flag;
}
""")


def adjacent_direct_stack() -> str:
    """Direct loop smash of an adjacent stack function pointer (register
    bounds intact: the attack MPX does catch)."""
    return _PRELUDE + r"""
int main() {
    char buf[24];
    fnptr handler[1];
    handler[0] = benign;
    int delta = (int)(((uint)handler & 0xFFFFFFFF) - ((uint)buf & 0xFFFFFFFF));
    if (delta < 0 || delta > 512) return 0;
    uint evil_addr = (uint)evil;
    for (int i = 0; i < delta + 8; i++) {
        char byte = (char)0xAA;
        if (i >= delta) byte = (char)(evil_addr >> ((i - delta) * 8));
        buf[i] = byte;
    }
    handler[0]();
    return g_flag;
}
"""


def adjacent_direct_heap() -> str:
    """Contiguous heap overflow from one allocation into the next."""
    return _PRELUDE + r"""
int main() {
    char *a = (char*)malloc(24);
    char *b = (char*)malloc(24);
    b[0] = (char)0x00;
    int delta = (int)(((uint)b & 0xFFFFFFFF) - ((uint)a & 0xFFFFFFFF));
    if (delta < 0 || delta > 512) return 0;
    for (int i = 0; i <= delta; i++) a[i] = (char)0x41;
    if ((b[0] & 255) == 0x41) return 1;
    return 0;
}
"""


def adjacent_twin() -> str:
    """Benign twin: fill both heap objects fully, in bounds."""
    return _PRELUDE + r"""
int main() {
    char *a = (char*)malloc(24);
    char *b = (char*)malloc(24);
    for (int i = 0; i < 24; i++) a[i] = (char)0x41;
    for (int i = 0; i < 24; i++) b[i] = (char)0x42;
    if ((a[23] & 255) == 0x41 && (b[23] & 255) == 0x42) return 0;
    return 1;
}
"""


def laundered(location: str) -> str:
    """Adjacent-object funcptr smash through an integer-laundered pointer:
    strips MPX's register bounds, SGXBounds' in-pointer tag survives."""
    if location == "heap":
        setup = """
    char *buf = (char*)malloc(24);
    char *tgt = (char*)malloc(24);
    fnptr *handler = (fnptr*)tgt;
"""
    else:   # stack
        setup = """
    char sbuf[24];
    fnptr shandler[1];
    char *buf = sbuf;
    fnptr *handler = shandler;
"""
    return (_PRELUDE + "uint g_slot;\n" + f"""
int main() {{
{setup}
    handler[0] = benign;
    int delta = (int)(((uint)handler & 0xFFFFFFFF) - ((uint)buf & 0xFFFFFFFF));
    if (delta < 0 || delta > 512) return 0;
    uint evil_addr = (uint)evil;
    g_slot = (uint)buf;
    char *lp = (char*)g_slot;
    for (int i = 0; i < delta + 8; i++) {{
        char byte = (char)0xAA;
        if (i >= delta) byte = (char)(evil_addr >> ((i - delta) * 8));
        lp[i] = byte;
    }}
    handler[0]();
    return g_flag;
}}
""")


def laundered_twin() -> str:
    """Benign twin: the same int-laundering round trip, all accesses in
    bounds — a scheme that loses track of a laundered pointer must *allow*
    this, not flag it (the false-positive direction of the MPX bug)."""
    return _PRELUDE + "uint g_slot;\n" + r"""
int main() {
    char *buf = (char*)malloc(24);
    g_slot = (uint)buf;
    char *lp = (char*)g_slot;
    for (int i = 0; i < 24; i++) lp[i] = (char)0xAA;
    if ((buf[23] & 255) == 0xAA) return 0;
    return 1;
}
"""


def off_by_n(n: int, probe_readback: bool = True) -> str:
    """Write exactly ``n`` bytes past a 24-byte heap object.

    For small ``n`` the spill lands inside allocator padding: nothing an
    *object-unaware* scheme can see (Baggy's power-of-two blocks make it
    blind by construction), while object-granularity bounds flag the very
    first byte.  Success is the spilled bytes reading back intact."""
    body = f"""
    char *a = (char*)malloc(24);
    a[23] = (char)0x11;
    for (int i = 24; i < 24 + {n}; i++) a[i] = (char)0x41;
"""
    if probe_readback:
        body += f"    if ((a[24 + {n} - 1] & 255) == 0x41) return 1;\n"
    return _PRELUDE + "int main() {" + body + "    return 0;\n}\n"


def off_by_n_twin() -> str:
    """Benign twin: write exactly the last in-bounds byte."""
    return _PRELUDE + r"""
int main() {
    char *a = (char*)malloc(24);
    for (int i = 0; i < 24; i++) a[i] = (char)0x41;
    if ((a[23] & 255) == 0x41) return 0;
    return 1;
}
"""


def underflow_read_jump() -> str:
    """Pointer-underflow read jumping backwards into an earlier, valid
    allocation (a secret).  Shadow-memory schemes pass it — the target
    bytes are addressable — while bounds-carrying schemes see the access
    leave the derived object."""
    return _PRELUDE + r"""
int main() {
    char *secret = (char*)malloc(16);
    for (int i = 0; i < 16; i++) secret[i] = (char)0x53;
    char *buf = (char*)malloc(16);
    int delta = (int)(((uint)buf & 0xFFFFFFFF) - ((uint)secret & 0xFFFFFFFF));
    if (delta < 8 || delta > 4096) return 0;
    int back = 0 - delta;
    if ((buf[back] & 255) == 0x53) return 1;
    return 0;
}
"""


def underflow_write() -> str:
    """Pointer-underflow write clobbering the tail of the previous
    allocation."""
    return _PRELUDE + r"""
int main() {
    char *victim = (char*)malloc(16);
    victim[15] = (char)0x11;
    char *buf = (char*)malloc(16);
    int delta = (int)(((uint)buf & 0xFFFFFFFF) - ((uint)victim & 0xFFFFFFFF));
    if (delta < 8 || delta > 4096) return 0;
    int back = 15 - delta;
    buf[back] = (char)0x41;
    if ((victim[15] & 255) == 0x41) return 1;
    return 0;
}
"""


def underflow_twin() -> str:
    """Benign twin: read exactly the first in-bounds byte."""
    return _PRELUDE + r"""
int main() {
    char *buf = (char*)malloc(16);
    buf[0] = (char)0x53;
    if ((buf[0] & 255) == 0x53) return 0;
    return 1;
}
"""


def uaf_read() -> str:
    """Use-after-free read: the freed block is recycled into a fresh
    allocation holding a secret; the stale pointer reads it.  Quarantine +
    shadow poisoning (ASan) catch this; pure bounds schemes do not —
    SGXBounds explicitly leaves temporal safety out of scope (§3.2)."""
    return _PRELUDE + r"""
int main() {
    char *p = (char*)malloc(24);
    p[0] = (char)0x11;
    free(p);
    char *q = (char*)malloc(24);
    for (int i = 0; i < 24; i++) q[i] = (char)0x53;
    if ((p[0] & 255) == 0x53) return 1;
    return 0;
}
"""


def double_free() -> str:
    """Double free: allocator hardening turns this into a deterministic
    abort everywhere; ASan's quarantine reports it as such too."""
    return _PRELUDE + r"""
int main() {
    char *p = (char*)malloc(24);
    p[0] = (char)0x11;
    free(p);
    free(p);
    return 1;
}
"""


def temporal_twin() -> str:
    """Benign twin: free then use the *new* allocation only."""
    return _PRELUDE + r"""
int main() {
    char *p = (char*)malloc(24);
    p[0] = (char)0x11;
    free(p);
    char *q = (char*)malloc(24);
    q[0] = (char)0x22;
    if ((q[0] & 255) == 0x22) return 0;
    return 1;
}
"""


# -- catalog ----------------------------------------------------------------

def _program(name: str, attack_class: str, label: str, source: str,
             **params) -> AttackSpec:
    return AttackSpec(name=name, attack_class=attack_class, kind="program",
                      success_label=label, source=source,
                      params=tuple(sorted(params.items())))


def _interface(name: str, label: str, app: str,
               requests: Tuple[bytes, ...], leak_marker: bytes = b"",
               **params) -> AttackSpec:
    return AttackSpec(name=name, attack_class="interface", kind="interface",
                      success_label=label, app=app, requests=requests,
                      leak_marker=leak_marker,
                      params=tuple(sorted(params.items())))


def compile_catalog() -> Tuple[AttackSpec, ...]:
    """Expand every attack template across its parameter grid."""
    specs: List[AttackSpec] = [
        # in-struct: object-granularity blind spot (Table 4's 8 misses).
        _program("instruct_stack_funcptr", "in-struct", HIJACK,
                 in_struct("stack", "funcptr"),
                 location="stack", target="funcptr"),
        _program("instruct_heap_auth", "in-struct", CORRUPTION,
                 in_struct("heap", "auth"), location="heap", target="auth"),
        # adjacent-direct: register bounds intact — everything should fire.
        _program("direct_stack_funcptr", "adjacent-direct", HIJACK,
                 adjacent_direct_stack(), location="stack"),
        _program("direct_heap_neighbour", "adjacent-direct", CORRUPTION,
                 adjacent_direct_heap(), location="heap"),
        # laundered: the int<->pointer cast that blinds MPX, not SGXBounds.
        _program("laundered_heap_funcptr", "adjacent-laundered", HIJACK,
                 laundered("heap"), location="heap"),
        _program("laundered_stack_funcptr", "adjacent-laundered", HIJACK,
                 laundered("stack"), location="stack"),
        # off-by-N: boundary precision, incl. Baggy's padding blind spot.
        _program("offby1_heap_pad", "off-by-n", CORRUPTION, off_by_n(1), n=1),
        _program("offby8_heap_pad", "off-by-n", CORRUPTION, off_by_n(8), n=8),
        # underflow: backwards out of bounds.
        _program("underflow_read_jump", "underflow", INFO_LEAK,
                 underflow_read_jump(), direction="read"),
        _program("underflow_write", "underflow", CORRUPTION,
                 underflow_write(), direction="write"),
        # temporal: out of scope for pure bounds checking.
        _program("uaf_read_recycled", "temporal", INFO_LEAK, uaf_read()),
        _program("double_free", "temporal", CORRUPTION, double_free()),
        # interface: TeeRex-style hostile requests at the enclave boundary.
        _interface("iface_memcached_auth", CORRUPTION, "memcached",
                   (memcached.cve_2011_4971_request(claimed=300),),
                   claimed=300),
        _interface("iface_memcached_auth_dos", CORRUPTION, "memcached",
                   (memcached.cve_2011_4971_request(claimed=2000),),
                   claimed=2000),
        _interface("iface_apache_heartbleed", INFO_LEAK, "apache",
                   (apache.heartbleed_request(claimed=2048),),
                   leak_marker=b"S" * 8, claimed=2048),
        _interface("iface_nginx_chunk", HIJACK, "nginx",
                   (nginx.cve_2013_2028_request(claimed=80),), claimed=80),
    ]
    return tuple(specs)


def compile_twins() -> Tuple[AttackSpec, ...]:
    """Benign boundary twins, one (or more) per attack class."""
    twins: List[AttackSpec] = [
        _program("twin_in_struct", "in-struct", CORRUPTION, in_struct_twin()),
        _program("twin_adjacent", "adjacent-direct", CORRUPTION,
                 adjacent_twin()),
        _program("twin_laundered", "adjacent-laundered", CORRUPTION,
                 laundered_twin()),
        _program("twin_off_by_n", "off-by-n", CORRUPTION, off_by_n_twin()),
        _program("twin_underflow", "underflow", INFO_LEAK, underflow_twin()),
        _program("twin_temporal", "temporal", CORRUPTION, temporal_twin()),
        _interface("twin_memcached_auth", CORRUPTION, "memcached",
                   (memcached.make_request(3, b"user", b"B" * 16),)),
        _interface("twin_apache_heartbeat", INFO_LEAK, "apache",
                   (apache.heartbeat(b"ping-000"),)),
        _interface("twin_nginx_chunk", HIJACK, "nginx",
                   (nginx.chunk_request(b"d" * 32),)),
    ]
    return tuple(twins)


def by_class(specs: Tuple[AttackSpec, ...]) -> Dict[str, List[AttackSpec]]:
    out: Dict[str, List[AttackSpec]] = {}
    for spec in specs:
        out.setdefault(spec.attack_class, []).append(spec)
    return out
