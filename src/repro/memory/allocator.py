"""Heap allocators for the simulated enclave.

Three allocators cover the allocation patterns the paper's workloads exercise:

* :class:`FreeListAllocator` — the default ``malloc``: segregated free lists
  over a brk-grown heap, with an mmap path for large blocks.  Per-scheme
  runtimes wrap it (SGXBounds appends 4 bytes of metadata, ASan adds
  redzones and a quarantine, …).
* :class:`MmapAllocator` — page-granular allocations in the mmap region;
  also used directly by MPX bounds tables, the boundless-memory overlay and
  the Apache-like pool allocator (whose page-aligned requests are what make
  SGXBounds' extra 4 bytes cost a whole page — paper §7).
* :class:`BuddyAllocator` — power-of-two allocation bounds, the mechanism
  behind the Baggy Bounds baseline we implement as an extension (§2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DoubleFree, OutOfMemory
from repro.memory.address_space import AddressSpace, PERM_RW
from repro.memory.layout import (
    HEAP_BASE,
    HEAP_LIMIT,
    MMAP_BASE,
    MMAP_LIMIT,
    PAGE_SIZE,
    align_up,
    page_align_up,
)

#: Allocations at or above this go straight to the mmap region.
MMAP_THRESHOLD = 128 * 1024

#: Heap pages are mapped in chunks of this size to bound mapping churn.
_BRK_CHUNK = 64 * 1024

_MIN_BLOCK = 16


def _size_class(size: int) -> int:
    """Smallest power-of-two block size that fits ``size`` bytes."""
    block = _MIN_BLOCK
    while block < size:
        block <<= 1
    return block


class MmapAllocator:
    """Page-granular allocator over the mmap region.

    Freed ranges are unmapped and recycled first-fit, so address space is
    reused but ``reserved_bytes`` genuinely shrinks on free — matching how
    the paper measures virtual-memory footprints.
    """

    def __init__(self, space: AddressSpace, base: int = MMAP_BASE,
                 limit: int = MMAP_LIMIT):
        self._space = space
        self._base = base
        self._limit = limit
        self._cursor = base
        self._holes: List[Tuple[int, int]] = []   # (addr, size), sorted by addr
        self._live: Dict[int, int] = {}

    def alloc(self, size: int, name: str = "mmap") -> int:
        """Map and return ``size`` (page-rounded) bytes of zeroed memory."""
        size = page_align_up(max(size, 1))
        for i, (addr, hole) in enumerate(self._holes):
            if hole >= size:
                if hole == size:
                    self._holes.pop(i)
                else:
                    self._holes[i] = (addr + size, hole - size)
                self._space.map(addr, size, PERM_RW, name)
                self._live[addr] = size
                return addr
        if self._cursor + size > self._limit:
            raise OutOfMemory(size, "mmap region exhausted")
        addr = self._cursor
        self._cursor += size
        self._space.map(addr, size, PERM_RW, name)
        self._live[addr] = size
        return addr

    def free(self, addr: int) -> None:
        """Unmap a previous :meth:`alloc`."""
        size = self._live.pop(addr, None)
        if size is None:
            raise DoubleFree(addr)
        self._space.unmap(addr, size)
        self._holes.append((addr, size))
        self._holes.sort()

    def size_of(self, addr: int) -> Optional[int]:
        return self._live.get(addr)


class FreeListAllocator:
    """Segregated-free-list ``malloc`` over a brk-grown heap.

    Allocation metadata lives in Python dictionaries, not in simulated
    memory: heap overflows in the simulated program therefore corrupt
    *neighbouring objects* (the attack the paper defends against), never the
    allocator itself.
    """

    def __init__(self, space: AddressSpace, base: int = HEAP_BASE,
                 limit: int = HEAP_LIMIT):
        self._space = space
        self._base = base
        self._limit = limit
        self._brk = base              # next unallocated heap byte
        self._mapped_end = base       # heap is mapped up to here
        self._free: Dict[int, List[int]] = {}
        self._live: Dict[int, int] = {}       # addr -> requested size
        self._block: Dict[int, int] = {}      # addr -> block (class) size
        self.mmap = MmapAllocator(space)
        self.total_allocs = 0
        self.total_frees = 0

    # -- internal -------------------------------------------------------
    def _grow_heap_to(self, end: int) -> None:
        if end <= self._mapped_end:
            return
        if end > self._limit:
            raise OutOfMemory(end - self._brk, "heap limit reached")
        new_end = min(self._limit, align_up(end, _BRK_CHUNK))
        self._space.map(self._mapped_end, new_end - self._mapped_end,
                        PERM_RW, "heap")
        self._mapped_end = new_end

    # -- public ---------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the address (never 0)."""
        if size <= 0:
            size = 1
        self.total_allocs += 1
        if size >= MMAP_THRESHOLD:
            addr = self.mmap.alloc(size, "malloc-large")
            self._live[addr] = size
            self._block[addr] = page_align_up(size)
            return addr
        block = _size_class(size)
        bucket = self._free.get(block)
        if bucket:
            addr = bucket.pop()
        else:
            addr = align_up(self._brk, _MIN_BLOCK)
            self._grow_heap_to(addr + block)
            self._brk = addr + block
        self._live[addr] = size
        self._block[addr] = block
        return addr

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        addr = self.malloc(total)
        self._space.fill(addr, 0, total)
        return addr

    def realloc(self, addr: int, size: int) -> int:
        if addr == 0:
            return self.malloc(size)
        old_size = self._live.get(addr)
        if old_size is None:
            raise DoubleFree(addr)
        if size <= self._block[addr] and self._block[addr] < MMAP_THRESHOLD:
            self._live[addr] = size
            return addr
        new = self.malloc(size)
        self._space.write(new, self._space.read(addr, min(old_size, size)))
        self.free(addr)
        return new

    def free(self, addr: int) -> None:
        if addr == 0:
            return
        size = self._live.pop(addr, None)
        if size is None:
            raise DoubleFree(addr)
        self.total_frees += 1
        block = self._block.pop(addr)
        if size >= MMAP_THRESHOLD:
            self.mmap.free(addr)
            return
        self._free.setdefault(block, []).append(addr)

    def usable_size(self, addr: int) -> Optional[int]:
        """Requested size of a live allocation, or None."""
        return self._live.get(addr)

    def is_live(self, addr: int) -> bool:
        return addr in self._live

    def live_bytes(self) -> int:
        return sum(self._live.values())

    def heap_bytes(self) -> int:
        """Bytes of heap address space consumed so far (brk high-water)."""
        return self._mapped_end - self._base


class BuddyAllocator:
    """Power-of-two buddy allocator over a dedicated arena.

    Used by the Baggy-Bounds-style extension scheme: every object's
    *allocation* bounds become its power-of-two block, so base and size are
    derivable from the pointer alone (paper §2.2).
    """

    MIN_ORDER = 4    # 16-byte minimum block

    #: Buddy arenas live at the very top of the mmap region, above the
    #: addresses the first-fit :class:`MmapAllocator` hands out in practice.
    ARENA_TOP = MMAP_LIMIT

    def __init__(self, space: AddressSpace, arena_size: int = 8 * 1024 * 1024,
                 top: int = 0):
        arena_size = 1 << (arena_size - 1).bit_length()
        self._space = space
        self._size = arena_size
        self._base = (top or self.ARENA_TOP) - arena_size
        space.map(self._base, arena_size, PERM_RW, "buddy-arena")
        self._max_order = arena_size.bit_length() - 1
        self._free: Dict[int, List[int]] = {self._max_order: [self._base]}
        self._live: Dict[int, int] = {}   # addr -> order

    @property
    def base(self) -> int:
        return self._base

    def _order_for(self, size: int) -> int:
        order = max(self.MIN_ORDER, (max(size, 1) - 1).bit_length())
        if (1 << order) < size:
            order += 1
        return order

    def alloc(self, size: int) -> int:
        """Allocate a power-of-two block of at least ``size`` bytes."""
        order = self._order_for(size)
        current = order
        while current <= self._max_order and not self._free.get(current):
            current += 1
        if current > self._max_order:
            raise OutOfMemory(size, "buddy arena exhausted")
        addr = self._free[current].pop()
        while current > order:
            current -= 1
            buddy = addr + (1 << current)
            self._free.setdefault(current, []).append(buddy)
        self._live[addr] = order
        return addr

    def free(self, addr: int) -> None:
        order = self._live.pop(addr, None)
        if order is None:
            raise DoubleFree(addr)
        while order < self._max_order:
            buddy = self._base + ((addr - self._base) ^ (1 << order))
            bucket = self._free.get(order, [])
            if buddy in bucket:
                bucket.remove(buddy)
                addr = min(addr, buddy)
                order += 1
            else:
                break
        self._free.setdefault(order, []).append(addr)

    def block_bounds(self, addr: int) -> Tuple[int, int]:
        """(base, size) of the power-of-two block containing ``addr``."""
        for base, order in self._live.items():
            size = 1 << order
            if base <= addr < base + size:
                return base, size
        raise KeyError(f"0x{addr:08x} not in any live buddy block")


class PoolAllocator:
    """Apache-apr-style pool: page-aligned chunks, bump allocation, bulk free.

    The paper attributes Apache's 50% SGXBounds memory increase to this
    pattern: the pool requests page-aligned amounts, so 4 extra metadata
    bytes force an entire extra page.
    """

    def __init__(self, mmap: MmapAllocator, chunk_size: int = PAGE_SIZE,
                 overhead: int = 0):
        self._mmap = mmap
        self._chunk_size = chunk_size
        self._overhead = overhead    # per-chunk metadata a scheme appends
        self._chunks: List[int] = []
        self._cursor = 0
        self._chunk_end = 0

    def alloc(self, size: int) -> int:
        """Bump-allocate ``size`` bytes from the current chunk."""
        size = align_up(size, 8)
        if self._cursor + size > self._chunk_end:
            want = max(self._chunk_size, size) + self._overhead
            chunk = self._mmap.alloc(want, "pool-chunk")
            self._chunks.append(chunk)
            self._cursor = chunk
            self._chunk_end = chunk + max(self._chunk_size, size)
        addr = self._cursor
        self._cursor += size
        return addr

    def clear(self) -> None:
        """Release every chunk (apr_pool_destroy)."""
        for chunk in self._chunks:
            self._mmap.free(chunk)
        self._chunks.clear()
        self._cursor = 0
        self._chunk_end = 0

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)
