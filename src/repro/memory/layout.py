"""Address-space layout constants for the simulated 32-bit enclave.

SGXBounds relies on the enclave's virtual address space starting at 0x0 and
fitting in 32 bits (paper §3.1, §5.1): the low 32 bits of a 64-bit register
hold the pointer, the high 32 bits the upper bound.  This module pins down
where each region of the simulated enclave lives.

The last 4 KiB page of the address space is a guard page, marked
unaddressable so that hoisted loop bounds checks remain sound under integer
over/underflow of the loop counter (paper §4.4).
"""

from __future__ import annotations

PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1

ADDRESS_BITS = 32
ADDRESS_SPACE_SIZE = 1 << ADDRESS_BITS
ADDRESS_MASK = ADDRESS_SPACE_SIZE - 1

WORD_SIZE = 8          # registers are 64-bit
POINTER_SIZE = 8       # pointers occupy 8 bytes in memory (tagged or not)
BOUND_TAG_SHIFT = 32   # upper bound lives in bits [32, 64)

#: Page 0 is never mapped: null-pointer dereferences fault.
NULL_REGION_END = PAGE_SIZE

#: Functions are assigned fake "code addresses" in this region; it is never
#: memory-backed.  Indirect calls and return addresses are validated against
#: the code-address table, so a corrupted code pointer is detectable.
CODE_BASE = 0x0000_1000
CODE_LIMIT = 0x0010_0000
CODE_SLOT = 16         # each function occupies one 16-byte slot

#: Global variables.
GLOBALS_BASE = 0x0010_0000
GLOBALS_LIMIT = 0x0040_0000

#: brk-managed heap (grows upward).
HEAP_BASE = 0x0040_0000
HEAP_LIMIT = 0x2000_0000

#: AddressSanitizer's shadow region (1/8 of the 4 GiB space = 512 MiB),
#: matching the 32-bit ASan layout the paper forces (§5.2).
ASAN_SHADOW_BASE = 0x2000_0000
ASAN_SHADOW_SIZE = ADDRESS_SPACE_SIZE // 8          # 512 MiB
ASAN_SHADOW_LIMIT = ASAN_SHADOW_BASE + ASAN_SHADOW_SIZE
ASAN_SHADOW_SCALE = 3                               # 1 shadow byte per 8 bytes

#: mmap region for large allocations, bounds tables, pools, overlay chunks.
MMAP_BASE = 0x4000_0000
MMAP_LIMIT = 0xF000_0000

#: Per-thread stacks grow downward from just below the guard page.
STACK_REGION_BASE = 0xF000_0000
STACK_TOP = 0xFFFF_F000
DEFAULT_STACK_SIZE = 256 * 1024

#: The unaddressable guard page (paper §4.4).
GUARD_PAGE_BASE = 0xFFFF_F000


def page_index(address: int) -> int:
    """Index of the page containing ``address``."""
    return address >> PAGE_SHIFT


def page_base(address: int) -> int:
    """Base address of the page containing ``address``."""
    return address & ~PAGE_MASK


def page_align_up(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_MASK) & ~PAGE_MASK


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def in_code_region(address: int) -> bool:
    """Whether ``address`` denotes a function code slot."""
    return CODE_BASE <= address < CODE_LIMIT
