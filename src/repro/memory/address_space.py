"""Sparse, paged, byte-addressable 32-bit address space.

This is the memory substrate underneath the whole reproduction: the VM's
loads and stores, the allocators, ASan's shadow memory and MPX's bounds
tables all live here.  Pages are materialized lazily (a 4 GiB space costs
nothing until touched), and an optional ``tracer`` lets the SGX model observe
every access to charge cache/EPC costs.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.errors import GuardPageFault, OutOfMemory, SegmentationFault
from repro.memory.layout import (
    ADDRESS_MASK,
    ADDRESS_SPACE_SIZE,
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    page_align_up,
)

PERM_NONE = 0
PERM_READ = 1
PERM_WRITE = 2
PERM_RW = PERM_READ | PERM_WRITE
#: A guard page is mapped (reserves address space) but faults on any access.
PERM_GUARD = 4

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


class Region:
    """A named, contiguous mapping — bookkeeping for diagnostics and stats."""

    __slots__ = ("name", "start", "size", "perms")

    def __init__(self, name: str, start: int, size: int, perms: int):
        self.name = name
        self.start = start
        self.size = size
        self.perms = perms

    @property
    def end(self) -> int:
        return self.start + self.size

    def __repr__(self) -> str:
        return f"Region({self.name!r}, 0x{self.start:08x}..0x{self.end:08x})"


class AddressSpace:
    """Byte-addressable sparse memory with page permissions.

    ``reserved_bytes`` tracks mapped virtual memory — the metric the paper
    reports ("maximum amount of reserved virtual memory", §6.1) — and
    ``peak_reserved`` its high-water mark.
    """

    def __init__(self, commit_limit: int = 0) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._perms: Dict[int, int] = {}
        self.regions: List[Region] = []
        self.reserved_bytes = 0
        self.peak_reserved = 0
        #: Maximum *materialized* (committed) bytes; 0 = unlimited.  This is
        #: how a metadata-hungry scheme (MPX bounds tables) "crashes due to
        #: insufficient memory" inside an enclave (paper Fig. 1, Fig. 7).
        self.commit_limit = commit_limit
        #: Optional hook called as ``tracer(address, size, is_write)`` on
        #: every data access; installed by the SGX cost model.
        self.tracer: Optional[Callable[[int, int, bool], None]] = None

    # ------------------------------------------------------------------
    # Mapping management
    # ------------------------------------------------------------------
    def map(self, start: int, size: int, perms: int = PERM_RW,
            name: str = "anon") -> Region:
        """Map ``size`` bytes (page-rounded) at page-aligned ``start``."""
        if start & PAGE_MASK:
            raise ValueError(f"unaligned mapping at 0x{start:08x}")
        size = page_align_up(size)
        if size <= 0:
            raise ValueError("mapping size must be positive")
        if start + size > ADDRESS_SPACE_SIZE:
            raise OutOfMemory(size, "mapping beyond 32-bit address space")
        first = start >> PAGE_SHIFT
        count = size >> PAGE_SHIFT
        for idx in range(first, first + count):
            if idx in self._perms:
                raise OutOfMemory(size, f"page 0x{idx << PAGE_SHIFT:08x} already mapped")
        for idx in range(first, first + count):
            self._perms[idx] = perms
        region = Region(name, start, size, perms)
        self.regions.append(region)
        self.reserved_bytes += size
        if self.reserved_bytes > self.peak_reserved:
            self.peak_reserved = self.reserved_bytes
        return region

    def unmap(self, start: int, size: int) -> None:
        """Unmap a previously mapped page range, releasing its backing."""
        if start & PAGE_MASK:
            raise ValueError(f"unaligned unmap at 0x{start:08x}")
        size = page_align_up(size)
        first = start >> PAGE_SHIFT
        count = size >> PAGE_SHIFT
        for idx in range(first, first + count):
            if idx not in self._perms:
                raise SegmentationFault(idx << PAGE_SHIFT, PAGE_SIZE, "unmap of unmapped page")
        for idx in range(first, first + count):
            del self._perms[idx]
            self._pages.pop(idx, None)
        self.reserved_bytes -= size
        self.regions = [
            r for r in self.regions
            if not (r.start >= start and r.end <= start + size)
        ]

    def is_mapped(self, address: int) -> bool:
        """Whether the page containing ``address`` is mapped (guards count)."""
        return (address >> PAGE_SHIFT) in self._perms

    def is_accessible(self, address: int) -> bool:
        """Whether a 1-byte read at ``address`` would succeed."""
        perms = self._perms.get(address >> PAGE_SHIFT, PERM_NONE)
        return bool(perms & PERM_READ)

    def protect(self, start: int, size: int, perms: int) -> None:
        """Change permissions of an already-mapped page range."""
        first = start >> PAGE_SHIFT
        count = page_align_up(size) >> PAGE_SHIFT
        for idx in range(first, first + count):
            if idx not in self._perms:
                raise SegmentationFault(idx << PAGE_SHIFT, PAGE_SIZE, "protect of unmapped page")
            self._perms[idx] = perms

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def _page_for(self, idx: int, write: bool, address: int, size: int) -> bytearray:
        perms = self._perms.get(idx)
        if perms is None:
            raise SegmentationFault(address, size, "write" if write else "read")
        if perms & PERM_GUARD:
            raise GuardPageFault(address, size)
        needed = PERM_WRITE if write else PERM_READ
        if not perms & needed:
            raise SegmentationFault(address, size, "write" if write else "read")
        page = self._pages.get(idx)
        if page is None:
            if self.commit_limit and \
                    (len(self._pages) + 1) * PAGE_SIZE > self.commit_limit:
                raise OutOfMemory(PAGE_SIZE, "enclave commit limit reached")
            page = bytearray(PAGE_SIZE)
            self._pages[idx] = page
        return page

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` raw bytes, handling page-boundary crossings."""
        address &= ADDRESS_MASK
        if self.tracer is not None:
            self.tracer(address, size, False)
        offset = address & PAGE_MASK
        idx = address >> PAGE_SHIFT
        if offset + size <= PAGE_SIZE:
            page = self._page_for(idx, False, address, size)
            return bytes(page[offset:offset + size])
        out = bytearray()
        remaining = size
        cursor = address
        while remaining:
            offset = cursor & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._page_for(cursor >> PAGE_SHIFT, False, cursor, chunk)
            out += page[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes, handling page-boundary crossings."""
        address &= ADDRESS_MASK
        size = len(data)
        if self.tracer is not None:
            self.tracer(address, size, True)
        offset = address & PAGE_MASK
        idx = address >> PAGE_SHIFT
        if offset + size <= PAGE_SIZE:
            page = self._page_for(idx, True, address, size)
            page[offset:offset + size] = data
            return
        cursor = address
        taken = 0
        while taken < size:
            offset = cursor & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, size - taken)
            page = self._page_for(cursor >> PAGE_SHIFT, True, cursor, chunk)
            page[offset:offset + chunk] = data[taken:taken + chunk]
            cursor += chunk
            taken += chunk

    # ------------------------------------------------------------------
    # Typed accessors (little-endian, like x86)
    # ------------------------------------------------------------------
    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return _U16.unpack(self.read(address, 2))[0]

    def read_u32(self, address: int) -> int:
        return _U32.unpack(self.read(address, 4))[0]

    def read_u64(self, address: int) -> int:
        return _U64.unpack(self.read(address, 8))[0]

    def read_f64(self, address: int) -> float:
        return _F64.unpack(self.read(address, 8))[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes((value & 0xFF,)))

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, _U16.pack(value & 0xFFFF))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, _U32.pack(value & 0xFFFFFFFF))

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, _U64.pack(value & 0xFFFFFFFFFFFFFFFF))

    def write_f64(self, address: int, value: float) -> None:
        self.write(address, _F64.pack(value))

    def read_uint(self, address: int, size: int) -> int:
        """Read an unsigned little-endian integer of 1, 2, 4 or 8 bytes."""
        if size == 8:
            return self.read_u64(address)
        if size == 4:
            return self.read_u32(address)
        if size == 1:
            return self.read_u8(address)
        if size == 2:
            return self.read_u16(address)
        raise ValueError(f"unsupported access size {size}")

    def write_uint(self, address: int, value: int, size: int) -> None:
        """Write an unsigned little-endian integer of 1, 2, 4 or 8 bytes."""
        if size == 8:
            self.write_u64(address, value)
        elif size == 4:
            self.write_u32(address, value)
        elif size == 1:
            self.write_u8(address, value)
        elif size == 2:
            self.write_u16(address, value)
        else:
            raise ValueError(f"unsupported access size {size}")

    # ------------------------------------------------------------------
    # Bulk helpers (used by libc builtins; traced as single accesses)
    # ------------------------------------------------------------------
    def read_cstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        cursor = address
        while len(out) < limit:
            byte = self.read_u8(cursor)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        raise SegmentationFault(address, limit, "unterminated string")

    def fill(self, address: int, value: int, size: int) -> None:
        """memset-style fill."""
        self.write(address, bytes((value & 0xFF,)) * size)

    def stats(self) -> Dict[str, int]:
        """Snapshot of mapping statistics."""
        return {
            "reserved_bytes": self.reserved_bytes,
            "peak_reserved": self.peak_reserved,
            "materialized_pages": len(self._pages),
            "mapped_pages": len(self._perms),
            "regions": len(self.regions),
        }
