"""Simulated 32-bit enclave memory: address space, layout and allocators."""

from repro.memory.address_space import (
    AddressSpace,
    PERM_GUARD,
    PERM_NONE,
    PERM_READ,
    PERM_RW,
    PERM_WRITE,
    Region,
)
from repro.memory.allocator import (
    BuddyAllocator,
    FreeListAllocator,
    MMAP_THRESHOLD,
    MmapAllocator,
    PoolAllocator,
)
from repro.memory import layout

__all__ = [
    "AddressSpace",
    "Region",
    "PERM_NONE",
    "PERM_READ",
    "PERM_WRITE",
    "PERM_RW",
    "PERM_GUARD",
    "FreeListAllocator",
    "MmapAllocator",
    "BuddyAllocator",
    "PoolAllocator",
    "MMAP_THRESHOLD",
    "layout",
]
