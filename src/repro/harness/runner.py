"""Workload runner: compile → instrument → execute → collect metrics.

One :class:`RunResult` per (workload, scheme, size, threads) cell, holding
the paper's two metrics (cycles, peak reserved virtual memory) plus the
diagnostic counters of Table 3 (LLC misses, EPC page faults, #BTs).
A run that dies with ``OutOfMemory`` is recorded as crashed — that is the
"missing MPX bar" in Figures 1 and 7, not an error in the harness.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence

from repro import forensics as forensics_mod
from repro import telemetry as telemetry_mod
from repro.asan import ASanScheme
from repro.baggy import BaggyScheme
from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation, OutOfMemory, ReproError
from repro.minic import compile_source
from repro.mpx import MPXScheme
from repro.sgx import Enclave, EnclaveConfig
from repro.vm import VM
from repro.vm.scheme import SchemeRuntime
from repro.workloads import NetworkSim, Workload

#: Scheme factories by registry name; kwargs forwarded to the constructor.
SCHEMES: Dict[str, Callable[..., Optional[SchemeRuntime]]] = {
    "native": lambda **kw: None,
    "sgxbounds": SGXBoundsScheme,
    "asan": ASanScheme,
    "mpx": MPXScheme,
    "baggy": BaggyScheme,      # §2.2 extension baseline (heap protection)
}

DEFAULT_SCHEMES = ("native", "sgxbounds", "asan", "mpx")


class RunResult:
    """Metrics from one execution."""

    def __init__(self, workload: str, scheme: str, size: str, threads: int):
        self.workload = workload
        self.scheme = scheme
        self.size = size
        self.threads = threads
        self.result: Optional[int] = None
        self.crashed: Optional[str] = None     # "OOM" or exception name
        self.cycles = 0
        self.counters: Dict[str, int] = {}
        self.peak_reserved = 0
        self.scheme_report: Dict[str, int] = {}
        self.output = ""
        #: Structured context of the violation that killed the run (if any).
        self.violation: Optional[Dict] = None
        #: Resilience accounting for chaos runs (recoveries, net stats,
        #: injected faults); empty for plain runs.
        self.resilience: Dict[str, object] = {}

    @property
    def ok(self) -> bool:
        return self.crashed is None

    def __repr__(self) -> str:
        state = self.crashed or f"cycles={self.cycles}"
        return (f"RunResult({self.workload}/{self.scheme}/{self.size} "
                f"{state})")


def _finish(result: RunResult, vm: VM,
            scheme: Optional[SchemeRuntime]) -> RunResult:
    counters = vm.enclave.finalize()
    if vm.telemetry is not None and vm.fastpath_stats:
        vm.telemetry.fastpath_hits(vm.fastpath_stats)
    result.cycles = counters.cycles
    result.counters = counters.snapshot()
    result.peak_reserved = vm.enclave.memory_report()["peak_reserved_bytes"]
    if scheme is not None:
        result.scheme_report = scheme.memory_overhead_report(vm)
    result.output = vm.output()
    return result


def run_workload(workload: Workload, scheme_name: str,
                 size: Optional[str] = None, threads: Optional[int] = None,
                 config: Optional[EnclaveConfig] = None,
                 scheme_kwargs: Optional[Dict] = None,
                 max_instructions: int = 500_000_000,
                 telemetry=None, forensics=None,
                 fastpath: Optional[bool] = None) -> RunResult:
    """Run one registered suite workload under one scheme.

    ``telemetry`` attaches a :class:`repro.telemetry.Telemetry` and
    ``forensics`` a :class:`repro.forensics.Forensics`; when omitted, the
    process-wide defaults (set by CLI ``--trace-out`` / ``--metrics-out``
    / ``--log-out`` flags) apply, which are normally None.  ``fastpath``
    selects the interpreter (None = the VM's REPRO_VM_FASTPATH default).
    """
    size = size or workload.default_size
    args = workload.args_for(size, threads)
    result = RunResult(workload.name, scheme_name, size, args[1])
    scheme = SCHEMES[scheme_name](**(scheme_kwargs or {}))
    module = compile_source(workload.source, workload.name)
    module = scheme.instrument(module) if scheme else module.clone()
    module.finalize()
    enclave = Enclave(config) if config is not None else Enclave()
    telemetry = telemetry if telemetry is not None \
        else telemetry_mod.get_default()
    forensics = forensics if forensics is not None \
        else forensics_mod.get_default()
    vm = VM(enclave=enclave, scheme=scheme,
            max_instructions=max_instructions, telemetry=telemetry,
            forensics=forensics, fastpath=fastpath)
    if vm.telemetry is not None:
        vm.telemetry.label_run(f"{workload.name}/{scheme_name}/{size}")
    try:
        vm.load(module)
        result.result = vm.run("main", args)
    except OutOfMemory:
        result.crashed = "OOM"
    except ReproError as err:
        result.crashed = type(err).__name__
        if vm.forensics is not None:
            vm.forensics.capture(vm, err)
    return _finish(result, vm, scheme)


def build_server_vm(module, scheme_name: str,
                    config: Optional[EnclaveConfig] = None,
                    scheme_kwargs: Optional[Dict] = None,
                    policy: Optional[str] = None,
                    seed: Optional[int] = None, telemetry=None,
                    forensics=None, fastpath: Optional[bool] = None):
    """Shared server build path: scheme → instrument → Enclave → VM.

    ``module`` is a *compiled but uninstrumented* MiniC module; it is never
    mutated (instrumentation clones), so one compile can feed many VM
    incarnations — :mod:`repro.fleet` rebuilds crashed workers through this
    exact path.  Returns ``(vm, scheme)`` with the instrumented module
    already loaded; the caller attaches net/faults and calls ``run``.
    """
    kwargs = dict(scheme_kwargs or {})
    if policy is not None and scheme_name != "native":
        kwargs.setdefault("policy", policy)
    scheme = SCHEMES[scheme_name](**kwargs)
    instrumented = scheme.instrument(module) if scheme else module.clone()
    instrumented.finalize()
    enclave = Enclave(config) if config is not None else Enclave()
    telemetry = telemetry if telemetry is not None \
        else telemetry_mod.get_default()
    forensics = forensics if forensics is not None \
        else forensics_mod.get_default()
    vm = VM(enclave=enclave, scheme=scheme, seed=seed, telemetry=telemetry,
            forensics=forensics, fastpath=fastpath)
    vm.load(instrumented)
    return vm, scheme


def run_server(source: str, requests_by_conn: Sequence[Sequence[bytes]],
               scheme_name: str, n: int, threads: int = 1,
               config: Optional[EnclaveConfig] = None,
               scheme_kwargs: Optional[Dict] = None,
               name: str = "server", policy: Optional[str] = None,
               net: Optional[NetworkSim] = None, faults=None,
               seed: Optional[int] = None, telemetry=None,
               forensics=None, fastpath: Optional[bool] = None) -> RunResult:
    """Run a network server app: requests pre-queued per connection.

    ``policy`` selects the violation policy for protected schemes;
    ``net`` substitutes a pre-configured :class:`NetworkSim` (retries,
    backoff, seed); ``faults`` attaches a
    :class:`repro.faults.FaultInjector`; ``seed`` perturbs the VM's
    thread scheduler.  All default to the exact original behaviour.
    """
    result = RunResult(name, scheme_name, "-", threads)
    module = compile_source(source, name)
    vm, scheme = build_server_vm(module, scheme_name, config=config,
                                 scheme_kwargs=scheme_kwargs, policy=policy,
                                 seed=seed, telemetry=telemetry,
                                 forensics=forensics, fastpath=fastpath)
    vm.net = net if net is not None else NetworkSim()
    vm.faults = faults
    if vm.telemetry is not None:
        vm.telemetry.label_run(f"{name}/{scheme_name}")
        vm.net.telemetry = vm.telemetry
    if vm.forensics is not None:
        vm.net.forensics = vm.forensics
        vm.net.clock = (lambda v=vm: v.counters.instructions)
    for conn_requests in requests_by_conn:
        vm.net.connect(*conn_requests)
    try:
        result.result = vm.run("main", (n, threads))
    except OutOfMemory:
        result.crashed = "OOM"
    except ReproError as err:
        result.crashed = type(err).__name__
        if isinstance(err, BoundsViolation):
            result.violation = err.context()
        if vm.forensics is not None:
            vm.forensics.capture(vm, err)
    out = _finish(result, vm, scheme)
    out.net = vm.net
    if scheme is not None and scheme.violation_log and out.violation is None:
        out.violation = scheme.violation_log[0]
    out.resilience = {
        "dropped_requests": vm.dropped_requests,
        "recovered_requests": vm.recovered_requests,
        "violations": scheme.violations if scheme is not None else 0,
        "net": vm.net.stats(),
    }
    if faults is not None:
        out.resilience["faults"] = faults.stats()
    return out


def sweep(workloads: Sequence[Workload],
          schemes: Sequence[str] = DEFAULT_SCHEMES,
          size: Optional[str] = None, threads: Optional[int] = None,
          config: Optional[EnclaveConfig] = None,
          scheme_kwargs: Optional[Dict[str, Dict]] = None
          ) -> List[RunResult]:
    """Cartesian sweep of workloads x schemes (one size)."""
    results: List[RunResult] = []
    for workload in workloads:
        for scheme_name in schemes:
            kwargs = (scheme_kwargs or {}).get(scheme_name)
            results.append(run_workload(workload, scheme_name, size=size,
                                        threads=threads, config=config,
                                        scheme_kwargs=kwargs))
    return results


def overhead(results: Sequence[RunResult], metric: str = "cycles",
             baseline: str = "native") -> Dict[str, Dict[str, Optional[float]]]:
    """overhead[workload][scheme] = metric ratio vs the baseline scheme.

    Crashed runs map to None (the paper's missing bars); verifies that
    instrumented runs computed the same result as the baseline.  Edge
    cases degrade with a warning instead of raising: an empty result
    sequence yields an empty table, and a zero-valued baseline metric
    yields ``float('nan')`` cells (a ratio against nothing is undefined,
    not a crash).
    """
    if not results:
        warnings.warn("overhead(): empty result sequence, returning an "
                      "empty table", stacklevel=2)
        return {}
    by_cell: Dict[str, Dict[str, RunResult]] = {}
    for r in results:
        by_cell.setdefault(f"{r.workload}:{r.size}:{r.threads}", {})[r.scheme] = r
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for cell, per_scheme in by_cell.items():
        base = per_scheme.get(baseline)
        if base is None or not base.ok:
            continue
        row: Dict[str, Optional[float]] = {}
        for scheme_name, r in per_scheme.items():
            if not r.ok:
                row[scheme_name] = None
                continue
            if r.result != base.result and scheme_name != baseline:
                raise AssertionError(
                    f"{cell}: {scheme_name} computed {r.result}, "
                    f"native computed {base.result}")
            base_value = getattr(base, metric) if metric != "peak_reserved" \
                else base.peak_reserved
            value = getattr(r, metric) if metric != "peak_reserved" \
                else r.peak_reserved
            if not base_value:
                warnings.warn(
                    f"overhead(): {cell} has a zero-{metric} baseline; "
                    f"ratio is undefined (nan)", stacklevel=2)
                row[scheme_name] = float("nan")
            else:
                row[scheme_name] = value / base_value
        table[cell.split(":")[0]] = row
    return table


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's cross-benchmark aggregate.

    None, NaN and non-positive entries are skipped (crashed bars and
    undefined ratios); with nothing left the mean itself is ``nan``,
    reported with a warning instead of a ZeroDivision/Statistics error.
    """
    clean = [v for v in values if v is not None and v > 0 and v == v]
    if not clean:
        warnings.warn("geomean(): no positive finite values to aggregate; "
                      "returning nan", stacklevel=2)
        return float("nan")
    product = 1.0
    for v in clean:
        product *= v
    return product ** (1.0 / len(clean))
