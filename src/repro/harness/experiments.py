"""Experiment drivers — one per table/figure of the paper's evaluation.

Each function runs the sweep, returns the structured data, and renders the
paper-style table via ``repro.harness.report``.  Scale note: workloads and
the machine model run at roughly 1/1000 of the paper's testbed; enclave
parameters per experiment are chosen so the *ratios* (working set vs EPC,
metadata vs payload) land in the same regime as the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import report
from repro.harness.runner import (
    DEFAULT_SCHEMES,
    RunResult,
    SCHEMES,
    geomean,
    overhead,
    run_server,
    run_workload,
    sweep,
)
from repro.sgx import EnclaveConfig
from repro.workloads import by_suite, get
from repro.workloads.apps import apache, memcached, nginx, sqlite_kv
from repro.minic import compile_source
from repro.workloads.registry import Workload

#: Enclave configs per experiment regime.
FIG1_CONFIG = EnclaveConfig(epc_bytes=512 * 1024,
                            commit_limit_bytes=2 * 1024 * 1024)
FIG7_CONFIG = EnclaveConfig(epc_bytes=2 * 1024 * 1024)
FIG8_CONFIG = EnclaveConfig(epc_bytes=64 * 1024, llc_bytes=32 * 1024)
SPEC_CONFIG = EnclaveConfig(epc_bytes=1024 * 1024)
APP_CONFIG = EnclaveConfig(epc_bytes=2 * 1024 * 1024)


def _sqlite_workload() -> Workload:
    return Workload("sqlite", "apps", sqlite_kv.SOURCE,
                    sizes=sqlite_kv.SIZES, threads=1)


# ---------------------------------------------------------------------------
def fig1_sqlite(sizes: Sequence[str] = ("XS", "S", "M", "L", "XL"),
                schemes: Sequence[str] = DEFAULT_SCHEMES
                ) -> Tuple[Dict, str]:
    """Figure 1: SQLite speedtest — perf and memory vs working set."""
    workload = _sqlite_workload()
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, RunResult]] = {}
    for size in sizes:
        per: Dict[str, RunResult] = {}
        for scheme in schemes:
            per[scheme] = run_workload(workload, scheme, size=size,
                                       config=FIG1_CONFIG)
        data[size] = per
        base = per["native"]
        row: List[object] = [size]
        for scheme in schemes:
            r = per[scheme]
            row.append(None if not r.ok else r.cycles / base.cycles)
        for scheme in schemes:
            r = per[scheme]
            row.append(None if not r.ok
                       else r.peak_reserved / base.peak_reserved)
        rows.append(row)
    columns = (["size"] + [f"{s} perf" for s in schemes]
               + [f"{s} mem" for s in schemes])
    text = report.series_table(
        "Figure 1: SQLite speedtest, overheads vs native SGX "
        "(perf = cycles ratio, mem = reserved VM ratio)", columns, rows)
    return data, text


# ---------------------------------------------------------------------------
def fig7_phoenix_parsec(size: str = "XS", threads: int = 4,
                        schemes: Sequence[str] = DEFAULT_SCHEMES
                        ) -> Tuple[Dict, str]:
    """Figure 7: Phoenix + PARSEC performance and memory overheads."""
    workloads = by_suite("phoenix") + by_suite("parsec")
    results = sweep(workloads, schemes=schemes, size=size, threads=threads,
                    config=FIG7_CONFIG)
    perf = overhead(results, metric="cycles")
    mem = overhead(results, metric="peak_reserved")
    text = (report.overhead_table(
        f"Figure 7 (top): performance overhead vs native SGX "
        f"(size {size}, {threads} threads)", perf, schemes)
        + "\n\n" + report.overhead_table(
        "Figure 7 (bottom): memory overhead vs native SGX", mem, schemes))
    return {"results": results, "perf": perf, "mem": mem}, text


# ---------------------------------------------------------------------------
def fig8_working_set(names: Sequence[str] = ("kmeans", "matrix_multiply"),
                     sizes: Sequence[str] = ("XS", "S", "M", "L"),
                     schemes: Sequence[str] = DEFAULT_SCHEMES
                     ) -> Tuple[Dict, str]:
    """Figure 8 + Table 3: increasing working sets, normalized to
    SGXBounds; page faults / LLC misses / #BTs per cell."""
    chunks: List[str] = []
    data: Dict[str, Dict[str, Dict[str, RunResult]]] = {}
    for name in names:
        workload = get(name)
        rows = []
        trows = []
        data[name] = {}
        for size in sizes:
            per: Dict[str, RunResult] = {}
            for scheme in schemes:
                per[scheme] = run_workload(workload, scheme, size=size,
                                           threads=1, config=FIG8_CONFIG)
            data[name][size] = per
            sgxb = per["sgxbounds"]
            row: List[object] = [size]
            for scheme in schemes:
                r = per[scheme]
                row.append(None if not (r.ok and sgxb.ok)
                           else r.cycles / sgxb.cycles)
            rows.append(row)
            faults_sgxb = max(1, sgxb.counters.get("epc_faults", 0))
            llc_sgxb = max(1, sgxb.counters.get("llc_misses", 0))
            trows.append([
                size,
                None if not per["asan"].ok else
                per["asan"].counters["llc_misses"] / llc_sgxb,
                None if not per["mpx"].ok else
                per["mpx"].counters["llc_misses"] / llc_sgxb,
                None if not per["asan"].ok else
                per["asan"].counters["epc_faults"] / faults_sgxb,
                None if not per["mpx"].ok else
                per["mpx"].counters["epc_faults"] / faults_sgxb,
                None if not per["mpx"].ok else
                per["mpx"].scheme_report.get("bounds_tables", 0),
            ])
        chunks.append(report.series_table(
            f"Figure 8: {name} — cycles normalized to SGXBounds",
            ["size"] + list(schemes), rows))
        chunks.append(report.series_table(
            f"Table 3: {name} — metadata diagnostics (ratios vs SGXBounds)",
            ["size", "ASan LLCx", "MPX LLCx", "ASan PFx", "MPX PFx",
             "# of BTs"], trows))
    return data, "\n\n".join(chunks)


# ---------------------------------------------------------------------------
def fig9_multithreading(size: str = "XS",
                        thread_counts: Sequence[int] = (1, 4),
                        schemes: Sequence[str] = ("asan", "sgxbounds")
                        ) -> Tuple[Dict, str]:
    """Figure 9: ASan vs SGXBounds overheads at 1 and 4 threads."""
    workloads = [w for w in by_suite("phoenix") + by_suite("parsec")
                 if w.threads > 1]
    chunks = []
    data = {}
    for threads in thread_counts:
        results = sweep(workloads, schemes=("native",) + tuple(schemes),
                        size=size, threads=threads, config=FIG7_CONFIG)
        perf = overhead(results, metric="cycles")
        data[threads] = perf
        chunks.append(report.overhead_table(
            f"Figure 9: performance overhead vs native SGX "
            f"({threads} thread(s))", perf, schemes))
    return data, "\n\n".join(chunks)


# ---------------------------------------------------------------------------
OPT_VARIANTS = {
    "no-opt": {"optimize_safe": False, "optimize_hoist": False},
    "safe": {"optimize_safe": True, "optimize_hoist": False},
    "hoist": {"optimize_safe": False, "optimize_hoist": True},
    "all-opt": {"optimize_safe": True, "optimize_hoist": True},
}


def fig10_optimizations(size: str = "XS", threads: int = 1,
                        names: Optional[Sequence[str]] = None
                        ) -> Tuple[Dict, str]:
    """Figure 10: SGXBounds overhead under each optimization setting."""
    workloads = ([get(n) for n in names] if names
                 else by_suite("phoenix") + by_suite("parsec"))
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for workload in workloads:
        base = run_workload(workload, "native", size=size, threads=threads,
                            config=FIG7_CONFIG)
        row: Dict[str, Optional[float]] = {}
        for label, kwargs in OPT_VARIANTS.items():
            r = run_workload(workload, "sgxbounds", size=size,
                             threads=threads, config=FIG7_CONFIG,
                             scheme_kwargs=kwargs)
            if r.result != base.result:
                raise AssertionError(f"{workload.name}/{label}: result "
                                     f"mismatch vs native")
            row[label] = r.cycles / base.cycles if r.ok and base.ok else None
        table[workload.name] = row
    text = report.overhead_table(
        f"Figure 10: SGXBounds overhead vs native SGX per optimization "
        f"(size {size})", table, list(OPT_VARIANTS))
    return table, text


# ---------------------------------------------------------------------------
def tab4_ripe() -> Tuple[Dict, str]:
    """Table 4: RIPE — attacks prevented per scheme."""
    from repro.workloads import ripe
    factories = {name: (lambda f=factory: f()) for name, factory in
                 [("native", lambda: None)] +
                 [(n, SCHEMES[n]) for n in ("mpx", "asan", "sgxbounds")]}
    table = ripe.ripe_table(factories)
    rows = []
    for scheme in ("mpx", "asan", "sgxbounds"):
        prevented = ripe.prevented_count(table[scheme])
        missing = sorted(a for a, o in table[scheme].items()
                         if o != ripe.PREVENTED and
                         table["native"][a] == ripe.SUCCEEDED)
        note = ("except in-struct overflows"
                if all(m.startswith("instruct") or "laundered" not in m
                       for m in missing) and prevented == 8
                else "misses laundered + in-struct attacks")
        rows.append([scheme, f"{prevented}/16", note])
    text = report.series_table("Table 4: RIPE security benchmark",
                               ["approach", "prevented", "notes"], rows)
    return table, text


# ---------------------------------------------------------------------------
def fig11_spec_sgx(size: str = "XS",
                   schemes: Sequence[str] = DEFAULT_SCHEMES
                   ) -> Tuple[Dict, str]:
    """Figure 11: SPEC inside the enclave — perf and memory."""
    results = sweep(by_suite("spec"), schemes=schemes, size=size,
                    threads=1, config=SPEC_CONFIG)
    perf = overhead(results, metric="cycles")
    mem = overhead(results, metric="peak_reserved")
    text = (report.overhead_table(
        f"Figure 11 (top): SPEC in-enclave performance overhead "
        f"(size {size})", perf, schemes)
        + "\n\n" + report.overhead_table(
        "Figure 11 (bottom): SPEC in-enclave memory overhead", mem, schemes))
    return {"perf": perf, "mem": mem}, text


def fig12_spec_native(size: str = "XS",
                      schemes: Sequence[str] = DEFAULT_SCHEMES
                      ) -> Tuple[Dict, str]:
    """Figure 12: SPEC outside the enclave (unconstrained memory)."""
    results = sweep(by_suite("spec"), schemes=schemes, size=size,
                    threads=1, config=SPEC_CONFIG.outside_sgx())
    perf = overhead(results, metric="cycles")
    text = report.overhead_table(
        f"Figure 12: SPEC outside the enclave, performance overhead "
        f"(size {size})", perf, schemes)
    return {"perf": perf}, text


# ---------------------------------------------------------------------------
_APP_TABLE = {
    "memcached": (memcached, False),
    "apache": (apache, True),     # multi-threaded: one conn per worker
    "nginx": (nginx, False),
}


def fig13_case_studies(n: str = "S", clients: Sequence[int] = (1, 2, 4),
                       schemes: Sequence[str] = DEFAULT_SCHEMES
                       ) -> Tuple[Dict, str]:
    """Figure 13: server case studies — throughput/latency + peak memory."""
    chunks = []
    data: Dict[str, Dict] = {}
    mem_rows = []
    for app_name, (mod, threaded) in _APP_TABLE.items():
        rows = []
        data[app_name] = {}
        for scheme in schemes:
            best_tput = 0.0
            best_mem = 0
            for nclients in (clients if threaded else clients[:1]):
                count = mod.SIZES[n]
                requests = mod.workload(count)
                if threaded:
                    per = count // nclients
                    by_conn = [requests[i * per:(i + 1) * per]
                               for i in range(nclients)]
                    threads = nclients
                else:
                    by_conn = [requests]
                    threads = 1
                r = run_server(mod.SOURCE, by_conn, scheme, count,
                               threads=threads, config=APP_CONFIG,
                               name=app_name)
                served = r.result if r.ok else 0
                tput = served / r.cycles * 1e6 if r.ok and r.cycles else 0.0
                latency = r.cycles / served / 1000 if served else None
                rows.append([scheme, nclients, None if not r.ok else tput,
                             latency, r.crashed or "ok"])
                if tput > best_tput:
                    best_tput = tput
                    best_mem = r.peak_reserved
            mem_rows.append([app_name, scheme, best_mem / 1024.0])
            data[app_name][scheme] = (best_tput, best_mem)
        chunks.append(report.series_table(
            f"Figure 13 ({app_name}): throughput (req/Mcycle) and latency "
            f"(kcycles/req)", ["scheme", "clients", "tput", "latency",
                               "status"], rows))
    chunks.append(report.series_table(
        "Figure 13 (right): memory usage (KiB) at peak throughput",
        ["app", "scheme", "KiB"], mem_rows))
    return data, "\n\n".join(chunks)


# ---------------------------------------------------------------------------
def fleet_availability(app: str = "memcached", workers: int = 4,
                       fault_rate: float = 0.2, seed: int = 1234,
                       size: str = "XS", scheme: str = "sgxbounds",
                       policies: Sequence[str] = ("abort", "drop-request",
                                                  "boundless"),
                       rewarm_scales: Sequence[float] = (1.0, 8.0),
                       balance: str = "round-robin",
                       telemetry=None) -> Tuple[Dict, str]:
    """Fleet availability: policies x restart cost over a worker fleet.

    The §6.4 argument at fleet scale: fail-stop pays an enclave cold
    start (rebuild + re-attestation + EPC re-warm) per detected
    violation, and the rewarm sweep shows the availability gap growing
    with the state a crash throws away.  One seeded campaign per cell;
    rows are keyed ``(policy, rewarm_scale)``.
    """
    from repro.fleet import CampaignConfig, run_campaign
    data: Dict[Tuple[str, float], Dict] = {}
    rows = []
    for scale in rewarm_scales:
        for policy in policies:
            cfg = CampaignConfig(app=app, scheme=scheme, policy=policy,
                                 workers=workers, fault_rate=fault_rate,
                                 seed=seed, size=size, rewarm_scale=scale,
                                 balance=balance)
            r = run_campaign(cfg, telemetry=telemetry)
            slo = r.slo
            sup = r.supervisor
            data[(policy, scale)] = r.as_dict()
            rows.append([
                policy, scale, slo["availability"], slo["served"],
                slo["error_replies"], slo["failed"], r.crashes,
                sup["restarts"], sup["deaths"],
                sup["restart_cycles"] / 1000.0, r.breaker_opens,
                (slo["latency_p50_cycles"] or 0) / 1000.0,
                (slo["latency_p99_cycles"] or 0) / 1000.0,
            ])
    text = report.fleet_table(
        f"Fleet availability ({app}): {workers} workers, "
        f"fault rate {fault_rate}, policy x EPC re-warm scale", rows)
    return data, text


# ---------------------------------------------------------------------------
def recovery_rpo(app: str = "memcached", workers: int = 2,
                 fault_rate: float = 0.25, seed: int = 77,
                 size: str = "XS", scheme: str = "sgxbounds",
                 policies: Sequence[str] = ("abort", "drop-request",
                                            "boundless"),
                 modes: Sequence[str] = ("restart-fresh", "snapshot",
                                         "snapshot+wal", "replica"),
                 intervals: Sequence[int] = (5, 40),
                 telemetry=None) -> Tuple[Dict, str]:
    """Stateful recovery: RPO/RTO across policies x modes x intervals.

    Write-heavy campaigns (every other memcached request is a SET) where
    each crash destroys enclave state.  The sweep quantifies the recovery
    ladder: ``restart-fresh`` loses every acknowledged write, ``snapshot``
    loses up to one checkpoint interval (so RPO grows with the interval),
    ``snapshot+wal`` replays the committed tail for RPO = 0, and
    ``replica`` additionally survives crash-loop deaths by promoting the
    warm standby.  RTO is honest: unseal + restore + replay cycles
    stretch the restart window.  ``crash_loop_k=2`` so deaths (and thus
    failover) actually occur within XS campaigns; rows are keyed
    ``(policy, mode, interval)`` and the interval sweep only applies to
    checkpointing modes.  The default intervals bracket the tradeoff:
    the tight one seals a checkpoint before the first fault lands (so
    restarts exercise unseal + restore), the loose one leaves a long
    lossable tail and lets crash loops run to death (exercising
    failover).
    """
    from repro.fleet import CampaignConfig, run_campaign
    data: Dict[Tuple[str, str, int], Dict] = {}
    rows = []
    for policy in policies:
        for mode in modes:
            snapshotting = mode in ("snapshot", "snapshot+wal", "replica")
            for interval in (intervals if snapshotting else intervals[:1]):
                cfg = CampaignConfig(
                    app=app, scheme=scheme, policy=policy, workers=workers,
                    fault_rate=fault_rate, seed=seed, size=size,
                    workload_kwargs=(("set_every", 2),),
                    crash_loop_k=2, crash_loop_window=200,
                    recovery=mode, checkpoint_interval=interval)
                r = run_campaign(cfg, telemetry=telemetry)
                rec = r.recovery
                slo = r.slo
                sup = r.supervisor
                data[(policy, mode, interval)] = r.as_dict()
                rows.append([
                    policy, mode, interval, slo["availability"],
                    slo["served"], r.crashes, sup["deaths"],
                    rec["rpo"]["lost_acked_total"],
                    rec["rpo"]["lost_acked_max"],
                    rec["rto"]["mean_ticks"],
                    rec["checkpoints"]["count"],
                    rec["checkpoints"]["replayed"],
                    rec.get("replica", {}).get("promotions", 0),
                    (rec["sealing"]["seal_cycles"]
                     + rec["sealing"]["unseal_cycles"]) / 1000.0,
                    "clean" if rec["audit"]["clean"] else "DIRTY",
                ])
    text = report.series_table(
        f"Stateful recovery ({app}): {workers} workers, fault rate "
        f"{fault_rate}, policy x recovery mode x checkpoint interval",
        ["policy", "mode", "interval", "avail", "served", "crashes",
         "deaths", "rpo_tot", "rpo_max", "rto_mean", "ckpts", "replayed",
         "promoted", "seal_kcyc", "audit"], rows)
    return data, text


# ---------------------------------------------------------------------------
def overload_goodput(app: str = "memcached", workers: int = 3,
                     fault_rate: float = 0.1, seed: int = 1234,
                     size: str = "S",
                     schemes: Sequence[str] = ("sgxbounds", "asan"),
                     rates: Sequence[int] = (1, 2, 4, 8),
                     modes: Sequence[str] = ("naive", "protected"),
                     deadline_ticks: int = 20,
                     policy: str = "drop-request",
                     burst: Sequence[int] = (20, 50, 8),
                     burst_size: str = "M", burst_rate: int = 2,
                     telemetry=None) -> Tuple[Dict, str]:
    """Overload protection: goodput across arrival rate x scheme x policy.

    Two sweeps over the same fleet.  The **saturation sweep** ramps the
    arrival rate past capacity under two client/ingress policies:
    ``naive`` (unbounded retry of every timeout, no admission control —
    expired requests are abandoned in place and still consume enclave
    cycles) and ``protected`` (deadline-aware admission at the ingress
    queues, brownout shedding of low priority classes, budgeted client
    retries).  Goodput is *timely serves per tick*, end-to-end from the
    first client attempt.  Past saturation the naive fleet collapses —
    every serve is a late serve — while the protected fleet rejects the
    excess up front and sustains near-peak goodput, with the critical
    class shielded by class-scaled deadline headroom.

    The **metastable sweep** runs a flash-crowd burst (``burst`` =
    (start_tick, end_tick, extra_rate)) at a sustainable base rate:
    naive goodput stays collapsed long after the trigger ends (retry
    storm + zombie requests keep the overload alive — a metastable
    failure), protected sheds through the burst and recovers.  Rows are
    keyed ``(scheme, mode, rate)`` and ``("metastable", scheme, mode)``.
    """
    from repro.fleet import CampaignConfig, run_campaign
    data: Dict[Tuple, Dict] = {}
    rows = []
    for scheme in schemes:
        for mode in modes:
            for rate in rates:
                cfg = CampaignConfig(
                    app=app, scheme=scheme, policy=policy, workers=workers,
                    fault_rate=fault_rate, seed=seed, size=size,
                    arrivals_per_tick=rate, deadline_ticks=deadline_ticks,
                    overload=mode, max_ticks=2_000)
                r = run_campaign(cfg, telemetry=telemetry)
                data[(scheme, mode, rate)] = r.as_dict()
                rows.append(_overload_row(scheme, mode, rate, r))
    chunks = [report.overload_table(
        f"Overload goodput ({app}): {workers} workers, fault rate "
        f"{fault_rate}, deadline {deadline_ticks} ticks, "
        f"scheme x client/ingress policy x arrival rate", rows)]

    meta_rows = []
    for scheme in schemes:
        for mode in modes:
            cfg = CampaignConfig(
                app=app, scheme=scheme, policy=policy, workers=workers,
                fault_rate=fault_rate, seed=seed, size=burst_size,
                arrivals_per_tick=burst_rate, deadline_ticks=deadline_ticks,
                overload=mode, burst=tuple(burst), max_ticks=2_000)
            r = run_campaign(cfg, telemetry=telemetry)
            data[("metastable", scheme, mode)] = r.as_dict()
            ov = r.slo["overload"]
            crit = ov["by_class"]["critical"]
            timeline = ",".join(str(n) for n in ov["goodput_timeline"])
            meta_rows.append([
                scheme, mode, r.ticks, ov["timely"] / r.ticks,
                ov["timely"], ov["rejected"],
                f"{crit['timely']}/{crit['submitted']}", timeline])
    chunks.append(report.series_table(
        f"Metastable flash crowd ({app}, size {burst_size}): base rate "
        f"{burst_rate} + {burst[2]}/tick during ticks "
        f"[{burst[0]}, {burst[1]}), timely serves per 20-tick window",
        ["scheme", "mode", "ticks", "goodput", "timely", "rejected",
         "crit_timely", "timeline"], meta_rows))
    return data, "\n\n".join(chunks)


def _overload_row(scheme: str, mode: str, rate: int, r) -> list:
    """One saturation-sweep row (shared with the goodput benchmark)."""
    slo = r.slo
    ov = slo["overload"]
    crit = ov["by_class"]["critical"]
    client = (r.overload or {}).get("client", {})
    return [
        scheme, mode, rate, r.ticks, ov["timely"] / r.ticks,
        ov["timely"], slo["served"], ov["rejected"], slo["failed"],
        client.get("retries", 0),
        f"{crit['timely']}/{crit['submitted']}",
        (slo["latency_p99_cycles"] or 0) / 1000.0,
    ]


# ---------------------------------------------------------------------------
def tab1_defenses() -> Tuple[Dict, str]:
    """Table 1: the defense-classification table (static)."""
    return {}, report.DEFENSE_TABLE


# ---------------------------------------------------------------------------
def profile_targets() -> Dict[str, Tuple[List[Workload], EnclaveConfig]]:
    """Workload set + enclave config per profilable experiment id.

    The telemetry profiler (``python -m repro profile <id>``) re-runs the
    experiment's workloads under each scheme with per-function attribution
    enabled; this mapping keeps its machine regimes identical to the
    figures they explain.
    """
    return {
        "fig1": ([_sqlite_workload()], FIG1_CONFIG),
        "fig7": (by_suite("phoenix") + by_suite("parsec"), FIG7_CONFIG),
        "fig8": ([get("kmeans"), get("matrix_multiply")], FIG8_CONFIG),
        "fig11": (by_suite("spec"), SPEC_CONFIG),
        "fig12": (by_suite("spec"), SPEC_CONFIG.outside_sgx()),
    }
