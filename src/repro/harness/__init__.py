"""Benchmark harness: runner, reports, per-figure experiment drivers."""

from repro.harness.runner import (
    DEFAULT_SCHEMES,
    RunResult,
    SCHEMES,
    geomean,
    overhead,
    run_server,
    run_workload,
    sweep,
)

__all__ = [
    "RunResult",
    "SCHEMES",
    "DEFAULT_SCHEMES",
    "run_workload",
    "run_server",
    "sweep",
    "overhead",
    "geomean",
]
