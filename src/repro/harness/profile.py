"""Overhead-attribution profiling driver (``python -m repro profile``).

Re-runs an experiment's workloads under each scheme with telemetry
attached, then diffs every instrumented run against its native baseline
into the paper's Table-3 decomposition: how much of the slowdown is the
checks themselves (extra instructions), how much is metadata cache
pollution (extra LLC misses paying MEE decryption), and how much is EPC
thrashing (page faults).  Emits three artifacts:

* a Chrome ``trace_event`` JSON merging every run as its own process
  lane (``--trace-out``),
* a metrics JSON with per-workload, per-scheme, per-function attribution
  plus each run's metrics-registry snapshot (``--metrics-out``),
* the usual paper-style text tables on stdout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import report
from repro.harness.runner import DEFAULT_SCHEMES, run_workload
from repro.sgx import EnclaveConfig
from repro.sgx.counters import CostModel
from repro.telemetry import Telemetry, attribute_overhead, flame_rows
from repro.workloads import get
from repro.workloads.registry import Workload

def normalize_target(target: str) -> str:
    """Accept both CLI habits ("fig7") and the zero-padded benchmark
    file names ("fig07")."""
    name = target.lower()
    if name.startswith("fig") and name[3:].isdigit():
        return f"fig{int(name[3:])}"
    return name


def _resolve(target: str) -> Tuple[List[Workload],
                                   Optional[EnclaveConfig]]:
    from repro.harness.experiments import profile_targets
    targets = profile_targets()
    key = normalize_target(target)
    if key in targets:
        return targets[key]
    try:
        return [get(target)], None     # single registered workload
    except KeyError:
        known = ", ".join(sorted(targets))
        raise KeyError(f"unknown profile target {target!r}; "
                       f"expected one of [{known}] or a workload name")


def profile_experiment(target: str, size: str = "XS",
                       schemes: Sequence[str] = DEFAULT_SCHEMES,
                       baseline: str = "native",
                       flame_limit: int = 12) -> Tuple[Dict, str]:
    """Profile ``target`` under ``schemes``; returns ``(data, text)``.

    ``data`` carries the full machine-readable payload: ``data["trace"]``
    is the merged Chrome trace document, ``data["metrics"]`` the
    attribution + registry snapshots, keyed by workload then scheme.
    """
    workloads, config = _resolve(target)
    if baseline not in schemes:
        schemes = (baseline,) + tuple(schemes)
    cost = (config or EnclaveConfig()).cost
    enclave = (config or EnclaveConfig()).enclave
    trace_events: List[Dict] = []
    dropped = 0
    metrics: Dict[str, Dict] = {}
    chunks: List[str] = []
    pid = 0
    for workload in workloads:
        profiles: Dict[str, Dict] = {}
        runs: Dict[str, Dict] = {}
        for scheme in schemes:
            telemetry = Telemetry()
            result = run_workload(workload, scheme, size=size, config=config,
                                  telemetry=telemetry)
            profiles[scheme] = telemetry.functions.snapshot()
            runs[scheme] = {
                "status": result.crashed or "ok",
                "cycles": result.cycles,
                "counters": result.counters,
                "peak_reserved_bytes": result.peak_reserved,
                "registry": telemetry.metrics_snapshot(),
                "functions": profiles[scheme],
            }
            pid += 1
            doc = telemetry.chrome_trace()
            dropped += doc["otherData"]["dropped_events"]
            for event in doc["traceEvents"]:
                event["pid"] = pid
                trace_events.append(event)
        base_cycles = runs[baseline]["cycles"]
        rows = []
        for scheme in schemes:
            if scheme == baseline:
                continue
            attribution = attribute_overhead(profiles[scheme],
                                             profiles[baseline],
                                             cost, enclave)
            runs[scheme]["attribution"] = attribution
            shares = attribution["shares"]
            totals = attribution["totals"]
            rows.append([
                scheme,
                runs[scheme]["status"],
                (runs[scheme]["cycles"] / base_cycles)
                if base_cycles else None,
                totals["total_cycles"],
                100.0 * shares["check"],
                100.0 * shares["cache"],
                100.0 * shares["epc_fault"],
            ])
        metrics[workload.name] = {"schemes": runs, "baseline": baseline}
        chunks.append(report.series_table(
            f"Overhead attribution: {workload.name} (size {size}, "
            f"vs {baseline}) — extra-cycle shares",
            ["scheme", "status", "overhead", "extra_cycles",
             "check%", "cache%", "epc%"], rows))
        # Failure-oblivious leakage accounting, when any run went
        # boundless (zero-cost and absent on the default abort paths).
        leak_rows = []
        for scheme in schemes:
            registry = runs[scheme]["registry"]
            reads = registry.get("boundless.oblivious_reads",
                                 {}).get("value", 0)
            if reads:
                leak_rows.append([
                    scheme, reads,
                    registry.get("boundless.leaked_bytes",
                                 {}).get("value", 0)])
        if leak_rows:
            chunks.append(report.series_table(
                f"Boundless leakage: {workload.name} (size {size}) — "
                f"oblivious reads past object bounds",
                ["scheme", "oblivious_reads", "leaked_bytes"], leak_rows))
        # Predecoded-interpreter fusion hits, only when the fast path
        # actually ran (the reference loop under REPRO_VM_FASTPATH=0
        # publishes no vm.fastpath.* counters, so the table vanishes
        # rather than printing a row of zeros).
        fusion_rows = []
        for scheme in schemes:
            registry = runs[scheme]["registry"]
            hits = {key[len("vm.fastpath."):]: series.get("value", 0)
                    for key, series in registry.items()
                    if key.startswith("vm.fastpath.")}
            if sum(hits.values()):
                fusion_rows.append([
                    scheme, sum(hits.values()),
                    hits.get("gep_load", 0), hits.get("gep_store", 0),
                    hits.get("cmp_br", 0), hits.get("bnd_access", 0),
                    hits.get("chain", 0)])
        if fusion_rows:
            chunks.append(report.series_table(
                f"Fast-path fusion: {workload.name} (size {size}) — "
                f"superinstruction dispatches",
                ["scheme", "total", "gep_load", "gep_store", "cmp_br",
                 "bnd_access", "chain"], fusion_rows))
    # One exemplar flame table: the baseline profile of the last workload.
    flame = flame_rows(profiles[baseline], cost, enclave, limit=flame_limit)
    chunks.append(report.series_table(
        f"Flame table: {workloads[-1].name}/{baseline} "
        f"(flat profile, hottest first)",
        ["function", "calls", "self_instr", "%instr", "cycles",
         "checks", "llc_miss", "epc_faults"], flame))
    data = {
        "experiment": normalize_target(target),
        "size": size,
        "schemes": list(schemes),
        "baseline": baseline,
        "metrics": metrics,
        "trace": {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "retired simulated instructions",
                "dropped_events": dropped,
            },
        },
    }
    return data, "\n\n".join(chunks)
