"""Chaos harness: availability of the server case studies under faults.

The paper's Fig. 13 measures the servers on clean traffic; this harness
measures what a *shielded service* actually buys you — it drives the same
memcached/nginx/apache models through the seeded fault injectors
(:mod:`repro.faults`) and compares violation policies by availability:

    availability = responses the clients got / requests they pushed

Fail-stop (``abort``) loses the whole server at the first malformed
request; ``drop-request`` loses only the poisoned requests; ``boundless``
serves even those (with zeros for the out-of-bounds tails).  The chaos
sweep quantifies that ordering, plus the cycle cost of recovery.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults import FaultInjector, LengthField, RequestFuzzer, derive
from repro.harness import report
from repro.harness.experiments import APP_CONFIG
from repro.harness.runner import RunResult, run_server
from repro.workloads import NetworkSim
from repro.workloads.apps import apache, memcached, nginx, sqlite_server


class ChaosProfile:
    """Per-app fuzzing profile: protocol shape + scripted attacks."""

    __slots__ = ("module", "threads", "length_field", "attacks", "weights")

    def __init__(self, module, threads: int, length_field: LengthField,
                 attacks: Sequence[Callable[[], bytes]],
                 weights: Dict[str, float]):
        self.module = module
        self.threads = threads
        self.length_field = length_field
        self.attacks = list(attacks)
        self.weights = weights


#: Protocol layouts match the request builders in ``repro.workloads.apps``:
#: memcached ``(op, keylen, <H vallen, ...)``, nginx chunked
#: ``(2, <i size, ...)``, apache heartbeat ``(1, <H len, ...)``.
PROFILES: Dict[str, ChaosProfile] = {
    "memcached": ChaosProfile(
        memcached, threads=1,
        length_field=LengthField(offset=2, width=2),
        attacks=(memcached.cve_2011_4971_request,),
        weights={"oob-probe": 0.5, "inflate-length": 0.2,
                 "truncate": 0.15, "bit-flip": 0.15}),
    "nginx": ChaosProfile(
        nginx, threads=1,
        length_field=LengthField(offset=1, width=4, signed=True),
        attacks=(nginx.cve_2013_2028_request,),
        weights={"oob-probe": 0.4, "negative-length": 0.2,
                 "inflate-length": 0.15, "truncate": 0.1, "bit-flip": 0.15}),
    "apache": ChaosProfile(
        apache, threads=2,
        length_field=LengthField(offset=1, width=2),
        attacks=(apache.heartbleed_request,),
        weights={"oob-probe": 0.5, "inflate-length": 0.25,
                 "truncate": 0.1, "bit-flip": 0.15}),
    # Write-heavy stateful app for the recovery experiments; not part of
    # the default chaos_availability() app set, so existing sweeps are
    # unchanged.
    "sqlite_kv": ChaosProfile(
        sqlite_server, threads=1,
        length_field=LengthField(offset=2, width=2),
        attacks=(sqlite_server.blob_overflow_request,),
        weights={"oob-probe": 0.5, "inflate-length": 0.2,
                 "truncate": 0.15, "bit-flip": 0.15}),
}


def run_chaos_server(app_name: str, scheme: str = "sgxbounds",
                     policy: str = "drop-request", fault_rate: float = 0.2,
                     size: str = "XS", seed: int = 1234,
                     retry_limit: int = 1,
                     epc_spike_rate: Optional[float] = None,
                     tag_flip_rate: float = 0.0,
                     telemetry=None) -> RunResult:
    """One chaos run: fuzzed workload + runtime faults + hardened clients.

    Every random component gets its own sub-seed derived from ``seed``, so
    two runs with identical arguments are byte-identical.
    """
    profile = PROFILES[app_name]
    mod = profile.module
    count = mod.SIZES[size]
    requests = mod.workload(count)
    fuzzer = RequestFuzzer(derive(seed, f"fuzz:{app_name}"), fault_rate,
                           profile.length_field, profile.attacks,
                           profile.weights)
    fuzzed = fuzzer.apply(requests)
    threads = profile.threads
    if threads > 1:
        per = count // threads
        by_conn = [fuzzed[i * per:(i + 1) * per] for i in range(threads)]
    else:
        by_conn = [fuzzed]
    net = NetworkSim(retry_limit=retry_limit,
                     seed=derive(seed, f"net:{app_name}"))
    if epc_spike_rate is None:
        epc_spike_rate = fault_rate * 0.25
    faults = None
    if epc_spike_rate > 0.0 or tag_flip_rate > 0.0:
        faults = FaultInjector(derive(seed, f"inject:{app_name}"),
                               tag_flip_rate=tag_flip_rate,
                               epc_spike_rate=epc_spike_rate)
    result = run_server(mod.SOURCE, by_conn, scheme, count, threads=threads,
                        config=APP_CONFIG, name=app_name, policy=policy,
                        net=net, faults=faults,
                        seed=derive(seed, f"sched:{app_name}"),
                        telemetry=telemetry)
    result.resilience["fuzzer"] = fuzzer.stats()
    return result


def chaos_availability(apps: Sequence[str] = ("memcached", "nginx", "apache"),
                       schemes: Sequence[str] = ("sgxbounds",),
                       policies: Sequence[str] = ("abort", "drop-request",
                                                  "boundless"),
                       fault_rates: Sequence[float] = (0.0, 0.2),
                       size: str = "XS", seed: int = 1234,
                       telemetry=None) -> Tuple[Dict, str]:
    """Sweep fault rates x policies x schemes over the server apps.

    Returns ``(data, text)`` like the other experiment drivers:
    ``data[app][(scheme, policy, rate)]`` holds the availability record,
    ``text`` is the rendered report.
    """
    from repro import telemetry as telemetry_mod
    telemetry = telemetry if telemetry is not None \
        else telemetry_mod.get_default()
    chunks: List[str] = []
    data: Dict[str, Dict] = {}
    exhibit: Optional[Dict] = None
    for app_name in apps:
        rows = []
        data[app_name] = {}
        for scheme in schemes:
            for rate in fault_rates:
                for policy in policies:
                    r = run_chaos_server(app_name, scheme=scheme,
                                         policy=policy, fault_rate=rate,
                                         size=size, seed=seed,
                                         telemetry=telemetry)
                    net_stats = r.resilience["net"]
                    availability = net_stats["availability"]
                    responses = net_stats["responses"]
                    cycles_per = (r.cycles / responses) / 1000 \
                        if responses else None
                    record = {
                        "availability": availability,
                        "responses": responses,
                        "pushed": net_stats["pushed"],
                        "cycles_per_response_kcycles": cycles_per,
                        "dropped": r.resilience["dropped_requests"],
                        "recovered": r.resilience["recovered_requests"],
                        "retries": net_stats["retries"],
                        "errors": net_stats["errors"],
                        "violations": r.resilience["violations"],
                        "status": r.crashed or "ok",
                    }
                    data[app_name][(scheme, policy, rate)] = record
                    if telemetry is not None and telemetry.enabled:
                        telemetry.registry.gauge(
                            f"chaos.{app_name}.{scheme}.{policy}"
                            f".rate_{rate}.availability").set(availability)
                    rows.append([scheme, policy, rate, net_stats["pushed"],
                                 responses, availability, cycles_per,
                                 record["dropped"], record["retries"],
                                 record["errors"], record["status"]])
                    if exhibit is None and r.violation is not None:
                        exhibit = r.violation
        chunks.append(report.series_table(
            f"Chaos availability ({app_name}): fault rate x policy",
            ["scheme", "policy", "rate", "pushed", "resp", "avail",
             "kcyc/resp", "dropped", "retries", "errors", "status"],
            rows))
    if exhibit is not None:
        chunks.append("First violation observed during the sweep:\n"
                      + report.render_violation(exhibit))
    return data, "\n\n".join(chunks)
