"""Report formatting: the paper's tables and figures as ASCII.

Figures become tables of the same series the plots show (one row per
workload, one column per scheme); the harness prints them and the
benchmark files tee them into the experiment log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_cell(value: Optional[float]) -> str:
    if value is None:
        return "crash"
    return f"{value:7.2f}x"


def overhead_table(title: str,
                   table: Dict[str, Dict[str, Optional[float]]],
                   schemes: Sequence[str],
                   gmean_row: bool = True) -> str:
    """Render overhead[workload][scheme] with a geometric-mean footer."""
    from repro.harness.runner import geomean
    lines = [title, "=" * len(title)]
    width = max((len(w) for w in table), default=8) + 2
    header = " " * width + "".join(f"{s:>12}" for s in schemes)
    lines.append(header)
    for workload in sorted(table):
        row = table[workload]
        cells = "".join(f"{format_cell(row.get(s)):>12}" for s in schemes)
        lines.append(f"{workload:<{width}}" + cells)
    if gmean_row:
        cells = ""
        for s in schemes:
            values = [row.get(s) for row in table.values()]
            if any(v is None for v in values):
                survivors = [v for v in values if v is not None]
                cells += f"{format_cell(geomean(survivors)):>11}*"
            else:
                cells += f"{format_cell(geomean(values)):>12}"
        lines.append(f"{'gmean':<{width}}" + cells)
        if "*" in cells:
            lines.append("(* = over surviving runs only; 'crash' bars are "
                         "missing, as in the paper)")
    return "\n".join(lines)


def series_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Generic table for sweeps (Fig. 1/8/13, Table 3)."""
    lines = [title, "=" * len(title)]
    widths = [max(len(str(c)), 10) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell)))
    lines.append("  ".join(f"{str(c):>{w}}" for c, w in zip(columns, widths)))
    for row in rows:
        lines.append("  ".join(f"{_fmt(cell):>{w}}"
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


#: One row per (policy, rewarm-scale) cell of a fleet campaign sweep.
FLEET_COLUMNS = ["policy", "rewarm", "avail", "served", "errors", "failed",
                 "crashes", "restarts", "deaths", "restart_kcyc",
                 "breaker", "p50_kcyc", "p99_kcyc"]


def fleet_table(title: str, rows: Sequence[Sequence[object]]) -> str:
    """Availability + tail-latency summary of a fleet campaign sweep
    (``repro.fleet``): the §6.4 argument quantified at fleet scale."""
    return series_table(title, FLEET_COLUMNS, rows)


#: One row per (scheme, mode, arrival-rate) cell of an overload sweep.
#: ``goodput`` is timely serves per tick (end-to-end from the first
#: client attempt); ``crit_timely`` is the critical class's
#: timely/submitted fraction — the headline of the brownout argument.
OVERLOAD_COLUMNS = ["scheme", "mode", "rate", "ticks", "goodput", "timely",
                    "served", "rejected", "failed", "retries",
                    "crit_timely", "p99_kcyc"]


def overload_table(title: str, rows: Sequence[Sequence[object]]) -> str:
    """Goodput summary of an overload campaign sweep (``repro.overload``):
    congestion collapse vs admission control + retry budgets."""
    return series_table(title, OVERLOAD_COLUMNS, rows)


def render_violation(context: Dict[str, object]) -> str:
    """One-paragraph rendering of a structured violation context
    (:meth:`repro.errors.BoundsViolation.context`)."""
    access = context.get("access") or "access"
    function = context.get("function") or "?"
    what = context.get("what")
    policy = context.get("policy") or "abort"
    outcome = context.get("outcome") or "raised"
    lines = [
        f"violation: {context.get('scheme', '?')} detected an out-of-bounds "
        f"{access} of {context.get('size', '?')} byte(s)",
        f"  address : 0x{context.get('address', 0):08x} "
        f"(object [0x{context.get('lower', 0):08x}, "
        f"0x{context.get('upper', 0):08x}))",
        f"  in      : {function}()",
        f"  policy  : {policy} -> {outcome}",
    ]
    if what:
        lines.insert(2, f"  detail  : {what}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "crash"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


DEFENSE_TABLE = """\
Table 1: Applicability of state-of-the-art defenses under shielded execution
(CF = control-flow hijack, DO = data-only attack, IL = information leak)
------------------------------------------------------------------------
defense                               CF    DO    IL
Control Flow Integrity                yes   no    no
Code Pointer Integrity                yes   no    no
Address Space Randomization           yes*  no    no
Data Integrity                        yes   yes   no
Data Flow Integrity                   yes   yes   no
Software Fault Isolation              yes   yes   yes
Data Space Randomization              yes*  yes*  yes*
Memory safety (this work)             yes   yes   yes
(* = insufficient entropy inside 36-bit SGX enclaves)
"""
