"""sqlite_kv served over the wire: a B-tree key/value store with WAL hooks.

Server-mode companion to :mod:`repro.workloads.apps.sqlite_kv` (which
benchmarks the same unbalanced binary search tree as an in-enclave
speedtest).  Rows live in malloc'd nodes keyed by a 32-bit integer and
carry a 4-byte value plus a 12-byte pad blob; DELETE tombstones rather
than unlinks, as the speedtest does.  The vulnerable path mirrors the
classic length-trusting blob copy: INSERT stages its pad bytes through a
fixed 12-byte buffer using the *claimed* blob length from the header.

The staging buffer is deliberately written **before** any row is touched:
under a fault-tolerant policy a mid-copy bounds fault rolls the request
back with the tree unmodified, so committed state stays a pure function
of acknowledged requests — the invariant the recovery subsystem's
write-ahead replay and shadow-oracle audit both depend on.

Request format (little-endian):
  byte 0      opcode: 1 = INSERT, 2 = SELECT, 3 = DELETE
  byte 1      key field length (always 4)
  bytes 2-3   blob length (B)
  bytes 4-7   key (int32)
  bytes 8-11  value (int32, INSERT only)
  bytes 12..  B pad blob bytes (INSERT only)
"""

from __future__ import annotations

import struct
from typing import List

SOURCE = r"""
struct Row { int key; int val; char pad[12]; };
struct BNode { int key; int live; struct Row *row;
               struct BNode *left; struct BNode *right; };

struct BNode *g_root;
int g_nodes;
char g_req[512];
char g_out[32];
char g_stage[12];

int req_int(int off) {
    return (g_req[off] & 255) | ((g_req[off + 1] & 255) << 8)
         | ((g_req[off + 2] & 255) << 16) | ((g_req[off + 3] & 255) << 24);
}

struct BNode *make_node(int key) {
    struct BNode *fresh = (struct BNode*)malloc(sizeof(struct BNode));
    fresh->key = key;
    fresh->live = 0;
    fresh->row = (struct Row*)malloc(sizeof(struct Row));
    fresh->row->key = key;
    fresh->row->val = 0;
    for (int j = 0; j < 12; j++) fresh->row->pad[j] = 0;
    fresh->left = (struct BNode*)0;
    fresh->right = (struct BNode*)0;
    g_nodes++;
    return fresh;
}

struct BNode *find_node(int key) {
    struct BNode *cur = g_root;
    while (cur) {
        if (key == cur->key) return cur;
        if (key < cur->key) cur = cur->left;
        else cur = cur->right;
    }
    return (struct BNode*)0;
}

struct BNode *upsert_node(int key) {
    if (!g_root) { g_root = make_node(key); return g_root; }
    struct BNode *cur = g_root;
    while (1) {
        if (key == cur->key) return cur;
        if (key < cur->key) {
            if (cur->left) { cur = cur->left; }
            else { cur->left = make_node(key); return cur->left; }
        } else {
            if (cur->right) { cur = cur->right; }
            else { cur->right = make_node(key); return cur->right; }
        }
    }
    return (struct BNode*)0;
}

int handle_insert(int bloblen, int conn) {
    memset(g_stage, 0, 12);
    // Length-trusting blob copy: bloblen comes straight from the header.
    memcpy(g_stage, g_req + 12, bloblen);
    int key = req_int(4);
    struct BNode *node = upsert_node(key);
    node->live = 1;
    node->row->val = req_int(8);
    for (int j = 0; j < 12; j++) node->row->pad[j] = g_stage[j];
    net_send(conn, "I", 1);
    return 1;
}

int handle_select(int conn) {
    struct BNode *node = find_node(req_int(4));
    if (node && node->live) {
        g_out[0] = node->row->val & 255;
        g_out[1] = (node->row->val >> 8) & 255;
        g_out[2] = (node->row->val >> 16) & 255;
        g_out[3] = (node->row->val >> 24) & 255;
        net_send(conn, g_out, 4);
        return 1;
    }
    net_send(conn, "N", 1);
    return 0;
}

int handle_delete(int conn) {
    struct BNode *node = find_node(req_int(4));
    if (node && node->live) {
        node->live = 0;
        net_send(conn, "D", 1);
        return 1;
    }
    net_send(conn, "N", 1);
    return 0;
}

int main(int n, int threads) {
    int served = 0;
    int hits = 0;
    for (int r = 0; r < n; r++) {
        int got = net_recv(0, g_req, 512);
        if (got <= 0) break;
        int op = g_req[0] & 255;
        int bloblen = (g_req[2] & 255) | ((g_req[3] & 255) << 8);
        if (op == 1) {
            hits += handle_insert(bloblen, 0);
        } else if (op == 2) {
            hits += handle_select(0);
        } else if (op == 3) {
            hits += handle_delete(0);
        }
        served++;
    }
    if (hits < 0) return -1;   // keep the hit accounting live
    return served;
}
"""


SNAPSHOT_OP = 9
RESTORE_OP = 10
#: Same guard scheme as the memcached recovery build: four magic bytes in
#: the key field, so a bit-flipped client opcode never reaches the
#: control handlers.
CONTROL_MAGIC = bytes((0xA5, 0x5A, 0xC3, 0x3C))
SNAPSHOT_END = b"DONE"
#: Snapshot record layout: key[4] + val[4] + pad[12].
RECORD_LEN = 20

_RECOVERY_HELPERS = r"""
char g_snap[32];

int snap_magic_ok(int keylen) {
    if (keylen != 4) return 0;
    if ((g_req[4] & 255) != 165) return 0;
    if ((g_req[5] & 255) != 90) return 0;
    if ((g_req[6] & 255) != 195) return 0;
    if ((g_req[7] & 255) != 60) return 0;
    return 1;
}

void emit_node(struct BNode *node, int conn) {
    if (!node) return;
    emit_node(node->left, conn);
    if (node->live) {
        g_snap[0] = node->key & 255;
        g_snap[1] = (node->key >> 8) & 255;
        g_snap[2] = (node->key >> 16) & 255;
        g_snap[3] = (node->key >> 24) & 255;
        g_snap[4] = node->row->val & 255;
        g_snap[5] = (node->row->val >> 8) & 255;
        g_snap[6] = (node->row->val >> 16) & 255;
        g_snap[7] = (node->row->val >> 24) & 255;
        for (int j = 0; j < 12; j++) g_snap[8 + j] = node->row->pad[j];
        net_send(conn, g_snap, 20);
    }
    emit_node(node->right, conn);
}

int snapshot_dump(int conn) {
    emit_node(g_root, conn);
    net_send(conn, "DONE", 4);
    return 1;
}

int restore_row(int bloblen, int conn) {
    if (bloblen > 12) { net_send(conn, "X", 1); return 0; }
    struct BNode *node = upsert_node(req_int(8));
    node->live = 1;
    node->row->val = req_int(12);
    for (int j = 0; j < bloblen; j++) node->row->pad[j] = g_req[16 + j];
    net_send(conn, "R", 1);
    return 1;
}

int main("""

_RECOVERY_DISPATCH = r"""        } else if (op == 3) {
            hits += handle_delete(0);
        } else if (op == 9) {
            if (snap_magic_ok(g_req[1] & 255)) { snapshot_dump(0); }
        } else if (op == 10) {
            if (snap_magic_ok(g_req[1] & 255)) { restore_row(bloblen, 0); }
        }"""


def _recovery_source() -> str:
    """Derive the recovery build from ``SOURCE`` (never edit both)."""
    anchors = (
        ("int main(", _RECOVERY_HELPERS),
        ("        int got = net_recv(0, g_req, 512);\n"
         "        if (got <= 0) break;",
         "        int got = net_recv(0, g_req, 512);\n"
         "        if (got <= 0) break;\n"
         "        memset(g_req + got, 0, 512 - got);"),
        ("        } else if (op == 3) {\n"
         "            hits += handle_delete(0);\n"
         "        }",
         _RECOVERY_DISPATCH),
    )
    source = SOURCE
    for old, new in anchors:
        if old not in source:
            raise RuntimeError(
                f"sqlite_server RECOVERY_SOURCE anchor vanished: {old[:40]!r}")
        source = source.replace(old, new, 1)
    return source


RECOVERY_SOURCE = _recovery_source()


def _scramble(i: int) -> int:
    return (i * 2654435761) & 0x7FFFFFFF


def make_request(op: int, key: int, value: int = 0, pad: bytes = b"",
                 claimed_len: int = -1) -> bytes:
    """Build one protocol request; ``claimed_len`` overrides the header's
    blob length (the attack knob)."""
    bloblen = len(pad) if claimed_len < 0 else claimed_len
    return (bytes((op, 4)) + struct.pack("<H", bloblen)
            + struct.pack("<ii", key, value) + pad)


#: Per-10-request op pattern: 4 INSERTs, 1 DELETE, 5 SELECTs — the
#: write-heavy mix the recovery experiments need (every lost tick of
#: writes shows up as RPO).
_PATTERN = (1, 2, 1, 2, 3, 1, 2, 1, 2, 2)


def workload(n: int) -> List[bytes]:
    """Deterministic write-heavy trace over a reused key space."""
    requests = []
    span = max(n // 3, 1)
    for i in range(n):
        op = _PATTERN[i % 10]
        key = _scramble(i % span)
        if op == 1:
            pad = bytes((i + j) & 0xFF for j in range(12))
            requests.append(make_request(1, key, value=i, pad=pad))
        else:
            requests.append(make_request(op, key))
    return requests


# -- recovery hooks (repro.recovery drives these through the VM) -----------
def is_mutating(request: bytes) -> bool:
    """INSERT and DELETE change the tree; SELECT does not."""
    return len(request) >= 1 and request[0] in (1, 3)


def snapshot_request() -> bytes:
    return bytes((SNAPSHOT_OP, 4)) + struct.pack("<H", 0) + CONTROL_MAGIC


def restore_request(record: bytes) -> bytes:
    """Control request re-inserting one snapshot ``record``
    (key[4] + val[4] + pad[12], exactly as ``emit_node`` emits)."""
    if len(record) != RECORD_LEN:
        raise ValueError(f"bad sqlite_server snapshot record: {record!r}")
    return (bytes((RESTORE_OP, 4)) + struct.pack("<H", 12)
            + CONTROL_MAGIC + record)


def parse_snapshot(messages) -> List[bytes]:
    """Validate a snapshot dump reply stream; returns the records."""
    if not messages or messages[-1] != SNAPSHOT_END:
        raise ValueError("sqlite_server snapshot dump not terminated")
    records = list(messages[:-1])
    for record in records:
        if len(record) != RECORD_LEN:
            raise ValueError(f"bad sqlite_server snapshot record: {record!r}")
    return records


def blob_overflow_request(claimed: int = 64) -> bytes:
    """The attack: INSERT claiming a 64-byte blob for the 12-byte staging
    buffer (actual payload only 8 bytes)."""
    return make_request(1, key=0xBADD, value=7, pad=b"B" * 8,
                        claimed_len=claimed)


SIZES = {"XS": 60, "S": 240, "M": 700, "L": 1800, "XL": 4500}
