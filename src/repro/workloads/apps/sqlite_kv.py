"""SQLite case study substitute: a pointer-intensive KV index + speedtest.

The paper's SQLite speedtest (Fig. 1) stresses exactly two properties we
must preserve: (1) the store is *exceptionally pointer-intensive* (B-tree
pages full of pointers — "a worst-case example for MPX"), and (2) its
working set scales with the row count, driving the EPC residency sweep.
We substitute a malloc-per-node binary index over malloc'd row payloads:
every insert stores two pointers into freshly allocated memory, giving the
same per-row pointer density and allocation churn at simulation scale.

Entry: ``int main(int n, int threads)`` — insert ``n`` rows, point-query
each key once, and return a checksum over the retrieved payloads.
"""

from __future__ import annotations

SOURCE = r"""
struct Row { int key; int payload[6]; };
struct BNode {
    int key;
    struct Row *row;
    struct BNode *left;
    struct BNode *right;
};

struct BNode *g_root;
int g_nodes;

int scramble(int i) {
    // Deterministic key shuffle so the tree stays balanced-ish.
    return (i * 2654435761) & 0x7FFFFFFF;
}

struct Row *make_row(int key) {
    struct Row *row = (struct Row*)malloc(sizeof(struct Row));
    row->key = key;
    for (int j = 0; j < 6; j++) row->payload[j] = key % (97 + j);
    return row;
}

void insert(int key) {
    struct BNode *fresh = (struct BNode*)malloc(sizeof(struct BNode));
    fresh->key = key;
    fresh->row = make_row(key);
    fresh->left = (struct BNode*)0;
    fresh->right = (struct BNode*)0;
    g_nodes++;
    if (!g_root) { g_root = fresh; return; }
    struct BNode *cur = g_root;
    while (1) {
        if (key < cur->key) {
            if (cur->left) { cur = cur->left; }
            else { cur->left = fresh; return; }
        } else {
            if (cur->right) { cur = cur->right; }
            else { cur->right = fresh; return; }
        }
    }
}

struct Row *lookup(int key) {
    struct BNode *cur = g_root;
    while (cur) {
        if (key == cur->key) return cur->row;
        if (key < cur->key) cur = cur->left;
        else cur = cur->right;
    }
    return (struct Row*)0;
}

int main(int n, int threads) {
    // speedtest: bulk insert ...
    for (int i = 0; i < n; i++) insert(scramble(i));
    // ... then point-select every key.
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        struct Row *row = lookup(scramble(i));
        if (row) checksum += row->payload[i % 6];
    }
    return (checksum + g_nodes) % 1000000;
}
"""

#: Working-set ladder for the Fig. 1 sweep (rows inserted).
SIZES = {"XS": 100, "S": 400, "M": 1000, "L": 2500, "XL": 6000}
