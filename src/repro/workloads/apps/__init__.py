"""Application case studies: SQLite, Memcached, Apache, Nginx (paper §7)."""

from repro.workloads.apps import apache, memcached, nginx, sqlite_kv

__all__ = ["sqlite_kv", "memcached", "apache", "nginx"]
