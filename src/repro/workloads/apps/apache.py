"""Apache + OpenSSL case study: multi-threaded server with Heartbleed.

Mirrors the paper's §7 setup: worker threads (one per connection, like
Apache's thread pool), page-aligned per-request allocations (the apr-pool
pattern responsible for SGXBounds' +50% memory on Apache — 4 extra
metadata bytes on a page-sized request round up to a whole extra size
class), and an OpenSSL-style heartbeat handler with the actual Heartbleed
bug: the response length comes from the request header, not from the
actual payload, so an over-long heartbeat reads past the request buffer —
straight into the adjacent session-secret allocation.

Request format:
  byte 0      type: 1 = heartbeat, 2 = static GET
  bytes 1-2   heartbeat payload length (little-endian) — attacker knob
  bytes 3..   payload
"""

from __future__ import annotations

import struct
from typing import List

SOURCE = r"""
char g_page[1024];

struct Conn { char *reqbuf; char *secret; };
struct Conn g_conns[8];
int g_requests_per_conn;

int handle_heartbeat(int conn, char *req, int got) {
    int claimed = (req[1] & 255) | ((req[2] & 255) << 8);
    char *resp = (char*)malloc(claimed + 4);
    // Heartbleed: copy 'claimed' bytes from a payload that may be shorter.
    memcpy(resp, req + 3, claimed);
    net_send(conn, resp, claimed);
    free(resp);
    return claimed;
}

int handle_get(int conn) {
    net_send(conn, g_page, 1024);
    return 1024;
}

char *g_pool[8];
int g_pool_used[8];

int worker(int conn) {
    struct Conn *c = &g_conns[conn];
    int served = 0;
    for (int r = 0; r < g_requests_per_conn; r++) {
        int got = net_recv(conn, c->reqbuf, 1024);
        if (got <= 0) break;
        // Request state lands in the connection's apr-style pool (bump
        // allocation within the per-client arena).
        int offset = g_pool_used[conn];
        if (offset + got > 65536) offset = 0;
        memcpy(g_pool[conn] + offset, c->reqbuf, got);
        g_pool_used[conn] = offset + got;
        int type = c->reqbuf[0] & 255;
        if (type == 1) handle_heartbeat(conn, c->reqbuf, got);
        else handle_get(conn);
        served++;
    }
    return served;
}

int main(int n, int threads) {
    g_requests_per_conn = n / threads;
    for (int t = 0; t < threads; t++) {
        // The request buffer and the session secret are adjacent heap
        // objects: an over-read of reqbuf leaks the secret.
        g_conns[t].reqbuf = (char*)malloc(1024);
        g_conns[t].secret = (char*)malloc(1024);
        // Per-client arena (the paper: "each new client requires around
        // 1MB", scaled): a power-of-two, page-multiple request — the
        // allocation shape that makes SGXBounds' 4 extra bytes spill
        // into the next size class (§7's +50% memory on Apache).
        g_pool[t] = (char*)malloc(65536);
        for (int i = 0; i < 1024; i++) g_conns[t].secret[i] = 'S';
        for (int i = 0; i < 512; i++) g_page[i] = (char)('a' + i % 26);
    }
    int tids[8];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    int served = 0;
    for (int t = 0; t < threads; t++) served += join(tids[t]);
    return served;
}
"""


def heartbeat(payload: bytes, claimed_len: int = -1) -> bytes:
    """A heartbeat request; ``claimed_len`` > len(payload) is Heartbleed."""
    length = len(payload) if claimed_len < 0 else claimed_len
    return bytes((1,)) + struct.pack("<H", length) + payload


def static_get() -> bytes:
    return bytes((2, 0, 0))


def workload(n: int) -> List[bytes]:
    """ab-style request mix: mostly static GETs plus honest heartbeats."""
    requests = []
    for i in range(n):
        if i % 5 == 0:
            requests.append(heartbeat(b"ping-%03d" % (i % 1000)))
        else:
            requests.append(static_get())
    return requests


def heartbleed_request(claimed: int = 2048) -> bytes:
    """The attack: claim 2048 bytes for an 8-byte payload — the response
    leaks memory beyond the 1024-byte request buffer, i.e. the adjacent
    session secret."""
    return heartbeat(b"HB-EVIL!", claimed_len=claimed)


SIZES = {"XS": 40, "S": 120, "M": 400, "L": 1000, "XL": 2400}
