"""Memcached case study: hash-table cache server + CVE-2011-4971 analog.

A chained hash table of malloc'd items behind a binary protocol, driven by
a memaslap-like request generator.  The vulnerability mirrors the paper's
CVE-2011-4971 reproduction: an authentication-style opcode copies the
request body into a fixed 64-byte buffer using the *claimed* body length
from the header without validation.

Request format (little-endian):
  byte 0      opcode: 1 = SET, 2 = GET, 3 = AUTH (vulnerable path)
  byte 1      key length (K)
  bytes 2-3   value length (V)
  bytes 4..   K key bytes, then V value bytes
"""

from __future__ import annotations

import struct
from typing import List

SOURCE = r"""
struct Item { int hash; int vallen; char val[48]; struct Item *next; };
struct Item *g_table[256];
char g_req[512];
char g_auth[64];

int hash_key(char *key, int len) {
    int h = 0;
    for (int i = 0; i < len; i++) h = h * 131 + key[i];
    return h & 0x7FFFFFFF;
}

int handle_set(int keylen, int vallen) {
    if (vallen > 48) return 0;          // honest server-side check
    int h = hash_key(g_req + 4, keylen);
    int bucket = h % 256;
    struct Item *it = g_table[bucket];
    while (it && it->hash != h) it = it->next;
    if (!it) {
        it = (struct Item*)malloc(sizeof(struct Item));
        it->hash = h;
        it->next = g_table[bucket];
        g_table[bucket] = it;
    }
    it->vallen = vallen;
    memcpy(it->val, g_req + 4 + keylen, vallen);
    return 1;
}

int handle_get(int keylen, int conn) {
    int h = hash_key(g_req + 4, keylen);
    struct Item *it = g_table[h % 256];
    while (it && it->hash != h) it = it->next;
    if (it) { net_send(conn, it->val, it->vallen); return 1; }
    net_send(conn, "N", 1);
    return 0;
}

int handle_auth(int keylen, int vallen, int conn) {
    // CVE-2011-4971 analog: vallen comes straight from the header.
    memcpy(g_auth, g_req + 4 + keylen, vallen);
    net_send(conn, "A", 1);
    return 1;
}

int main(int n, int threads) {
    int served = 0;
    int checksum = 0;
    for (int r = 0; r < n; r++) {
        int got = net_recv(0, g_req, 512);
        if (got <= 0) break;
        int op = g_req[0] & 255;
        int keylen = g_req[1] & 255;
        int vallen = (g_req[2] & 255) | ((g_req[3] & 255) << 8);
        if (op == 1) {
            checksum += handle_set(keylen, vallen);
            net_send(0, "S", 1);
        } else if (op == 2) {
            checksum += handle_get(keylen, 0);
        } else if (op == 3) {
            handle_auth(keylen, vallen, 0);
        }
        served++;
    }
    if (checksum < 0) return -1;   // keep the hit accounting live
    return served;
}
"""


def make_request(op: int, key: bytes, value: bytes = b"",
                 claimed_len: int = -1) -> bytes:
    """Build one protocol request; ``claimed_len`` overrides the header's
    value length (the attack knob)."""
    vallen = len(value) if claimed_len < 0 else claimed_len
    return bytes((op, len(key))) + struct.pack("<H", vallen) + key + value


def workload(n: int, value_size: int = 32) -> List[bytes]:
    """memaslap-like mix: 90% GET / 10% SET over a small key space."""
    requests = []
    for i in range(n):
        key = b"key%06d" % (i % max(n // 10, 1))
        if i % 10 == 0:
            value = bytes((i + j) & 0xFF for j in range(value_size))
            requests.append(make_request(1, key, value[:48]))
        else:
            requests.append(make_request(2, key))
    return requests


def cve_2011_4971_request(claimed: int = 300) -> bytes:
    """The attack: AUTH opcode claiming a 300-byte body for a 64-byte
    buffer (actual payload only 16 bytes)."""
    return make_request(3, b"user", b"B" * 16, claimed_len=claimed)


SIZES = {"XS": 50, "S": 200, "M": 600, "L": 1500, "XL": 4000}
