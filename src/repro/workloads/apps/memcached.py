"""Memcached case study: hash-table cache server + CVE-2011-4971 analog.

A chained hash table of malloc'd items behind a binary protocol, driven by
a memaslap-like request generator.  The vulnerability mirrors the paper's
CVE-2011-4971 reproduction: an authentication-style opcode copies the
request body into a fixed 64-byte buffer using the *claimed* body length
from the header without validation.

Request format (little-endian):
  byte 0      opcode: 1 = SET, 2 = GET, 3 = AUTH (vulnerable path)
  byte 1      key length (K)
  bytes 2-3   value length (V)
  bytes 4..   K key bytes, then V value bytes
"""

from __future__ import annotations

import struct
from typing import List

SOURCE = r"""
struct Item { int hash; int vallen; char val[48]; struct Item *next; };
struct Item *g_table[256];
char g_req[512];
char g_auth[64];

int hash_key(char *key, int len) {
    int h = 0;
    for (int i = 0; i < len; i++) h = h * 131 + key[i];
    return h & 0x7FFFFFFF;
}

int handle_set(int keylen, int vallen) {
    if (vallen > 48) return 0;          // honest server-side check
    int h = hash_key(g_req + 4, keylen);
    int bucket = h % 256;
    struct Item *it = g_table[bucket];
    while (it && it->hash != h) it = it->next;
    if (!it) {
        it = (struct Item*)malloc(sizeof(struct Item));
        it->hash = h;
        it->next = g_table[bucket];
        g_table[bucket] = it;
    }
    it->vallen = vallen;
    memcpy(it->val, g_req + 4 + keylen, vallen);
    return 1;
}

int handle_get(int keylen, int conn) {
    int h = hash_key(g_req + 4, keylen);
    struct Item *it = g_table[h % 256];
    while (it && it->hash != h) it = it->next;
    if (it) { net_send(conn, it->val, it->vallen); return 1; }
    net_send(conn, "N", 1);
    return 0;
}

int handle_auth(int keylen, int vallen, int conn) {
    // CVE-2011-4971 analog: vallen comes straight from the header.
    memcpy(g_auth, g_req + 4 + keylen, vallen);
    net_send(conn, "A", 1);
    return 1;
}

int main(int n, int threads) {
    int served = 0;
    int checksum = 0;
    for (int r = 0; r < n; r++) {
        int got = net_recv(0, g_req, 512);
        if (got <= 0) break;
        int op = g_req[0] & 255;
        int keylen = g_req[1] & 255;
        int vallen = (g_req[2] & 255) | ((g_req[3] & 255) << 8);
        if (op == 1) {
            checksum += handle_set(keylen, vallen);
            net_send(0, "S", 1);
        } else if (op == 2) {
            checksum += handle_get(keylen, 0);
        } else if (op == 3) {
            handle_auth(keylen, vallen, 0);
        }
        served++;
    }
    if (checksum < 0) return -1;   // keep the hit accounting live
    return served;
}
"""


#: Recovery-enabled build of the same server (see ``RECOVERY_SOURCE``
#: below): adds magic-guarded SNAPSHOT/RESTORE opcodes and zero-fills the
#: request buffer tail after every receive so stored values are a pure
#: function of the request bytes (a prerequisite for replaying a WAL of
#: mutations only — without it a truncated SET would capture residue of
#: whatever request happened to precede it).
SNAPSHOT_OP = 9
RESTORE_OP = 10
#: 4-byte guard carried in the key field of control requests; a fuzzed
#: client request whose opcode bit-flips onto a control opcode cannot
#: also carry the magic, so it falls through exactly like an unknown
#: opcode does in the base build.
CONTROL_MAGIC = bytes((0xA5, 0x5A, 0xC3, 0x3C))
#: Terminator frame closing a snapshot dump.
SNAPSHOT_END = b"DONE"

_RECOVERY_HELPERS = r"""
char g_snap[64];

int snap_magic_ok(int keylen) {
    if (keylen != 4) return 0;
    if ((g_req[4] & 255) != 165) return 0;
    if ((g_req[5] & 255) != 90) return 0;
    if ((g_req[6] & 255) != 195) return 0;
    if ((g_req[7] & 255) != 60) return 0;
    return 1;
}

int snapshot_dump(int conn) {
    int count = 0;
    for (int b = 0; b < 256; b++) {
        struct Item *it = g_table[b];
        while (it) {
            g_snap[0] = it->hash & 255;
            g_snap[1] = (it->hash >> 8) & 255;
            g_snap[2] = (it->hash >> 16) & 255;
            g_snap[3] = (it->hash >> 24) & 255;
            g_snap[4] = it->vallen & 255;
            g_snap[5] = (it->vallen >> 8) & 255;
            for (int j = 0; j < it->vallen; j++) g_snap[6 + j] = it->val[j];
            net_send(conn, g_snap, 6 + it->vallen);
            count++;
            it = it->next;
        }
    }
    net_send(conn, "DONE", 4);
    return count;
}

int restore_item(int vallen, int conn) {
    if (vallen > 48) { net_send(conn, "X", 1); return 0; }
    int h = (g_req[8] & 255) | ((g_req[9] & 255) << 8)
          | ((g_req[10] & 255) << 16) | ((g_req[11] & 255) << 24);
    int bucket = h % 256;
    struct Item *it = g_table[bucket];
    while (it && it->hash != h) it = it->next;
    if (!it) {
        it = (struct Item*)malloc(sizeof(struct Item));
        it->hash = h;
        it->next = g_table[bucket];
        g_table[bucket] = it;
    }
    it->vallen = vallen;
    memcpy(it->val, g_req + 12, vallen);
    net_send(conn, "R", 1);
    return 1;
}

int main("""

_RECOVERY_DISPATCH = r"""        } else if (op == 3) {
            handle_auth(keylen, vallen, 0);
        } else if (op == 9) {
            if (snap_magic_ok(keylen)) { snapshot_dump(0); }
        } else if (op == 10) {
            if (snap_magic_ok(keylen)) { restore_item(vallen, 0); }
        }"""


def _recovery_source() -> str:
    """Derive the recovery build from ``SOURCE`` (never edit both)."""
    anchors = (
        ("int main(", _RECOVERY_HELPERS),
        ("        int got = net_recv(0, g_req, 512);\n"
         "        if (got <= 0) break;",
         "        int got = net_recv(0, g_req, 512);\n"
         "        if (got <= 0) break;\n"
         "        memset(g_req + got, 0, 512 - got);"),
        ("        } else if (op == 3) {\n"
         "            handle_auth(keylen, vallen, 0);\n"
         "        }",
         _RECOVERY_DISPATCH),
    )
    source = SOURCE
    for old, new in anchors:
        if old not in source:
            raise RuntimeError(
                f"memcached RECOVERY_SOURCE anchor vanished: {old[:40]!r}")
        source = source.replace(old, new, 1)
    return source


RECOVERY_SOURCE = _recovery_source()


def make_request(op: int, key: bytes, value: bytes = b"",
                 claimed_len: int = -1) -> bytes:
    """Build one protocol request; ``claimed_len`` overrides the header's
    value length (the attack knob)."""
    vallen = len(value) if claimed_len < 0 else claimed_len
    return bytes((op, len(key))) + struct.pack("<H", vallen) + key + value


def workload(n: int, value_size: int = 32, set_every: int = 10) -> List[bytes]:
    """memaslap-like mix over a small key space: one SET per ``set_every``
    requests (default 90% GET / 10% SET; the recovery experiments lower
    ``set_every`` for write-heavy traffic)."""
    requests = []
    for i in range(n):
        key = b"key%06d" % (i % max(n // 10, 1))
        if i % set_every == 0:
            value = bytes((i + j) & 0xFF for j in range(value_size))
            requests.append(make_request(1, key, value[:48]))
        else:
            requests.append(make_request(2, key))
    return requests


# -- recovery hooks (repro.recovery drives these through the VM) -----------
def is_mutating(request: bytes) -> bool:
    """Does this request mutate the snapshotted store?  SETs do; AUTH only
    touches the (unsnapshotted) auth scratch buffer."""
    return len(request) >= 1 and request[0] == 1


def snapshot_request() -> bytes:
    """Control request asking the server to dump its item table."""
    return bytes((SNAPSHOT_OP, 4)) + struct.pack("<H", 0) + CONTROL_MAGIC


def restore_request(record: bytes) -> bytes:
    """Control request re-inserting one snapshot ``record``
    (hash[4] + vallen[2] + val bytes, exactly as ``snapshot_dump`` emits)."""
    if len(record) < 6:
        raise ValueError(f"short memcached snapshot record: {record!r}")
    vallen = record[4] | (record[5] << 8)
    value = record[6:6 + vallen]
    if len(value) != vallen:
        raise ValueError("memcached snapshot record truncated")
    return (bytes((RESTORE_OP, 4)) + struct.pack("<H", vallen)
            + CONTROL_MAGIC + record[:4] + value)


def parse_snapshot(messages) -> List[bytes]:
    """Validate a snapshot dump reply stream; returns the records."""
    if not messages or messages[-1] != SNAPSHOT_END:
        raise ValueError("memcached snapshot dump not terminated")
    records = list(messages[:-1])
    for record in records:
        if len(record) < 6:
            raise ValueError(f"short memcached snapshot record: {record!r}")
    return records


def cve_2011_4971_request(claimed: int = 300) -> bytes:
    """The attack: AUTH opcode claiming a 300-byte body for a 64-byte
    buffer (actual payload only 16 bytes)."""
    return make_request(3, b"user", b"B" * 16, claimed_len=claimed)


SIZES = {"XS": 50, "S": 200, "M": 600, "L": 1500, "XL": 4000}
