"""Nginx case study: single-threaded event server + CVE-2013-2028.

Mirrors §7: a single-threaded server pushing a static page per GET (the
paper's 200 KiB page scaled to 2 KiB) and a chunked-transfer upload path
with the actual CVE-2013-2028 shape — the chunk size is taken from the
request as a (signed) integer and used as a memcpy length into a 64-byte
stack buffer, enabling a stack smash / ROP pivot.

Request format:
  byte 0      type: 1 = GET, 2 = chunked upload
  bytes 1-4   chunk size (little-endian, attacker-controlled)
  bytes 5..   chunk data
"""

from __future__ import annotations

import struct
from typing import List

SOURCE = r"""
char g_page[2048];
char g_req[4096];

int handle_get(int conn) {
    net_send(conn, g_page, 2048);
    return 2048;
}

int handle_chunk(int conn) {
    char chunkbuf[64];
    int size = (g_req[1] & 255) | ((g_req[2] & 255) << 8)
             | ((g_req[3] & 255) << 16) | ((g_req[4] & 255) << 24);
    // CVE-2013-2028: attacker-controlled size, no validation.
    memcpy(chunkbuf, g_req + 5, size);
    int acc = 0;
    for (int i = 0; i < 16; i++) acc += chunkbuf[i];
    net_send(conn, "OK", 2);
    return acc;
}

int main(int n, int threads) {
    for (int i = 0; i < 2048; i++) g_page[i] = (char)('a' + i % 26);
    int served = 0;
    for (int r = 0; r < n; r++) {
        int got = net_recv(0, g_req, 4096);
        if (got <= 0) break;
        int type = g_req[0] & 255;
        if (type == 1) handle_get(0);
        else handle_chunk(0);
        served++;
    }
    return served;
}
"""


def get_request() -> bytes:
    return bytes((1, 0, 0, 0, 0))


def chunk_request(data: bytes, claimed: int = -1) -> bytes:
    size = len(data) if claimed < 0 else claimed
    return bytes((2,)) + struct.pack("<i", size) + data


def workload(n: int) -> List[bytes]:
    """ab-style mix: static GETs with occasional small uploads."""
    requests = []
    for i in range(n):
        if i % 8 == 0:
            requests.append(chunk_request(b"d" * 32))
        else:
            requests.append(get_request())
    return requests


def cve_2013_2028_request(claimed: int = 80) -> bytes:
    """The attack: a chunk claiming 80 bytes for a 64-byte stack buffer —
    smashing handle_chunk's frame up to and including the return address."""
    return chunk_request(b"E" * 60, claimed=claimed)


SIZES = {"XS": 40, "S": 120, "M": 400, "L": 1000, "XL": 2400}
