"""SPEC CPU2006 subset in MiniC — the 13 programs the paper reports
(§6.7; dealII/omnetpp/povray/perlbench/gcc/soplex are excluded there too).

These are single-threaded, more CPU-bound kernels (``threads`` is accepted
and ignored, matching the suite convention).  Pointer-heavy members (mcf,
xalancbmk, astar) stress metadata schemes; float kernels (lbm, milc, namd,
sphinx3) stream arrays.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

_HDR = "int g_n; int g_threads;\n"

ASTAR = _HDR + r"""
// Grid path search with an open list of node pointers.
struct ANode { int x; int y; int cost; struct ANode *next; };

int main(int n, int threads) {
    int dim = n;
    char *blocked = (char*)malloc(dim * dim);
    for (int i = 0; i < dim * dim; i++)
        blocked[i] = (char)(((i * 2654435761) >> 9 & 7) == 0 ? 1 : 0);
    int *dist = (int*)malloc(dim * dim * sizeof(int));
    for (int i = 0; i < dim * dim; i++) dist[i] = 1 << 29;
    struct ANode *open = (struct ANode*)malloc(sizeof(struct ANode));
    open->x = 0; open->y = 0; open->cost = 0; open->next = (struct ANode*)0;
    dist[0] = 0;
    int expanded = 0;
    while (open) {
        struct ANode *cur = open;
        open = open->next;
        expanded++;
        int cx = cur->x; int cy = cur->y; int cc = cur->cost;
        free(cur);
        // 4-neighbourhood relaxation.
        for (int d = 0; d < 4; d++) {
            int nx = cx + (d == 0) - (d == 1);
            int ny = cy + (d == 2) - (d == 3);
            if (nx < 0 || ny < 0 || nx >= dim || ny >= dim) continue;
            int id = ny * dim + nx;
            if (blocked[id]) continue;
            int nc = cc + 1;
            if (nc < dist[id]) {
                dist[id] = nc;
                struct ANode *nn = (struct ANode*)malloc(sizeof(struct ANode));
                nn->x = nx; nn->y = ny; nn->cost = nc; nn->next = open;
                open = nn;
            }
        }
    }
    int goal = dist[dim * dim - 1];
    free(blocked); free(dist);
    return (goal % 100000) + expanded % 1000;
}
"""

BZIP2 = _HDR + r"""
// Run-length + move-to-front over a block, like the bzip2 front stages.
int main(int n, int threads) {
    char *block = (char*)malloc(n);
    for (int i = 0; i < n; i++)
        block[i] = (char)('a' + ((i / 7) * 13 + i) % 16);
    char mtf[256];
    for (int i = 0; i < 256; i++) mtf[i] = (char)i;
    int out_sum = 0;
    int run = 0;
    char prev = (char)-1;
    for (int i = 0; i < n; i++) {
        char c = block[i];
        if (c == prev) { run++; continue; }
        out_sum += run;
        run = 1; prev = c;
        // Move-to-front coding.
        int pos = 0;
        while (mtf[pos] != c) pos++;
        for (int j = pos; j > 0; j--) mtf[j] = mtf[j - 1];
        mtf[0] = c;
        out_sum += pos;
    }
    free(block);
    return out_sum % 1000000;
}
"""

GOBMK = _HDR + r"""
// Board evaluation with recursive group flood-fill (Go-like liberties).
char g_board[361];
char g_seen[361];

int flood(int pos, int dim, char color) {
    if (pos < 0 || pos >= dim * dim) return 0;
    if (g_seen[pos] || g_board[pos] != color) return 0;
    g_seen[pos] = 1;
    int size = 1;
    if (pos % dim != 0) size += flood(pos - 1, dim, color);
    if (pos % dim != dim - 1) size += flood(pos + 1, dim, color);
    size += flood(pos - dim, dim, color);
    size += flood(pos + dim, dim, color);
    return size;
}

int main(int n, int threads) {
    int dim = 19;
    int score = 0;
    for (int game = 0; game < n; game++) {
        for (int i = 0; i < dim * dim; i++) {
            g_board[i] = (char)((i * 7 + game * 31) % 3);
            g_seen[i] = 0;
        }
        for (int i = 0; i < dim * dim; i++)
            if (!g_seen[i] && g_board[i] != 0)
                score += flood(i, dim, g_board[i]);
    }
    return score % 1000000;
}
"""

H264REF = _HDR + r"""
int main(int n, int threads) {
    int width = 64;
    int rows = n;
    char *frame = (char*)malloc(rows * width);
    int *resid = (int*)malloc(rows * width * sizeof(int));
    for (int i = 0; i < rows * width; i++)
        frame[i] = (char)((i * 97) % 253);
    // Intra prediction + residual, 4x4 blocks.
    int sum = 0;
    for (int by = 0; by + 4 <= rows; by += 4)
        for (int bx = 0; bx + 4 <= width; bx += 4) {
            int dc = 0;
            for (int x = 0; x < 4; x++)
                dc += frame[by * width + bx + x] & 255;
            dc /= 4;
            for (int y = 0; y < 4; y++)
                for (int x = 0; x < 4; x++) {
                    int id = (by + y) * width + bx + x;
                    resid[id] = (frame[id] & 255) - dc;
                    sum += resid[id] > 0 ? resid[id] : -resid[id];
                }
        }
    free(frame); free(resid);
    return sum % 1000000;
}
"""

HMMER = _HDR + r"""
// Viterbi-style dynamic programming over a profile.
int main(int n, int threads) {
    int states = 32;
    int *prev = (int*)malloc(states * sizeof(int));
    int *cur = (int*)malloc(states * sizeof(int));
    for (int s = 0; s < states; s++) prev[s] = s * 3 % 17;
    for (int t = 0; t < n; t++) {
        int obs = (t * 131 + 7) % 23;
        for (int s = 0; s < states; s++) {
            int stay = prev[s] + obs % 5;
            int move = (s > 0 ? prev[s - 1] : 1 << 20) + obs % 7;
            cur[s] = (stay < move ? stay : move) + (s ^ obs) % 3;
        }
        int *tmp = prev; prev = cur; cur = tmp;
    }
    int best = 1 << 30;
    for (int s = 0; s < states; s++) if (prev[s] < best) best = prev[s];
    free(prev); free(cur);
    return best % 1000000;
}
"""

LBM = _HDR + r"""
// 1D lattice-Boltzmann-ish 3-point stencil over doubles.
int main(int n, int threads) {
    double *a = (double*)malloc(n * sizeof(double));
    double *b = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) a[i] = (double)(i % 29);
    for (int step = 0; step < 10; step++) {
        for (int i = 1; i < n - 1; i++)
            b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
        b[0] = a[0]; b[n - 1] = a[n - 1];
        double *tmp = a; a = b; b = tmp;
    }
    double sum = 0.0;
    for (int i = 0; i < n; i += 3) sum += a[i];
    free(a); free(b);
    return (int)sum % 1000000;
}
"""

LIBQUANTUM = _HDR + r"""
// Quantum register simulation: phase flips over a sparse state table.
int main(int n, int threads) {
    int *states = (int*)malloc(n * sizeof(int));
    int *amps = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) { states[i] = i * 2654435761 & 0xFFFFF; amps[i] = 1; }
    for (int gate = 0; gate < 12; gate++) {
        int mask = 1 << (gate % 16);
        for (int i = 0; i < n; i++) {
            if (states[i] & mask) amps[i] = -amps[i];
            states[i] ^= mask >> 1;
        }
    }
    int sum = 0;
    for (int i = 0; i < n; i++) sum += amps[i] * (states[i] % 7);
    free(states); free(amps);
    return sum % 1000000;
}
"""

MCF = _HDR + r"""
// Min-cost-flow-ish relaxation over a pointer-linked arc network.  The
// paper's headline ASan EPC-thrashing case (2.4x vs 1% for SGXBounds).
struct Arc { int to; int cost; struct Arc *next; };
struct Arc **g_adj;

int main(int n, int threads) {
    int nodes = n;
    g_adj = (struct Arc**)malloc(nodes * sizeof(struct Arc*));
    for (int i = 0; i < nodes; i++) g_adj[i] = (struct Arc*)0;
    for (int i = 0; i < nodes; i++) {
        for (int e = 0; e < 3; e++) {
            struct Arc *a = (struct Arc*)malloc(sizeof(struct Arc));
            a->to = (i * 7919 + e * 104729) % nodes;
            a->cost = (i + e * 31) % 50 + 1;
            a->next = g_adj[i];
            g_adj[i] = a;
        }
    }
    int *potential = (int*)malloc(nodes * sizeof(int));
    for (int i = 0; i < nodes; i++) potential[i] = 1 << 20;
    potential[0] = 0;
    for (int round = 0; round < 12; round++) {
        int changed = 0;
        for (int i = 0; i < nodes; i++) {
            struct Arc *a = g_adj[i];
            while (a) {
                int cand = potential[i] + a->cost;
                if (cand < potential[a->to]) { potential[a->to] = cand; changed = 1; }
                a = a->next;
            }
        }
        if (!changed) break;
    }
    int sum = 0;
    for (int i = 0; i < nodes; i++)
        if (potential[i] < (1 << 20)) sum += potential[i];
    free(potential);
    return sum % 1000000;
}
"""

MILC = _HDR + r"""
// Lattice site updates: complex-like 2-vectors of doubles.
int main(int n, int threads) {
    double *re = (double*)malloc(n * sizeof(double));
    double *im = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) { re[i] = (double)(i % 17); im[i] = (double)(i % 5); }
    for (int sweep = 0; sweep < 8; sweep++) {
        for (int i = 0; i < n; i++) {
            int j = (i + 1) % n;
            double nr = re[i] * re[j] - im[i] * im[j];
            double ni = re[i] * im[j] + im[i] * re[j];
            re[i] = nr * 0.125 + re[i] * 0.875;
            im[i] = ni * 0.125 + im[i] * 0.875;
        }
    }
    double sum = 0.0;
    for (int i = 0; i < n; i += 2) sum += re[i] + im[i];
    free(re); free(im);
    return (int)sum % 1000000;
}
"""

NAMD = _HDR + r"""
// Pairwise short-range forces within a cutoff window.
int main(int n, int threads) {
    double *x = (double*)malloc(n * sizeof(double));
    double *f = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) { x[i] = (double)(i % 100) * 0.5; f[i] = 0.0; }
    for (int step = 0; step < 4; step++) {
        for (int i = 0; i < n; i++) {
            double xi = x[i];
            double force = 0.0;
            int lo = i - 8 < 0 ? 0 : i - 8;
            int hi = i + 8 >= n ? n - 1 : i + 8;
            for (int j = lo; j <= hi; j++) {
                if (j == i) continue;
                double d = x[j] - xi;
                if (d < 0.0) d = -d;
                if (d < 4.0 && d > 0.01) force += 1.0 / (d * d) - 0.5 / d;
            }
            f[i] = force;
        }
        for (int i = 0; i < n; i++) x[i] += f[i] * 0.001;
    }
    double sum = 0.0;
    for (int i = 0; i < n; i += 5) sum += x[i];
    free(x); free(f);
    return (int)sum % 1000000;
}
"""

SJENG = _HDR + r"""
// Alpha-beta-ish game tree search with a small evaluation.
int g_board2[64];

int search(int depth, int alpha, int beta, int seed) {
    if (depth == 0) {
        int eval = 0;
        for (int i = 0; i < 64; i++) eval += g_board2[i] * ((i + seed) % 5 - 2);
        return eval % 1000;
    }
    int best = -100000;
    for (int move = 0; move < 4; move++) {
        int square = (seed * 31 + move * 17) % 64;
        int saved = g_board2[square];
        g_board2[square] = (saved + 1) % 3;
        int score = -search(depth - 1, -beta, -alpha, seed * 7 + move);
        g_board2[square] = saved;
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int main(int n, int threads) {
    for (int i = 0; i < 64; i++) g_board2[i] = i % 3;
    int total = 0;
    for (int game = 0; game < n; game++)
        total += search(4, -100000, 100000, game + 1);
    return total % 1000000;
}
"""

SPHINX3 = _HDR + r"""
// Gaussian mixture scoring over feature frames.
int main(int n, int threads) {
    int dims = 16;
    int mixes = 8;
    double *means = (double*)malloc(mixes * dims * sizeof(double));
    double *feat = (double*)malloc(dims * sizeof(double));
    for (int m = 0; m < mixes * dims; m++) means[m] = (double)(m % 23);
    double total = 0.0;
    for (int frame = 0; frame < n; frame++) {
        for (int d = 0; d < dims; d++)
            feat[d] = (double)((frame * 13 + d * 7) % 23);
        double best = 1.0e30;
        for (int m = 0; m < mixes; m++) {
            double score = 0.0;
            for (int d = 0; d < dims; d++) {
                double diff = feat[d] - means[m * dims + d];
                score += diff * diff;
            }
            if (score < best) best = score;
        }
        total += best;
    }
    free(means); free(feat);
    return (int)total % 1000000;
}
"""

XALANCBMK = _HDR + r"""
// XSLT-ish tree transform: build a document tree, then rewrite it.
struct XNode { int tag; int value; struct XNode *child; struct XNode *sibling; };

struct XNode *build(int depth, int seed) {
    struct XNode *node = (struct XNode*)malloc(sizeof(struct XNode));
    node->tag = seed % 7;
    node->value = seed % 97;
    node->child = (struct XNode*)0;
    node->sibling = (struct XNode*)0;
    if (depth > 0) {
        struct XNode *prev = (struct XNode*)0;
        for (int c = 0; c < 3; c++) {
            struct XNode *kid = build(depth - 1, seed * 5 + c + 1);
            kid->sibling = prev;
            prev = kid;
        }
        node->child = prev;
    }
    return node;
}

int transform(struct XNode *node, int depth) {
    if (!node) return 0;
    int sum = node->value * (node->tag + 1) + depth;
    if (node->tag == 3) node->value = node->value * 2 % 97;
    sum += transform(node->child, depth + 1);
    sum += transform(node->sibling, depth);
    return sum;
}

int release(struct XNode *node) {
    if (!node) return 0;
    int freed = release(node->child) + release(node->sibling) + 1;
    free(node);
    return freed;
}

int main(int n, int threads) {
    int total = 0;
    for (int doc = 0; doc < n; doc++) {
        struct XNode *root = build(4, doc + 11);
        total += transform(root, 0) % 10007;
        release(root);
    }
    return total % 1000000;
}
"""

_SPEC = [
    ("astar", ASTAR, {"XS": 12, "S": 20, "M": 32, "L": 48, "XL": 64}, "high",
     "grid path search with pointer open list"),
    ("bzip2", BZIP2, {"XS": 1024, "S": 4096, "M": 16384, "L": 65536,
                      "XL": 131072}, "low",
     "run-length + move-to-front coding"),
    ("gobmk", GOBMK, {"XS": 2, "S": 6, "M": 16, "L": 40, "XL": 80}, "low",
     "recursive board flood-fill"),
    ("h264ref", H264REF, {"XS": 16, "S": 48, "M": 128, "L": 384, "XL": 768},
     "low", "intra prediction residuals"),
    ("hmmer", HMMER, {"XS": 256, "S": 1024, "M": 4096, "L": 16384,
                      "XL": 32768}, "low", "Viterbi dynamic programming"),
    ("lbm", LBM, {"XS": 512, "S": 2048, "M": 8192, "L": 32768, "XL": 65536},
     "none", "3-point stencil over doubles"),
    ("libquantum", LIBQUANTUM, {"XS": 512, "S": 2048, "M": 8192, "L": 32768,
                                "XL": 65536}, "none",
     "bit-mask sweeps over state arrays"),
    ("mcf", MCF, {"XS": 64, "S": 256, "M": 1024, "L": 4096, "XL": 8192},
     "high", "relaxation over pointer-linked arcs (ASan EPC case)"),
    ("milc", MILC, {"XS": 512, "S": 2048, "M": 8192, "L": 32768, "XL": 65536},
     "none", "complex lattice sweeps"),
    ("namd", NAMD, {"XS": 128, "S": 512, "M": 2048, "L": 8192, "XL": 16384},
     "none", "cutoff pairwise forces"),
    ("sjeng", SJENG, {"XS": 4, "S": 16, "M": 64, "L": 256, "XL": 512}, "low",
     "alpha-beta game search"),
    ("sphinx3", SPHINX3, {"XS": 64, "S": 256, "M": 1024, "L": 4096,
                          "XL": 8192}, "none", "Gaussian mixture scoring"),
    ("xalancbmk", XALANCBMK, {"XS": 2, "S": 8, "M": 24, "L": 64, "XL": 128},
     "high", "tree build/transform/release churn"),
]

for _name, _src, _sizes, _ptr, _desc in _SPEC:
    register(Workload(_name, "spec", _src, sizes=_sizes, threads=1,
                      pointer_intensity=_ptr, description=_desc))
