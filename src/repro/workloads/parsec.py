"""PARSEC 3.0 subset in MiniC — the 9 applications the paper supports
(§6.1; raytrace/freqmine/facesim/canneal are excluded there too).

Each kernel keeps the memory character the paper's analysis leans on:
*blackscholes* is pointer-free float streaming (near-zero overheads),
*swaptions* constantly allocates and frees tiny objects (the ASan
quarantine / MPX bounds-table pathology of §6.2), *dedup* builds a
pointer-dense chunk index (the MPX out-of-memory crash), *fluidanimate*
and *bodytrack* chase neighbour/particle pointers, *streamcluster*,
*vips* and *x264* stream larger arrays with mixed access patterns.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

_COMMON = r"""
int g_n;
int g_threads;
"""

BLACKSCHOLES = _COMMON + r"""
double *g_price;
double *g_strike;
double *g_rate;
double *g_vol;
double *g_time;
double *g_out;

double approx_exp(double x) {
    // 8-term series; inputs are small and negative.
    double term = 1.0; double sum = 1.0;
    for (int i = 1; i < 8; i++) {
        term = term * x / (double)i;
        sum += term;
    }
    return sum;
}

double cnd(double x) {
    // Polynomial approximation of the cumulative normal distribution.
    int neg = 0;
    if (x < 0.0) { x = -x; neg = 1; }
    double k = 1.0 / (1.0 + 0.2316419 * x);
    double poly = k * (0.31938153 + k * (-0.356563782 + k * (1.781477937
                + k * (-1.821255978 + k * 1.330274429))));
    double approx = 1.0 - 0.39894228 * approx_exp(-0.5 * x * x) * poly;
    if (neg) return 1.0 - approx;
    return approx;
}

int worker(int idx) {
    int chunk = g_n / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_n : start + chunk;
    for (int i = start; i < end; i++) {
        double s = g_price[i]; double x = g_strike[i];
        double t = g_time[i]; double r = g_rate[i]; double v = g_vol[i];
        double d1 = (r + 0.5 * v * v) * t / (v * t) + 0.5;
        double d2 = d1 - v * t;
        g_out[i] = s * cnd(d1) - x * approx_exp(-r * t) * cnd(d2);
    }
    return 0;
}

int main(int n, int threads) {
    g_n = n; g_threads = threads;
    g_price = (double*)malloc(n * sizeof(double));
    g_strike = (double*)malloc(n * sizeof(double));
    g_rate = (double*)malloc(n * sizeof(double));
    g_vol = (double*)malloc(n * sizeof(double));
    g_time = (double*)malloc(n * sizeof(double));
    g_out = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) {
        g_price[i] = 90.0 + (double)(i % 21);
        g_strike[i] = 95.0 + (double)(i % 11);
        g_rate[i] = 0.02 + 0.0001 * (double)(i % 7);
        g_vol[i] = 0.2 + 0.001 * (double)(i % 13);
        g_time[i] = 0.5 + 0.01 * (double)(i % 17);
    }
    int tids[16];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    for (int t = 0; t < threads; t++) join(tids[t]);
    double sum = 0.0;
    for (int i = 0; i < n; i++) sum += g_out[i];
    return (int)sum % 1000000;
}
"""

BODYTRACK = _COMMON + r"""
// Particle filter over an array of particle pointers.
struct Particle { double x; double y; double z; double weight; };
struct Particle **g_parts;

int main(int n, int threads) {
    g_threads = threads;
    g_parts = (struct Particle**)malloc(n * sizeof(struct Particle*));
    for (int i = 0; i < n; i++) {
        struct Particle *p = (struct Particle*)malloc(sizeof(struct Particle));
        p->x = (double)(i % 64); p->y = (double)((i * 3) % 64);
        p->z = (double)((i * 7) % 64); p->weight = 1.0;
        g_parts[i] = p;
    }
    for (int step = 0; step < 4; step++) {
        double total = 0.0;
        for (int i = 0; i < n; i++) {
            struct Particle *p = g_parts[i];
            double score = 64.0 - (p->x - 32.0) * (p->x - 32.0) * 0.05
                         - (p->y - 32.0) * (p->y - 32.0) * 0.05;
            p->weight = p->weight * (score > 0.0 ? score : 0.1);
            total += p->weight;
        }
        for (int i = 0; i < n; i++) {
            struct Particle *p = g_parts[i];
            p->weight = p->weight / total;
            p->x += p->weight * 8.0;
            p->y += p->weight * 4.0;
        }
    }
    double cx = 0.0;
    for (int i = 0; i < n; i++) cx += g_parts[i]->x;
    for (int i = 0; i < n; i++) free(g_parts[i]);
    free(g_parts);
    return (int)cx % 1000000;
}
"""

DEDUP = _COMMON + r"""
// Content-defined chunking + pointer-dense chunk index: the kernel whose
// metadata explosion kills MPX in the paper (missing bar in Fig. 7).
struct Chunk { int hash; int len; int count; struct Chunk *next; };
struct Chunk *g_index[512];

int main(int n, int threads) {
    g_threads = threads;
    char *data = (char*)malloc(n);
    for (int i = 0; i < n; i++)
        data[i] = (char)((i * 2654435761) >> 7 & 255);
    int unique = 0;
    int dups = 0;
    int start = 0;
    int roll = 0;
    for (int i = 0; i < n; i++) {
        roll = (roll * 33 + data[i]) & 0xFFFF;
        int at_boundary = (roll & 63) == 0 || i - start >= 256;
        if (at_boundary || i == n - 1) {
            int len = i - start + 1;
            int h = 0;
            for (int j = start; j <= i; j++) h = h * 131 + data[j];
            int bucket = (h & 0x7FFFFFFF) % 512;
            struct Chunk *c = g_index[bucket];
            while (c && (c->hash != h || c->len != len)) c = c->next;
            if (c) {
                c->count = c->count + 1;
                dups++;
            } else {
                struct Chunk *fresh = (struct Chunk*)malloc(sizeof(struct Chunk));
                fresh->hash = h; fresh->len = len; fresh->count = 1;
                fresh->next = g_index[bucket];
                g_index[bucket] = fresh;
                unique++;
            }
            start = i + 1;
        }
    }
    free(data);
    return unique * 1000 + dups % 1000;
}
"""

FERRET = _COMMON + r"""
// Similarity search: query vectors against a pointer-indexed database.
double **g_db;
int g_dim;

int main(int n, int threads) {
    g_threads = threads;
    g_dim = 8;
    g_db = (double**)malloc(n * sizeof(double*));
    for (int i = 0; i < n; i++) {
        double *v = (double*)malloc(g_dim * sizeof(double));
        for (int j = 0; j < g_dim; j++)
            v[j] = (double)((i * 13 + j * 5) % 97);
        g_db[i] = v;
    }
    int hits = 0;
    for (int q = 0; q < 16; q++) {
        double best = 1.0e30;
        int best_i = 0;
        for (int i = 0; i < n; i++) {
            double d = 0.0;
            double *v = g_db[i];
            for (int j = 0; j < g_dim; j++) {
                double diff = v[j] - (double)((q * 11 + j * 3) % 97);
                d += diff * diff;
            }
            if (d < best) { best = d; best_i = i; }
        }
        hits += best_i;
    }
    for (int i = 0; i < n; i++) free(g_db[i]);
    free(g_db);
    return hits % 1000000;
}
"""

FLUIDANIMATE = _COMMON + r"""
// Grid of cells with particle linked lists (neighbour pointer chasing).
struct FParticle { double x; double v; struct FParticle *next; };
struct FParticle *g_cells[64];

int main(int n, int threads) {
    g_threads = threads;
    for (int i = 0; i < n; i++) {
        struct FParticle *p = (struct FParticle*)malloc(sizeof(struct FParticle));
        int cell = (i * 7) % 64;
        p->x = (double)(i % 100);
        p->v = 0.0;
        p->next = g_cells[cell];
        g_cells[cell] = p;
    }
    for (int step = 0; step < 5; step++) {
        for (int c = 0; c < 64; c++) {
            struct FParticle *p = g_cells[c];
            while (p) {
                struct FParticle *q = g_cells[(c + 1) % 64];
                double force = 0.0;
                int looked = 0;
                while (q && looked < 4) {
                    force += (q->x - p->x) * 0.001;
                    q = q->next;
                    looked++;
                }
                p->v += force;
                p->x += p->v;
                p = p->next;
            }
        }
    }
    double sum = 0.0;
    for (int c = 0; c < 64; c++) {
        struct FParticle *p = g_cells[c];
        while (p) { sum += p->x; p = p->next; }
    }
    return (int)sum % 1000000;
}
"""

STREAMCLUSTER = _COMMON + r"""
double *g_pts;
int g_dim;

int main(int n, int threads) {
    g_threads = threads;
    g_dim = 8;
    g_pts = (double*)malloc(n * g_dim * sizeof(double));
    for (int i = 0; i < n * g_dim; i++)
        g_pts[i] = (double)((i * 19) % 103);
    // Greedy online clustering into at most 12 medians.
    double medians[96];
    int nmed = 0;
    double cost = 0.0;
    for (int i = 0; i < n; i++) {
        double best = 1.0e30;
        for (int m = 0; m < nmed; m++) {
            double d = 0.0;
            for (int j = 0; j < g_dim; j++) {
                double diff = g_pts[i * g_dim + j] - medians[m * g_dim + j];
                d += diff * diff;
            }
            if (d < best) best = d;
        }
        if (nmed < 12 && best > 900.0) {
            for (int j = 0; j < g_dim; j++)
                medians[nmed * g_dim + j] = g_pts[i * g_dim + j];
            nmed++;
        } else {
            cost += best;
        }
    }
    free(g_pts);
    return nmed * 1000 + (int)cost % 1000;
}
"""

SWAPTIONS = _COMMON + r"""
// Monte-Carlo-ish pricing with constant tiny alloc/free churn: the ASan
// quarantine blow-up and the MPX bounds-table flood (§6.2).
int main(int n, int threads) {
    g_threads = threads;
    double total = 0.0;
    int state = 12345;
    for (int trial = 0; trial < n; trial++) {
        double *path = (double*)malloc(16 * sizeof(double));
        double *disc = (double*)malloc(16 * sizeof(double));
        double rate = 0.03;
        for (int s = 0; s < 16; s++) {
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF;
            double shock = (double)(state % 2000 - 1000) * 0.00001;
            rate = rate + shock;
            path[s] = rate;
            disc[s] = 1.0 / (1.0 + rate);
        }
        double value = 0.0;
        double factor = 1.0;
        for (int s = 0; s < 16; s++) {
            factor = factor * disc[s];
            double payoff = path[s] - 0.03;
            if (payoff > 0.0) value += payoff * factor;
        }
        total += value;
        free(path);
        free(disc);
    }
    return (int)(total * 100000.0) % 1000000;
}
"""

VIPS = _COMMON + r"""
// Image pipeline: per-row transforms over a wide byte image.
int main(int n, int threads) {
    g_threads = threads;
    int width = 256;
    int rows = n;
    char *img = (char*)malloc(rows * width);
    char *out = (char*)malloc(rows * width);
    for (int i = 0; i < rows * width; i++)
        img[i] = (char)((i * 37) % 251);
    // Pass 1: brightness.
    for (int i = 0; i < rows * width; i++)
        out[i] = (char)((img[i] & 255) * 3 / 4 + 16);
    // Pass 2: 1D blur per row.
    for (int r = 0; r < rows; r++)
        for (int c = 1; c < width - 1; c++) {
            int base = r * width;
            img[base + c] = (char)(((out[base + c - 1] & 255)
                + (out[base + c] & 255) + (out[base + c + 1] & 255)) / 3);
        }
    int checksum = 0;
    for (int i = 0; i < rows * width; i += 17)
        checksum += img[i] & 255;
    free(img); free(out);
    return checksum % 1000000;
}
"""

X264 = _COMMON + r"""
// Motion estimation: block search of the current frame in the reference.
int main(int n, int threads) {
    g_threads = threads;
    int width = 128;
    int rows = n;
    char *ref = (char*)malloc(rows * width);
    char *cur = (char*)malloc(rows * width);
    for (int i = 0; i < rows * width; i++) {
        ref[i] = (char)((i * 31) % 241);
        cur[i] = (char)(((i + 3) * 31) % 241);
    }
    int total_sad = 0;
    for (int by = 0; by + 8 <= rows; by += 8)
        for (int bx = 0; bx + 8 <= width; bx += 64) {
            int best = 1 << 30;
            for (int dy = -2; dy <= 2; dy++) {
                if (by + dy < 0 || by + dy + 8 > rows) continue;
                int sad = 0;
                for (int y = 0; y < 8; y++)
                    for (int x = 0; x < 8; x++) {
                        int a = cur[(by + y) * width + bx + x] & 255;
                        int b = ref[(by + dy + y) * width + bx + x] & 255;
                        sad += a > b ? a - b : b - a;
                    }
                if (sad < best) best = sad;
            }
            total_sad += best;
        }
    free(ref); free(cur);
    return total_sad % 1000000;
}
"""

register(Workload(
    "blackscholes", "parsec", BLACKSCHOLES,
    sizes={"XS": 128, "S": 512, "M": 2048, "L": 8192, "XL": 32768},
    threads=4, pointer_intensity="none",
    description="option pricing over flat float arrays"))

register(Workload(
    "bodytrack", "parsec", BODYTRACK,
    sizes={"XS": 128, "S": 512, "M": 2048, "L": 8192, "XL": 16384},
    threads=1, pointer_intensity="high",
    description="particle filter over an array of particle pointers"))

register(Workload(
    "dedup", "parsec", DEDUP,
    sizes={"XS": 2048, "S": 8192, "M": 32768, "L": 131072, "XL": 262144},
    threads=1, pointer_intensity="high",
    description="chunking + pointer-dense dedup index (MPX crash case)"))

register(Workload(
    "ferret", "parsec", FERRET,
    sizes={"XS": 64, "S": 256, "M": 1024, "L": 4096, "XL": 8192},
    threads=1, pointer_intensity="medium",
    description="similarity search across row-pointer database"))

register(Workload(
    "fluidanimate", "parsec", FLUIDANIMATE,
    sizes={"XS": 256, "S": 1024, "M": 4096, "L": 16384, "XL": 32768},
    threads=1, pointer_intensity="high",
    description="grid cells with particle linked lists"))

register(Workload(
    "streamcluster", "parsec", STREAMCLUSTER,
    sizes={"XS": 128, "S": 512, "M": 2048, "L": 8192, "XL": 16384},
    threads=1, pointer_intensity="low",
    description="online clustering of streamed points"))

register(Workload(
    "swaptions", "parsec", SWAPTIONS,
    sizes={"XS": 64, "S": 256, "M": 1024, "L": 4096, "XL": 8192},
    threads=1, pointer_intensity="medium",
    description="tiny-object alloc/free churn (quarantine/BT pathology)"))

register(Workload(
    "vips", "parsec", VIPS,
    sizes={"XS": 16, "S": 64, "M": 256, "L": 1024, "XL": 2048},
    threads=1, pointer_intensity="none",
    description="image pipeline over wide byte rows"))

register(Workload(
    "x264", "parsec", X264,
    sizes={"XS": 16, "S": 32, "M": 64, "L": 128, "XL": 256},
    threads=1, pointer_intensity="low",
    description="block motion estimation (safe-access optimization target)"))
