"""Network simulation for the server case studies.

The paper drives Memcached/Apache/Nginx from client machines over a 10 Gb
link; here clients are request generators feeding per-connection message
queues, and the servers reach them through the ``net_recv``/``net_send``
natives (the SCONE syscall interface).  Throughput is measured server-side
in simulated cycles per served request.

For the chaos experiments the clients are hardened the way real load
generators are: every connection keeps delivery/response accounting, a
request the server drops (``drop-request`` policy) can be retried a
bounded number of times with exponential backoff before the client gives
up and records an error, and all jitter comes from a seeded RNG so a
chaos run is reproducible byte-for-byte.

Every queued request is a :class:`_Message` with a process-unique id, so

* retry budgets are charged per message, not per ``(conn, payload)`` —
  two identical requests on one connection no longer share (and
  undercount) a budget, and an entry is cleaned up once its message is
  delivered and the connection has moved on;
* a partial read (``maxlen`` split) keeps the message's identity: the
  re-queued tail is the *same* message, so delivery accounting counts
  messages, never fragments.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Synthetic response the "client library" surfaces when the server drops
#: a request for good (retries exhausted).  Lives in the outgoing stream
#: so tests can assert the client saw the failure, but is NOT counted as a
#: served response.
ERROR_MARKER = b"ERR!"

#: Synthetic reply for a request the fleet's admission gate turned away
#: at enqueue.  Distinct from :data:`ERROR_MARKER` on purpose: an error
#: is the server failing a request it accepted; a rejection is the fleet
#: refusing to accept it at all (the client should back off, not retry),
#: and the two must never share a counter.
REJECTED_MARKER = b"RJCT"


class _Message:
    """One queued request with identity across splits and retries."""

    __slots__ = ("mid", "payload", "offset", "priority", "trace")

    def __init__(self, mid: int, payload: bytes,
                 priority: Optional[str] = None,
                 trace: Optional[str] = None):
        self.mid = mid
        self.payload = payload
        self.offset = 0           # bytes already read by the server
        self.priority = priority  # fleet priority class, None outside fleets
        self.trace = trace        # causal trace id, None outside obs runs


class ConnStats:
    """Per-connection delivery accounting."""

    __slots__ = ("pushed", "delivered", "responses", "errors", "retries",
                 "failed", "backoff_cycles", "error_replies", "rejected")

    def __init__(self) -> None:
        self.pushed = 0          # requests queued by the client
        self.delivered = 0       # requests fully read by the server
        self.responses = 0       # server responses (net_send calls)
        self.errors = 0          # error markers surfaced to the client
        self.retries = 0         # dropped requests re-queued for retry
        self.failed = 0          # requests abandoned after max retries
        self.backoff_cycles = 0  # client-side cycles spent backing off
        self.error_replies = 0   # ERROR_MARKER frames in the reply stream
        self.rejected = 0        # admission-gate rejections (RJCT frames)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class NetworkSim:
    """Message-oriented connection queues with failure accounting.

    ``retry_limit`` is how many times a client re-submits a request the
    server dropped; ``backoff_cycles`` is the base of the exponential
    backoff between attempts (doubled per retry, plus seeded jitter).
    The defaults (no retries, no seed) behave exactly like the original
    fire-and-forget queues.
    """

    def __init__(self, retry_limit: int = 0, backoff_cycles: int = 200,
                 seed: Optional[int] = None) -> None:
        self._incoming: Dict[int, Deque[_Message]] = {}
        self._outgoing: Dict[int, List[bytes]] = {}
        self._next_conn = 0
        self._next_mid = 0
        self.retry_limit = retry_limit
        self.backoff_cycles = backoff_cycles
        self._rng = random.Random(seed) if seed is not None else None
        self.conn_stats: Dict[int, ConnStats] = {}
        #: Retry attempts so far, keyed by message id.
        self._attempts: Dict[int, int] = {}
        #: Last fully delivered message per connection ``(mid, payload)``;
        #: the message whose failure a ``fail_request`` would report.
        self._await_outcome: Dict[int, Tuple[int, bytes]] = {}
        #: Optional ``repro.telemetry.Telemetry``; when attached, delivery
        #: events are published into its metrics registry.
        self.telemetry = None
        #: Optional ``repro.forensics.Forensics``; when attached, retry
        #: and error-reply paths record events carrying the originating
        #: message id (``stats()`` aggregates lose it).
        self.forensics = None
        #: Clock for forensic records (callable returning the simulated
        #: timestamp); the VM wires its instruction counter in here.
        self.clock = None
        #: Message id of the most recent :meth:`recv` delivery (full or
        #: partial) — lets callers correlate a receive with its message.
        self.last_recv_mid: Optional[int] = None
        #: Priority class of the most recent :meth:`recv` delivery; None
        #: outside fleet campaigns (plain workloads push without one).
        self.last_recv_priority: Optional[str] = None
        #: Trace id of the most recent :meth:`recv` delivery; None unless
        #: the fleet's observability layer stamped one at push time.
        self.last_recv_trace: Optional[str] = None
        #: Trace id per live message id, so a retried message (the old
        #: object is gone by the time ``fail_request`` re-queues it)
        #: keeps its causal identity.  Empty outside obs runs.
        self._traces: Dict[int, str] = {}

    def _now(self) -> int:
        """Simulated timestamp for forensic records (0 without a clock)."""
        return self.clock() if self.clock is not None else 0

    def _stats(self, conn: int) -> ConnStats:
        stats = self.conn_stats.get(conn)
        if stats is None:
            stats = self.conn_stats[conn] = ConnStats()
        return stats

    def _message(self, payload: bytes, mid: Optional[int] = None,
                 priority: Optional[str] = None,
                 trace: Optional[str] = None) -> _Message:
        if mid is None:
            mid = self._next_mid
            self._next_mid += 1
        return _Message(mid, payload, priority=priority, trace=trace)

    def connect(self, *requests: bytes) -> int:
        """Open a connection with ``requests`` queued for the server."""
        conn = self._next_conn
        self._next_conn += 1
        self._incoming[conn] = deque(self._message(r) for r in requests)
        self._outgoing[conn] = []
        self._stats(conn).pushed += len(requests)
        return conn

    def push(self, conn: int, data: bytes,
             priority: Optional[str] = None,
             trace: Optional[str] = None) -> int:
        """Queue one more request on an existing connection; returns the
        message id so dispatchers can correlate retries and errors.
        ``priority`` is the fleet's traffic class and ``trace`` the
        causal trace id, carried as message metadata so both survive
        splits and retries end to end."""
        message = self._message(data, priority=priority, trace=trace)
        self._incoming[conn].append(message)
        if trace is not None:
            self._traces[message.mid] = trace
        self._stats(conn).pushed += 1
        return message.mid

    def recv(self, conn: int, maxlen: int) -> Optional[bytes]:
        """Server-side receive: up to ``maxlen`` bytes of the front
        message; None at end-of-stream."""
        queue = self._incoming.get(conn)
        if not queue:
            return None
        message = queue[0]
        self.last_recv_mid = message.mid
        self.last_recv_priority = message.priority
        self.last_recv_trace = message.trace
        remaining = len(message.payload) - message.offset
        if remaining > maxlen:
            # Partial read: the tail stays at the front of the queue as
            # the same message, so accounting never sees a phantom
            # extra request.
            start = message.offset
            message.offset += maxlen
            return message.payload[start:start + maxlen]
        queue.popleft()
        data = message.payload[message.offset:]
        self._stats(conn).delivered += 1
        # The previously delivered message on this connection can only be
        # failed while it is the awaiting one; once a different message
        # takes that slot its retry budget is unreachable garbage — unless
        # it was requeued for retry and will come around again.
        prev = self._await_outcome.get(conn)
        if (prev is not None and prev[0] != message.mid
                and not any(m.mid == prev[0] for m in queue)):
            self._attempts.pop(prev[0], None)
            self._traces.pop(prev[0], None)
        self._await_outcome[conn] = (message.mid, message.payload)
        if self.telemetry is not None:
            self.telemetry.registry.counter("net.delivered").inc()
        return data

    def send(self, conn: int, data: bytes) -> None:
        if data == ERROR_MARKER:
            # An error frame is a failure notification, never a served
            # response — keep it out of the availability numerator.
            self._stats(conn).error_replies += 1
            self._outgoing.setdefault(conn, []).append(data)
            return
        self._outgoing.setdefault(conn, []).append(data)
        self._stats(conn).responses += 1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter("net.responses").inc()
            registry.histogram("net.response_bytes").observe(
                max(1, len(data)))

    def fail_request(self, conn: int, raw: bytes) -> bool:
        """The server dropped ``raw`` mid-flight (drop-request recovery).

        Returns True when the client re-queues it for another attempt,
        False when retries are exhausted and the client records an error.
        Attempts are charged against the *message* last delivered on
        ``conn`` (identical payloads never share a budget); a direct call
        for a payload the connection never delivered gets a fresh id.
        """
        stats = self._stats(conn)
        awaiting = self._await_outcome.get(conn)
        if awaiting is not None and awaiting[1] == raw:
            mid = awaiting[0]
        else:
            mid = self._next_mid
            self._next_mid += 1
            self._await_outcome[conn] = (mid, raw)
        attempt = self._attempts.get(mid, 0)
        if attempt < self.retry_limit:
            self._attempts[mid] = attempt + 1
            stats.retries += 1
            if self.telemetry is not None:
                self.telemetry.registry.counter("net.retries").inc()
            backoff = self.backoff_cycles << attempt
            if self._rng is not None:
                backoff += self._rng.randrange(0, self.backoff_cycles // 4 + 1)
            stats.backoff_cycles += backoff
            # The re-queued attempt is the same message (same mid, same
            # trace id): a retry is a continuation of one causal request,
            # never a fresh root.
            self._incoming.setdefault(conn, deque()).append(
                self._message(raw, mid=mid, trace=self._traces.get(mid)))
            if self.forensics is not None:
                self.forensics.record(
                    "net_retry", ts=self._now(), cat="net", conn=conn,
                    mid=mid, attempt=attempt + 1,
                    backoff_cycles=backoff)
            return True
        self._attempts.pop(mid, None)
        self._traces.pop(mid, None)
        stats.failed += 1
        stats.errors += 1
        stats.error_replies += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("net.request_errors").inc()
        if self.forensics is not None:
            self.forensics.record(
                "net_error", ts=self._now(), cat="net", conn=conn,
                mid=mid, attempts=attempt)
        # Surface the failure to the client without counting it as a
        # served response.
        self._outgoing.setdefault(conn, []).append(ERROR_MARKER)
        return False

    def reject_request(self, conn: int) -> None:
        """The fleet's admission gate turned a request away at enqueue.

        The client sees a :data:`REJECTED_MARKER` frame in the reply
        stream; the ``rejected`` counter is kept strictly apart from
        ``errors``/``error_replies`` so availability math never conflates
        "the server failed it" with "the fleet declined it"."""
        stats = self._stats(conn)
        stats.rejected += 1
        self._outgoing.setdefault(conn, []).append(REJECTED_MARKER)
        if self.telemetry is not None:
            self.telemetry.registry.counter("net.rejected").inc()
        if self.forensics is not None:
            self.forensics.record(
                "net_rejected", ts=self._now(), cat="net", conn=conn)

    def sent(self, conn: int) -> List[bytes]:
        """Everything the server wrote to ``conn``."""
        return self._outgoing.get(conn, [])

    def pending(self, conn: int) -> int:
        """Messages still queued on ``conn`` (a split tail counts as its
        one message, not an extra request)."""
        return len(self._incoming.get(conn, ()))

    def unserved(self) -> int:
        """Requests the server never *started* reading (e.g. it crashed).

        A message the server began but did not finish (a ``maxlen``
        split mid-read) is in flight, not unserved — see
        :meth:`partially_delivered`."""
        return sum(1 for q in self._incoming.values()
                   for m in q if m.offset == 0)

    def partially_delivered(self) -> int:
        """Messages the server started reading but has not finished."""
        return sum(1 for q in self._incoming.values()
                   for m in q if m.offset > 0)

    def stats(self, per_conn: bool = False) -> Dict[str, object]:
        """Aggregate delivery statistics across all connections.

        ``per_conn=True`` adds a ``"per_conn"`` breakdown (one entry per
        connection) so a load balancer can attribute failures to the
        worker behind each connection.
        """
        total = ConnStats()
        for stats in self.conn_stats.values():
            for name in ConnStats.__slots__:
                setattr(total, name, getattr(total, name) + getattr(stats, name))
        out = total.as_dict()
        out["availability"] = (total.responses / total.pushed
                               if total.pushed else 1.0)
        out["unserved"] = self.unserved()
        out["partially_delivered"] = self.partially_delivered()
        if per_conn:
            out["per_conn"] = {conn: self.conn_stats[conn].as_dict()
                               for conn in sorted(self.conn_stats)}
        return out
