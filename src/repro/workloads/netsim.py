"""Network simulation for the server case studies.

The paper drives Memcached/Apache/Nginx from client machines over a 10 Gb
link; here clients are request generators feeding per-connection byte
queues, and the servers reach them through the ``net_recv``/``net_send``
natives (the SCONE syscall interface).  Throughput is measured server-side
in simulated cycles per served request.

For the chaos experiments the clients are hardened the way real load
generators are: every connection keeps delivery/response accounting, a
request the server drops (``drop-request`` policy) can be retried a
bounded number of times with exponential backoff before the client gives
up and records an error, and all jitter comes from a seeded RNG so a
chaos run is reproducible byte-for-byte.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

#: Synthetic response the "client library" surfaces when the server drops
#: a request for good (retries exhausted).  Lives in the outgoing stream
#: so tests can assert the client saw the failure, but is NOT counted as a
#: served response.
ERROR_MARKER = b"ERR!"


class ConnStats:
    """Per-connection delivery accounting."""

    __slots__ = ("pushed", "delivered", "responses", "errors", "retries",
                 "failed", "backoff_cycles")

    def __init__(self) -> None:
        self.pushed = 0          # requests queued by the client
        self.delivered = 0       # requests fully read by the server
        self.responses = 0       # server responses (net_send calls)
        self.errors = 0          # error markers surfaced to the client
        self.retries = 0         # dropped requests re-queued for retry
        self.failed = 0          # requests abandoned after max retries
        self.backoff_cycles = 0  # client-side cycles spent backing off

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class NetworkSim:
    """Message-oriented connection queues with failure accounting.

    ``retry_limit`` is how many times a client re-submits a request the
    server dropped; ``backoff_cycles`` is the base of the exponential
    backoff between attempts (doubled per retry, plus seeded jitter).
    The defaults (no retries, no seed) behave exactly like the original
    fire-and-forget queues.
    """

    def __init__(self, retry_limit: int = 0, backoff_cycles: int = 200,
                 seed: Optional[int] = None) -> None:
        self._incoming: Dict[int, Deque[bytes]] = {}
        self._outgoing: Dict[int, List[bytes]] = {}
        self._next_conn = 0
        self.retry_limit = retry_limit
        self.backoff_cycles = backoff_cycles
        self._rng = random.Random(seed) if seed is not None else None
        self.conn_stats: Dict[int, ConnStats] = {}
        self._attempts: Dict[tuple, int] = {}
        #: Optional ``repro.telemetry.Telemetry``; when attached, delivery
        #: events are published into its metrics registry.
        self.telemetry = None

    def _stats(self, conn: int) -> ConnStats:
        stats = self.conn_stats.get(conn)
        if stats is None:
            stats = self.conn_stats[conn] = ConnStats()
        return stats

    def connect(self, *requests: bytes) -> int:
        """Open a connection with ``requests`` queued for the server."""
        conn = self._next_conn
        self._next_conn += 1
        self._incoming[conn] = deque(requests)
        self._outgoing[conn] = []
        self._stats(conn).pushed += len(requests)
        return conn

    def push(self, conn: int, data: bytes) -> None:
        """Queue one more request on an existing connection."""
        self._incoming[conn].append(data)
        self._stats(conn).pushed += 1

    def recv(self, conn: int, maxlen: int) -> Optional[bytes]:
        """Server-side receive: up to ``maxlen`` bytes of the front
        message; None at end-of-stream."""
        queue = self._incoming.get(conn)
        if not queue:
            return None
        message = queue.popleft()
        if len(message) > maxlen:
            head, rest = message[:maxlen], message[maxlen:]
            queue.appendleft(rest)
            return head
        self._stats(conn).delivered += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("net.delivered").inc()
        return message

    def send(self, conn: int, data: bytes) -> None:
        self._outgoing.setdefault(conn, []).append(data)
        self._stats(conn).responses += 1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter("net.responses").inc()
            registry.histogram("net.response_bytes").observe(
                max(1, len(data)))

    def fail_request(self, conn: int, raw: bytes) -> bool:
        """The server dropped ``raw`` mid-flight (drop-request recovery).

        Returns True when the client re-queues it for another attempt,
        False when retries are exhausted and the client records an error.
        """
        stats = self._stats(conn)
        key = (conn, raw)
        attempt = self._attempts.get(key, 0)
        if attempt < self.retry_limit:
            self._attempts[key] = attempt + 1
            stats.retries += 1
            if self.telemetry is not None:
                self.telemetry.registry.counter("net.retries").inc()
            backoff = self.backoff_cycles << attempt
            if self._rng is not None:
                backoff += self._rng.randrange(0, self.backoff_cycles // 4 + 1)
            stats.backoff_cycles += backoff
            self._incoming.setdefault(conn, deque()).append(raw)
            return True
        self._attempts.pop(key, None)
        stats.failed += 1
        stats.errors += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("net.request_errors").inc()
        # Surface the failure to the client without counting it as a
        # served response.
        self._outgoing.setdefault(conn, []).append(ERROR_MARKER)
        return False

    def sent(self, conn: int) -> List[bytes]:
        """Everything the server wrote to ``conn``."""
        return self._outgoing.get(conn, [])

    def pending(self, conn: int) -> int:
        return len(self._incoming.get(conn, ()))

    def unserved(self) -> int:
        """Requests still sitting in client queues (server never got to
        them — e.g. it crashed)."""
        return sum(len(q) for q in self._incoming.values())

    def stats(self) -> Dict[str, object]:
        """Aggregate delivery statistics across all connections."""
        total = ConnStats()
        for stats in self.conn_stats.values():
            for name in ConnStats.__slots__:
                setattr(total, name, getattr(total, name) + getattr(stats, name))
        out = total.as_dict()
        out["availability"] = (total.responses / total.pushed
                               if total.pushed else 1.0)
        return out
