"""Network simulation for the server case studies.

The paper drives Memcached/Apache/Nginx from client machines over a 10 Gb
link; here clients are request generators feeding per-connection byte
queues, and the servers reach them through the ``net_recv``/``net_send``
natives (the SCONE syscall interface).  Throughput is measured server-side
in simulated cycles per served request.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class NetworkSim:
    """Message-oriented connection queues."""

    def __init__(self) -> None:
        self._incoming: Dict[int, Deque[bytes]] = {}
        self._outgoing: Dict[int, List[bytes]] = {}
        self._next_conn = 0

    def connect(self, *requests: bytes) -> int:
        """Open a connection with ``requests`` queued for the server."""
        conn = self._next_conn
        self._next_conn += 1
        self._incoming[conn] = deque(requests)
        self._outgoing[conn] = []
        return conn

    def push(self, conn: int, data: bytes) -> None:
        """Queue one more request on an existing connection."""
        self._incoming[conn].append(data)

    def recv(self, conn: int, maxlen: int) -> Optional[bytes]:
        """Server-side receive: up to ``maxlen`` bytes of the front
        message; None at end-of-stream."""
        queue = self._incoming.get(conn)
        if not queue:
            return None
        message = queue.popleft()
        if len(message) > maxlen:
            head, rest = message[:maxlen], message[maxlen:]
            queue.appendleft(rest)
            return head
        return message

    def send(self, conn: int, data: bytes) -> None:
        self._outgoing.setdefault(conn, []).append(data)

    def sent(self, conn: int) -> List[bytes]:
        """Everything the server wrote to ``conn``."""
        return self._outgoing.get(conn, [])

    def pending(self, conn: int) -> int:
        return len(self._incoming.get(conn, ()))
