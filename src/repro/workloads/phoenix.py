"""Phoenix 2.0 benchmark suite, re-implemented in MiniC (paper §6.1).

All seven applications, with the memory-access character the paper's
analysis hinges on: histogram/linear_regression stream flat arrays
(pointer-free — near-zero MPX overhead), matrix_multiply walks columns
(cache-unfriendly), pca and word_count are pointer-intensive (arrays of
row pointers, chained hash tables — the MPX pathologies), kmeans iterates
over its working set (the Fig. 8 EPC-thrashing study).

Entry convention: ``int main(int n, int threads)``; returns a checksum so
the harness can compare instrumented runs against native.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

_COMMON = r"""
int g_n;
int g_threads;
"""

HISTOGRAM = _COMMON + r"""
char *g_data;
int g_bins[256];
int g_lock[1];

int worker(int idx) {
    int chunk = g_n / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_n : start + chunk;
    int local[256];
    for (int b = 0; b < 256; b++) local[b] = 0;
    for (int i = start; i < end; i++) {
        int v = g_data[i] & 255;
        local[v] = local[v] + 1;
    }
    mutex_lock(g_lock);
    for (int b = 0; b < 256; b++) g_bins[b] += local[b];
    mutex_unlock(g_lock);
    return 0;
}

int main(int n, int threads) {
    g_n = n; g_threads = threads;
    g_data = (char*)malloc(n);
    for (int i = 0; i < n; i++) g_data[i] = (char)((i * 131 + 7) % 251);
    int tids[16];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    for (int t = 0; t < threads; t++) join(tids[t]);
    int checksum = 0;
    for (int b = 0; b < 256; b++) checksum += g_bins[b] * (b + 1);
    free(g_data);
    return checksum;
}
"""


def _histogram_expected(n: int, threads: int) -> int:
    bins = [0] * 256
    for i in range(n):
        value = (i * 131 + 7) % 251
        bins[value & 255] += 1
    return sum(count * (b + 1) for b, count in enumerate(bins))


KMEANS = _COMMON + r"""
double *g_points;
int *g_assign;
double g_cent[32];
int g_counts[8];
double g_sums[32];
int g_dim;
int g_k;
int g_lock[1];

int worker(int idx) {
    int chunk = g_n / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_n : start + chunk;
    for (int i = start; i < end; i++) {
        double best = 1.0e30;
        int bestk = 0;
        for (int k = 0; k < g_k; k++) {
            double d = 0.0;
            for (int j = 0; j < g_dim; j++) {
                double diff = g_points[i * g_dim + j] - g_cent[k * g_dim + j];
                d += diff * diff;
            }
            if (d < best) { best = d; bestk = k; }
        }
        g_assign[i] = bestk;
    }
    return 0;
}

int main(int n, int threads) {
    g_n = n; g_threads = threads; g_dim = 4; g_k = 8;
    g_points = (double*)malloc(n * g_dim * sizeof(double));
    g_assign = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++)
        for (int j = 0; j < g_dim; j++)
            g_points[i * g_dim + j] = (double)((i * 37 + j * 11) % 100);
    for (int k = 0; k < g_k; k++)
        for (int j = 0; j < g_dim; j++)
            g_cent[k * g_dim + j] = (double)(k * 13 + j);
    int tids[16];
    for (int iter = 0; iter < 3; iter++) {
        for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < threads; t++) join(tids[t]);
        // Recompute centroids.
        for (int k = 0; k < g_k; k++) {
            g_counts[k] = 0;
            for (int j = 0; j < g_dim; j++) g_sums[k * g_dim + j] = 0.0;
        }
        for (int i = 0; i < n; i++) {
            int k = g_assign[i];
            g_counts[k] = g_counts[k] + 1;
            for (int j = 0; j < g_dim; j++)
                g_sums[k * g_dim + j] += g_points[i * g_dim + j];
        }
        for (int k = 0; k < g_k; k++)
            if (g_counts[k] > 0)
                for (int j = 0; j < g_dim; j++)
                    g_cent[k * g_dim + j] =
                        g_sums[k * g_dim + j] / (double)g_counts[k];
    }
    int checksum = 0;
    for (int i = 0; i < n; i++) checksum += g_assign[i] * (i % 7 + 1);
    free(g_points); free(g_assign);
    return checksum;
}
"""

LINEAR_REGRESSION = _COMMON + r"""
int *g_xy;
int g_sx[16]; int g_sy[16]; int g_sxx[16]; int g_sxy[16];

int worker(int idx) {
    int chunk = g_n / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_n : start + chunk;
    int sx = 0; int sy = 0; int sxx = 0; int sxy = 0;
    for (int i = start; i < end; i++) {
        int x = g_xy[i * 2];
        int y = g_xy[i * 2 + 1];
        sx += x; sy += y; sxx += x * x; sxy += x * y;
    }
    g_sx[idx] = sx; g_sy[idx] = sy; g_sxx[idx] = sxx; g_sxy[idx] = sxy;
    return 0;
}

int main(int n, int threads) {
    g_n = n; g_threads = threads;
    g_xy = (int*)malloc(n * 2 * sizeof(int));
    for (int i = 0; i < n; i++) {
        g_xy[i * 2] = i % 1000;
        g_xy[i * 2 + 1] = (i * 3 + 17) % 1000;
    }
    int tids[16];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    for (int t = 0; t < threads; t++) join(tids[t]);
    int sx = 0; int sy = 0; int sxx = 0; int sxy = 0;
    for (int t = 0; t < threads; t++) {
        sx += g_sx[t]; sy += g_sy[t]; sxx += g_sxx[t]; sxy += g_sxy[t];
    }
    free(g_xy);
    return (sx % 100007) + (sy % 100003) + (sxx % 99991) + (sxy % 99989);
}
"""


def _linreg_expected(n: int, threads: int) -> int:
    sx = sy = sxx = sxy = 0
    for i in range(n):
        x = i % 1000
        y = (i * 3 + 17) % 1000
        sx += x
        sy += y
        sxx += x * x
        sxy += x * y
    return (sx % 100007) + (sy % 100003) + (sxx % 99991) + (sxy % 99989)


MATRIX_MULTIPLY = _COMMON + r"""
double *g_a; double *g_b; double *g_c;
int g_dim;

int worker(int idx) {
    int chunk = g_dim / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_dim : start + chunk;
    int m = g_dim;
    for (int i = start; i < end; i++)
        for (int j = 0; j < m; j++) {
            double acc = 0.0;
            for (int k = 0; k < m; k++)
                acc += g_a[i * m + k] * g_b[k * m + j];   // column walk in B
            g_c[i * m + j] = acc;
        }
    return 0;
}

int main(int n, int threads) {
    g_threads = threads;
    g_dim = n;
    int m = n;
    g_a = (double*)malloc(m * m * sizeof(double));
    g_b = (double*)malloc(m * m * sizeof(double));
    g_c = (double*)malloc(m * m * sizeof(double));
    for (int i = 0; i < m * m; i++) {
        g_a[i] = (double)(i % 17);
        g_b[i] = (double)(i % 13);
    }
    int tids[16];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    for (int t = 0; t < threads; t++) join(tids[t]);
    double trace = 0.0;
    for (int i = 0; i < m; i++) trace += g_c[i * m + i];
    free(g_a); free(g_b); free(g_c);
    return (int)trace % 1000000;
}
"""

PCA = _COMMON + r"""
// Array-of-row-pointers layout: pca is the paper's pointer-intensive
// Phoenix kernel (10x instructions / 25x L1 accesses under MPX).
double **g_rows;
int g_cols;
double g_mean[32];

int main(int n, int threads) {
    g_threads = threads;
    int rows = n;
    g_cols = 8;
    g_rows = (double**)malloc(rows * sizeof(double*));
    for (int i = 0; i < rows; i++) {
        double *row = (double*)malloc(g_cols * sizeof(double));
        for (int j = 0; j < g_cols; j++)
            row[j] = (double)((i * 7 + j * 3) % 50);
        g_rows[i] = row;
    }
    // Column means.
    for (int j = 0; j < g_cols; j++) {
        double s = 0.0;
        for (int i = 0; i < rows; i++) s += g_rows[i][j];
        g_mean[j] = s / (double)rows;
    }
    // Covariance checksum (upper triangle).
    double cov_sum = 0.0;
    for (int a = 0; a < g_cols; a++)
        for (int b = a; b < g_cols; b++) {
            double s = 0.0;
            for (int i = 0; i < rows; i++)
                s += (g_rows[i][a] - g_mean[a]) * (g_rows[i][b] - g_mean[b]);
            cov_sum += s / (double)(rows - 1);
        }
    for (int i = 0; i < rows; i++) free(g_rows[i]);
    free(g_rows);
    return (int)cov_sum % 1000000;
}
"""

STRING_MATCH = _COMMON + r"""
char *g_text;
int g_hits[16];

int worker(int idx) {
    int chunk = g_n / g_threads;
    int start = idx * chunk;
    int end = (idx == g_threads - 1) ? g_n - 4 : start + chunk;
    int hits = 0;
    for (int i = start; i < end; i++) {
        if (g_text[i] == 'k' && g_text[i+1] == 'e' && g_text[i+2] == 'y'
                && g_text[i+3] == '!')
            hits++;
    }
    g_hits[idx] = hits;
    return 0;
}

int main(int n, int threads) {
    g_n = n; g_threads = threads;
    g_text = (char*)malloc(n + 8);
    for (int i = 0; i < n; i++)
        g_text[i] = (char)('a' + (i * 31 + 5) % 26);
    // Plant deterministic needles.
    for (int i = 64; i + 4 < n; i += 257) {
        g_text[i] = 'k'; g_text[i+1] = 'e'; g_text[i+2] = 'y'; g_text[i+3] = '!';
    }
    int tids[16];
    for (int t = 0; t < threads; t++) tids[t] = spawn(worker, t);
    for (int t = 0; t < threads; t++) join(tids[t]);
    int total = 0;
    for (int t = 0; t < threads; t++) total += g_hits[t];
    free(g_text);
    return total;
}
"""

WORD_COUNT = _COMMON + r"""
// Chained hash table of words: pointer-chasing and allocation churn.
struct WNode { int hash; int count; struct WNode *next; };
struct WNode *g_table[256];

int main(int n, int threads) {
    g_threads = threads;
    char *text = (char*)malloc(n + 1);
    for (int i = 0; i < n; i++) {
        int r = (i * 131 + 7) % 29;
        text[i] = (char)(r < 5 ? ' ' : 'a' + r % 26);
    }
    text[n] = ' ';
    int h = 0;
    int in_word = 0;
    int words = 0;
    for (int i = 0; i <= n; i++) {
        char c = text[i];
        if (c != ' ') {
            h = h * 31 + c;
            in_word = 1;
        } else if (in_word) {
            int bucket = (h & 0x7FFFFFFF) % 256;
            struct WNode *node = g_table[bucket];
            while (node && node->hash != h) node = node->next;
            if (node) {
                node->count = node->count + 1;
            } else {
                struct WNode *fresh =
                    (struct WNode*)malloc(sizeof(struct WNode));
                fresh->hash = h;
                fresh->count = 1;
                fresh->next = g_table[bucket];
                g_table[bucket] = fresh;
            }
            words++;
            h = 0;
            in_word = 0;
        }
    }
    int distinct = 0;
    int checksum = 0;
    for (int b = 0; b < 256; b++) {
        struct WNode *node = g_table[b];
        while (node) {
            distinct++;
            checksum += node->count;
            node = node->next;
        }
    }
    free(text);
    return checksum * 3 + distinct + words % 1000;
}
"""

register(Workload(
    "histogram", "phoenix", HISTOGRAM,
    sizes={"XS": 4096, "S": 16384, "M": 65536, "L": 262144, "XL": 1048576},
    threads=4, expected=_histogram_expected, pointer_intensity="none",
    description="byte histogram over a flat array (streaming, pointer-free)"))

register(Workload(
    "kmeans", "phoenix", KMEANS,
    sizes={"XS": 256, "S": 1024, "M": 4096, "L": 16384, "XL": 65536},
    threads=4, pointer_intensity="low",
    description="iterative clustering; the Fig. 8 EPC-thrashing study"))

register(Workload(
    "linear_regression", "phoenix", LINEAR_REGRESSION,
    sizes={"XS": 2048, "S": 8192, "M": 32768, "L": 131072, "XL": 524288},
    threads=4, expected=_linreg_expected, pointer_intensity="none",
    description="streaming sums over (x, y) pairs"))

register(Workload(
    "matrix_multiply", "phoenix", MATRIX_MULTIPLY,
    sizes={"XS": 8, "S": 16, "M": 24, "L": 40, "XL": 64},
    threads=4, pointer_intensity="none",
    description="dense matmul with cache-unfriendly column walks (Fig. 8)"))

register(Workload(
    "pca", "phoenix", PCA,
    sizes={"XS": 128, "S": 512, "M": 1024, "L": 2048, "XL": 4096},
    threads=1, pointer_intensity="high",
    description="covariance over an array of row pointers (MPX worst case)"))

register(Workload(
    "string_match", "phoenix", STRING_MATCH,
    sizes={"XS": 4096, "S": 16384, "M": 65536, "L": 262144, "XL": 1048576},
    threads=4, pointer_intensity="none",
    description="needle scan over synthetic text"))

register(Workload(
    "word_count", "phoenix", WORD_COUNT,
    sizes={"XS": 2048, "S": 8192, "M": 24576, "L": 65536, "XL": 262144},
    threads=1, pointer_intensity="high",
    description="chained-hash word counting (pointer-chasing + churn)"))
