"""Workload registry.

Every benchmark kernel registers here with its MiniC source, its size
ladder (XS–XL working sets, used by the Fig. 8 sweep) and an optional
expected-result oracle so the harness can verify that instrumented runs
compute the same answers as native runs.

Suite kernels share the entry convention ``int main(int n, int threads)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

SIZES = ("XS", "S", "M", "L", "XL")


class Workload:
    """One registered benchmark kernel."""

    def __init__(self, name: str, suite: str, source: str,
                 sizes: Dict[str, int], default_size: str = "S",
                 threads: int = 1,
                 expected: Optional[Callable[[int, int], int]] = None,
                 pointer_intensity: str = "low",
                 description: str = ""):
        self.name = name
        self.suite = suite
        self.source = source
        self.sizes = dict(sizes)
        self.default_size = default_size
        self.threads = threads
        self.expected = expected
        self.pointer_intensity = pointer_intensity
        self.description = description

    def args_for(self, size: Optional[str] = None,
                 threads: Optional[int] = None) -> Tuple[int, int]:
        label = size or self.default_size
        return (self.sizes[label], threads or self.threads)

    def __repr__(self) -> str:
        return f"Workload({self.suite}/{self.name})"


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def by_suite(suite: str) -> List[Workload]:
    _ensure_loaded()
    return [w for w in _REGISTRY.values() if w.suite == suite]


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


_loaded = False


def _ensure_loaded() -> None:
    """Import the suite modules once so their registrations run."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from repro.workloads import parsec, phoenix, spec   # noqa: F401
