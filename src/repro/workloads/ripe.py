"""RIPE-style runtime intrusion prevention evaluator (paper §6.6, Table 4).

Sixteen buffer-overflow attacks in two families, mirroring the categories
behind the paper's numbers:

* **In-struct overflows (8)** — the vulnerable buffer and the attack target
  (function pointer or authorization flag) live in the *same* struct, at
  stack/heap/data/bss locations.  Object-granularity schemes cannot see
  these: AddressSanitizer and SGXBounds both miss all 8 (paper: "the
  in-struct overflows could not be detected because both operate at the
  granularity of whole objects"), and MPX misses them too because bounds
  narrowing is disabled (§6.1).

* **Adjacent-object overflows (8)** — a contiguous overflow from a buffer
  into a neighbouring object or the return address.  Two are *direct*
  stack smashes (the only ones the paper's MPX caught); the other six
  launder the attack pointer through an integer-typed memory slot, which
  strips MPX's bounds (no bndldx for a non-pointer load — the gcc-MPX
  blind spot) while AddressSanitizer's shadow bytes and SGXBounds' tag
  (which survives arbitrary int<->pointer casts, §3.2) still catch them.

Expected Table 4: MPX 2/16, AddressSanitizer 8/16, SGXBounds 8/16.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BoundsViolation,
    ControlFlowHijack,
    DoubleFree,
    OutOfMemory,
    ReproError,
    SegmentationFault,
)
from repro.minic import compile_source
from repro.vm import VM
from repro.vm.scheme import SchemeRuntime

PREVENTED = "prevented"
SUCCEEDED = "succeeded"
FAILED = "failed"

_PRELUDE = r"""
int g_flag;
int evil() { g_flag = 1; return 1; }
int benign() { return 0; }
"""


def _in_struct(location: str, target: str) -> str:
    """In-struct overflow: buffer and target inside one struct."""
    struct_def = """
    struct Victim { char buf[16]; fnptr handler; int auth; };
    """
    if location == "data":
        decl = "struct Victim g_victim = { \"x\", 0, 0 };\n"
        obtain = "struct Victim *v = &g_victim;"
    elif location == "bss":
        decl = "struct Victim g_victim;\n"
        obtain = "struct Victim *v = &g_victim;"
    elif location == "heap":
        decl = ""
        obtain = "struct Victim *v = (struct Victim*)malloc(sizeof(struct Victim));"
    else:   # stack
        decl = ""
        obtain = "struct Victim vs; struct Victim *v = &vs;"
    if target == "funcptr":
        payload = """
        uint evil_addr = (uint)evil;
        for (int i = 0; i < 24; i++) {
            char byte = (char)0xAA;
            if (i >= 16) byte = (char)(evil_addr >> ((i - 16) * 8));
            v->buf[i] = byte;           // runs past buf into handler
        }
        v->handler();
        """
    else:
        payload = """
        for (int i = 0; i < 28; i++) v->buf[i] = (char)0x01;  // hits auth
        if (v->auth) g_flag = 1;
        """
    return (_PRELUDE + struct_def + decl + f"""
int main() {{
    {obtain}
    v->handler = benign;
    v->auth = 0;
    {payload}
    return g_flag;
}}
""")


def _direct_stack_funcptr() -> str:
    """Direct loop smash of an adjacent stack function pointer — one of
    the two attacks MPX detects (register bounds are intact)."""
    return _PRELUDE + r"""
int main() {
    char buf[24];
    fnptr handler[1];
    handler[0] = benign;
    int delta = (int)(((uint)handler & 0xFFFFFFFF) - ((uint)buf & 0xFFFFFFFF));
    uint evil_addr = (uint)evil;
    for (int i = 0; i < delta + 8; i++) {
        char byte = (char)0xAA;
        if (i >= delta) byte = (char)(evil_addr >> ((i - delta) * 8));
        buf[i] = byte;
    }
    handler[0]();
    return g_flag;
}
"""


def _direct_stack_retaddr() -> str:
    """Classic return-address smash (fixed native frame layout)."""
    return _PRELUDE + r"""
int vulnerable() {
    char buf[24];
    uint evil_addr = (uint)evil;
    // Native frame: buf at offset 0, return slot at offset 32.
    for (int i = 0; i < 40; i++) {
        char byte = (char)0xAA;
        if (i >= 32) byte = (char)(evil_addr >> ((i - 32) * 8));
        buf[i] = byte;
    }
    return 0;
}
int main() { vulnerable(); return g_flag; }
"""


def _laundered(location: str, target: str, via_memcpy: bool = False) -> str:
    """Adjacent-object overflow through an integer-laundered pointer."""
    if location == "heap":
        setup = """
        char *buf = (char*)malloc(24);
        char *tgt_obj = (char*)malloc(24);
        fnptr *handler = (fnptr*)tgt_obj;
        """
    elif location == "data":
        setup = """
        char *buf = g_buf;
        fnptr *handler = g_handler;
        """
    else:   # stack
        setup = """
        char sbuf[24];
        fnptr shandler[1];
        char *buf = sbuf;
        fnptr *handler = shandler;
        """
    globals_decl = ""
    if location == "data":
        globals_decl = "char g_buf[24];\nfnptr g_handler[1];\n"
    if target == "funcptr":
        finish = "handler[0]();"
        evil_value = "(uint)evil"
    else:
        finish = "if ((int)handler[0]) g_flag = 1;"
        evil_value = "(uint)1"
    overflow = r"""
    for (int i = 0; i < delta + 8; i++) {
        char byte = (char)0xAA;
        if (i >= delta) byte = (char)(evil_addr >> ((i - delta) * 8));
        lp[i] = byte;
    }
    """
    if via_memcpy:
        overflow = r"""
    char payload[96];
    for (int i = 0; i < delta + 8 && i < 96; i++) {
        char byte = (char)0xAA;
        if (i >= delta) byte = (char)(evil_addr >> ((i - delta) * 8));
        payload[i] = byte;
    }
    memcpy(lp, payload, delta + 8);
    """
    return (_PRELUDE + globals_decl + f"""
uint g_slot;
int main() {{
    {setup}
    handler[0] = benign;
    int delta = (int)(((uint)handler & 0xFFFFFFFF) - ((uint)buf & 0xFFFFFFFF));
    if (delta < 0 || delta > 512) return 0;  // layout surprise: abort attack
    uint evil_addr = {evil_value};
    g_slot = (uint)buf;            // launder: pointer through integer slot
    char *lp = (char*)g_slot;      // MPX bounds lost; SGXBounds tag intact
    {overflow}
    {finish}
    return g_flag;
}}
""")


#: All sixteen attacks: name -> (family, MiniC source).
ATTACKS: Dict[str, Tuple[str, str]] = {
    # -- in-struct (8): undetectable at object granularity ------------------
    "instruct_stack_funcptr": ("in-struct", _in_struct("stack", "funcptr")),
    "instruct_stack_auth": ("in-struct", _in_struct("stack", "auth")),
    "instruct_heap_funcptr": ("in-struct", _in_struct("heap", "funcptr")),
    "instruct_heap_auth": ("in-struct", _in_struct("heap", "auth")),
    "instruct_data_funcptr": ("in-struct", _in_struct("data", "funcptr")),
    "instruct_data_auth": ("in-struct", _in_struct("data", "auth")),
    "instruct_bss_funcptr": ("in-struct", _in_struct("bss", "funcptr")),
    "instruct_bss_auth": ("in-struct", _in_struct("bss", "auth")),
    # -- adjacent-object, direct (2): the ones MPX catches -------------------
    "direct_stack_funcptr": ("adjacent-direct", _direct_stack_funcptr()),
    "direct_stack_retaddr": ("adjacent-direct", _direct_stack_retaddr()),
    # -- adjacent-object, laundered pointer (6): MPX-blind --------------------
    "laundered_heap_funcptr": ("adjacent-laundered",
                               _laundered("heap", "funcptr")),
    "laundered_heap_auth": ("adjacent-laundered", _laundered("heap", "auth")),
    "laundered_data_funcptr": ("adjacent-laundered",
                               _laundered("data", "funcptr")),
    "laundered_data_auth": ("adjacent-laundered", _laundered("data", "auth")),
    "laundered_stack_funcptr": ("adjacent-laundered",
                                _laundered("stack", "funcptr")),
    "laundered_heap_memcpy": ("adjacent-laundered",
                              _laundered("heap", "funcptr", via_memcpy=True)),
}


def run_attack(name: str,
               scheme: Optional[SchemeRuntime] = None) -> str:
    """Run one attack under ``scheme``; returns prevented/succeeded/failed."""
    _, source = ATTACKS[name]
    module = compile_source(source, name)
    if scheme is not None:
        module = scheme.instrument(module)
    else:
        module = module.clone()
    module.finalize()
    vm = VM(scheme=scheme)
    vm.load(module)
    try:
        result = vm.run("main")
    except BoundsViolation:
        return PREVENTED
    except ControlFlowHijack:
        return SUCCEEDED
    except (SegmentationFault, DoubleFree, OutOfMemory, ReproError):
        return FAILED
    return SUCCEEDED if result == 1 else FAILED


def ripe_table(factories: Dict[str, Callable[[], Optional[SchemeRuntime]]]
               ) -> Dict[str, Dict[str, str]]:
    """outcome[scheme][attack] for every attack under every scheme."""
    table: Dict[str, Dict[str, str]] = {}
    for label, factory in factories.items():
        table[label] = {
            name: run_attack(name, factory()) for name in ATTACKS
        }
    return table


def prevented_count(outcomes: Dict[str, str]) -> int:
    return sum(1 for o in outcomes.values() if o == PREVENTED)
