"""Benchmark workloads: Phoenix, PARSEC, SPEC, RIPE, and the app case studies."""

from repro.workloads.netsim import NetworkSim
from repro.workloads.registry import (
    SIZES,
    Workload,
    all_workloads,
    by_suite,
    get,
    register,
)

__all__ = ["NetworkSim", "Workload", "register", "get", "by_suite",
           "all_workloads", "SIZES"]
