"""AddressSanitizer baseline (software shadow-memory protection)."""

from repro.asan.runtime import ASanScheme, QUARANTINE_CAP, REDZONE
from repro.asan.shadow import GRANULE, granule_ok, object_shadow, shadow_address

__all__ = ["ASanScheme", "REDZONE", "QUARANTINE_CAP", "GRANULE",
           "shadow_address", "granule_ok", "object_shadow"]
