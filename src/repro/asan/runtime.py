"""AddressSanitizer runtime, adapted for enclaves as in paper §5.2.

Key properties this model reproduces:

* 512 MiB of shadow space reserved up front (32-bit ASan mode) — a constant
  virtual-memory overhead, materialized lazily but charged against the
  paper's reserved-VM metric;
* redzones around every heap/global/stack object (poisoned shadow);
* a quarantine delaying reuse of freed memory — detecting use-after-free
  but inflating footprints (the ``swaptions`` pathology, §6.2);
* every instrumented access performs a *real* shadow load in simulated
  memory, so shadow traffic degrades cache locality and causes EPC
  thrashing exactly as described for kmeans/matrixmul/mcf.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.asan.shadow import (
    FREED,
    GLOBAL_RZ,
    GRANULE,
    HEAP_LEFT_RZ,
    HEAP_RIGHT_RZ,
    STACK_RZ,
    granule_ok,
    object_shadow,
    shadow_address,
)
from repro.errors import BoundsViolation, DoubleFree
from repro.vm import policy as violation_policy
from repro.memory.address_space import PERM_RW
from repro.memory.layout import (
    ADDRESS_MASK,
    ASAN_SHADOW_BASE,
    ASAN_SHADOW_SIZE,
    align_up,
)
from repro.vm.scheme import SchemeRuntime

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.ir.module import GlobalVar, Module
    from repro.vm.machine import VM

#: Redzone size on each side of an object (scaled from ASan's defaults).
REDZONE = 32
#: Quarantine capacity (scaled from ASan's 256 MiB default).
QUARANTINE_CAP = 256 * 1024


class ASanScheme(SchemeRuntime):
    """AddressSanitizer-style protection."""

    name = "asan"
    global_min_align = GRANULE
    # Shadow-byte checks are plain IR loads/compares; the generic fusion
    # classes apply unchanged and observe identical PerfCounters.
    fastpath_fusion = ("cmp_br", "gep_load", "gep_store")

    def __init__(self, optimize_safe: bool = True,
                 quarantine_bytes: int = QUARANTINE_CAP,
                 redzone: int = REDZONE,
                 policy: str = violation_policy.ABORT):
        super().__init__(policy=policy)
        self.optimize_safe = optimize_safe
        self.quarantine_cap = quarantine_bytes
        self.redzone = redzone
        self._live: Dict[int, Tuple[int, int]] = {}   # user -> (raw, size)
        self._quarantine: Deque[Tuple[int, int]] = deque()
        self._quarantine_bytes = 0
        self.redzone_bytes = 0

    # -- compile-time ------------------------------------------------------
    def instrument(self, module: "Module") -> "Module":
        from repro.passes.instrument_asan import run_asan_instrumentation
        from repro.passes.safe_access import run_safe_access
        module = module.clone()
        if self.optimize_safe:
            run_safe_access(module)
        return run_asan_instrumentation(module)

    # -- lifecycle -----------------------------------------------------------
    def attach(self, vm: "VM") -> None:
        super().attach(vm)
        # The constant 512 MiB shadow reservation (§5.2).
        vm.enclave.space.map(ASAN_SHADOW_BASE, ASAN_SHADOW_SIZE, PERM_RW,
                             "asan-shadow")

    # -- shadow primitives ------------------------------------------------------
    def _set_shadow(self, vm: "VM", address: int, data: bytes) -> None:
        vm.bulk_write(shadow_address(address), data)

    def poison(self, vm: "VM", address: int, size: int, value: int) -> None:
        """Poison [address, address+size) (granule-aligned region)."""
        count = align_up(size, GRANULE) // GRANULE
        self._set_shadow(vm, address, bytes((value,)) * count)

    def unpoison_object(self, vm: "VM", address: int, size: int) -> None:
        """Mark an object's granules addressable, with a partial tail."""
        self._set_shadow(vm, address, object_shadow(align_up(size, GRANULE))
                         if size % GRANULE == 0 else object_shadow(size))

    # -- allocation (redzones + quarantine, §2.2) ---------------------------------
    def malloc(self, vm: "VM", size: int) -> int:
        size = max(int(size), 1)
        rounded = align_up(size, GRANULE)
        raw = vm.enclave.heap.malloc(rounded + 2 * self.redzone)
        user = raw + self.redzone
        self.poison(vm, raw, self.redzone, HEAP_LEFT_RZ)
        self.unpoison_object(vm, user, size)
        self.poison(vm, user + rounded, self.redzone, HEAP_RIGHT_RZ)
        self._live[user] = (raw, size)
        self.redzone_bytes += 2 * self.redzone
        return user

    def calloc(self, vm: "VM", count: int, size: int) -> int:
        total = max(int(count * size), 1)
        user = self.malloc(vm, total)
        tracer, vm.space.tracer = vm.space.tracer, None
        try:
            vm.space.fill(user, 0, total)
        finally:
            vm.space.tracer = tracer
        vm.touch_range(user, total, True)
        return user

    def realloc(self, vm: "VM", ptr: int, size: int) -> int:
        ptr &= ADDRESS_MASK
        if ptr == 0:
            return self.malloc(vm, size)
        entry = self._live.get(ptr)
        if entry is None:
            raise DoubleFree(ptr)
        _, old_size = entry
        new = self.malloc(vm, size)
        data = vm.bulk_read(ptr, min(old_size, size))
        vm.bulk_write(new, data)
        self.free(vm, ptr)
        return new

    def free(self, vm: "VM", ptr: int) -> None:
        ptr &= ADDRESS_MASK
        if ptr == 0:
            return
        entry = self._live.pop(ptr, None)
        if entry is None:
            raise DoubleFree(ptr)
        raw, size = entry
        rounded = align_up(size, GRANULE)
        self.poison(vm, ptr, rounded, FREED)
        # Quarantine: delay reuse so use-after-free hits poisoned shadow.
        self._quarantine.append((raw, rounded + 2 * self.redzone))
        self._quarantine_bytes += rounded + 2 * self.redzone
        while self._quarantine_bytes > self.quarantine_cap and self._quarantine:
            old_raw, old_total = self._quarantine.popleft()
            self._quarantine_bytes -= old_total
            vm.enclave.heap.free(old_raw)
        if vm.telemetry is not None:
            registry = vm.telemetry.registry
            registry.gauge("asan.quarantine_bytes").set(
                self._quarantine_bytes)
            registry.gauge("asan.redzone_bytes").set(self.redzone_bytes)

    # -- globals -------------------------------------------------------------------
    def global_padding(self, var: "GlobalVar") -> Tuple[int, int]:
        return (self.redzone, self.redzone)

    def on_global_loaded(self, vm: "VM", address: int, var: "GlobalVar") -> None:
        self.poison(vm, address - self.redzone, self.redzone, GLOBAL_RZ)
        self.unpoison_object(vm, address, var.size)
        tail = align_up(var.size, GRANULE)
        self.poison(vm, address + tail, self.redzone, GLOBAL_RZ)
        self.redzone_bytes += 2 * self.redzone

    # -- access validation ------------------------------------------------------------
    def check_access(self, vm: "VM", address: int, size: int,
                     is_write: bool) -> None:
        """Slow path: re-validate an access whose first shadow byte was
        non-zero (partial granule or genuine poison)."""
        cursor = address
        end = address + size
        while cursor < end:
            shadow_value = vm.space.read_u8(shadow_address(cursor))
            granule_end = (cursor | (GRANULE - 1)) + 1
            chunk = min(end, granule_end) - cursor
            if shadow_value != 0 and not granule_ok(shadow_value, cursor, chunk):
                self.handle_violation(vm, BoundsViolation(
                    self.name, address, 0, 0, size,
                    access="write" if is_write else "read",
                    what=f"shadow byte 0x{shadow_value:02x} at 0x{cursor:08x}"))
                # Tolerated (no overlay to redirect into): the access
                # proceeds unprotected, like the uninstrumented program.
                return
            cursor = granule_end

    def libc_range(self, vm: "VM", ptr: int, size: int, is_write: bool,
                   arg_bounds=None) -> Tuple[int, int]:
        address = ptr & ADDRESS_MASK
        if size > 0:
            # Wrappers validate the full range through shadow memory.
            vm.touch_range(shadow_address(address),
                           max(1, size // GRANULE), False)
            vm.charge(2 + size // GRANULE)
            self.check_access(vm, address, size, is_write)
        return (address, size)

    # -- pass-inserted natives ------------------------------------------------------------
    def _native_check(self, vm: "VM", thread, args) -> int:
        self.check_access(vm, args[0] & ADDRESS_MASK, args[1], bool(args[2]))
        return 0

    def _native_poison_stack(self, vm: "VM", thread, args) -> int:
        raw, size = args[0] & ADDRESS_MASK, args[1]
        rounded = align_up(size, GRANULE)
        self.poison(vm, raw, self.redzone, STACK_RZ)
        self.unpoison_object(vm, raw + self.redzone, size)
        self.poison(vm, raw + self.redzone + rounded, self.redzone, STACK_RZ)
        vm.charge(6)
        return 0

    def _native_unpoison_stack(self, vm: "VM", thread, args) -> int:
        raw, size = args[0] & ADDRESS_MASK, args[1]
        total = align_up(size, GRANULE) + 2 * self.redzone
        self._set_shadow(vm, raw, b"\x00" * (total // GRANULE))
        vm.charge(4)
        return 0

    def natives(self) -> Dict[str, object]:
        return {
            "__asan_check": self._native_check,
            "__asan_poison_stack": self._native_poison_stack,
            "__asan_unpoison_stack": self._native_unpoison_stack,
        }

    # -- reporting ------------------------------------------------------------------------
    def memory_overhead_report(self, vm: "VM") -> Dict[str, int]:
        return {
            "shadow_reserved": ASAN_SHADOW_SIZE,
            "redzone_bytes": self.redzone_bytes,
            "quarantine_bytes": self._quarantine_bytes,
            "violations": self.violations,
        }
