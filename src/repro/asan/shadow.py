"""AddressSanitizer shadow-memory codec (paper §2.2, Figure 3a).

One shadow byte describes one 8-byte granule of application memory:

* ``0`` — fully addressable;
* ``1..7`` — only the first k bytes are addressable (object tail);
* ``>= 8`` — poisoned (redzone / freed / global redzone), using the
  conventional ASan magic values.

Shadow address = (address >> 3) + offset, with the 32-bit layout the paper
forces inside enclaves (512 MiB shadow for a 4 GiB space, §5.2).
"""

from __future__ import annotations

from repro.memory.layout import ASAN_SHADOW_BASE, ASAN_SHADOW_SCALE

GRANULE = 1 << ASAN_SHADOW_SCALE          # 8 bytes per shadow byte

HEAP_LEFT_RZ = 0xFA
HEAP_RIGHT_RZ = 0xFB
FREED = 0xFD
STACK_RZ = 0xF1
GLOBAL_RZ = 0xF9


def shadow_address(address: int) -> int:
    """Shadow byte describing the granule containing ``address``."""
    return (address >> ASAN_SHADOW_SCALE) + ASAN_SHADOW_BASE


def granule_ok(shadow_value: int, address: int, size: int) -> bool:
    """Whether an access of ``size`` bytes at ``address`` is allowed by the
    (non-zero) shadow value of its granule — the ASan slow-path rule."""
    if shadow_value >= GRANULE:
        return False
    offset = address & (GRANULE - 1)
    return offset + size <= shadow_value


def object_shadow(size: int) -> bytes:
    """Shadow bytes describing an ``size``-byte object starting granule-
    aligned: full granules of 0 plus an optional partial tail byte."""
    full, tail = divmod(size, GRANULE)
    out = b"\x00" * full
    if tail:
        out += bytes((tail,))
    return out
