"""Scripted, seeded fault campaigns against an enclave fleet.

One campaign = one app, one scheme, one violation policy, N workers, and
a deterministic scenario: client traffic (optionally poisoned through the
chaos fuzzer), optional EPC-thrash noisy neighbours, optional scripted
watchdog hangs.  Everything random derives from ``derive(seed, salt)``
sub-seeds, and the tick loop visits workers in id order, so two campaigns
with identical configs are byte-identical — reports, traces and all.

The tick loop::

    arrivals → scenario events → supervisor timers → dispatch
             → workers run (wid order) → outcomes → SLO

Each tick is ``tick_cycles`` simulated cycles of every running worker;
restart costs from the cold-start model translate into ticks a worker
spends in ``restarting``, which is where fail-stop's availability gap
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.faults import RequestFuzzer, derive
from repro.fleet.balancer import Balancer, Request
from repro.fleet.slo import SLOTracker
from repro.fleet.supervisor import Supervisor
from repro.fleet.worker import EnclaveWorker
from repro.minic import compile_source


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign, and nothing else."""

    app: str = "memcached"
    scheme: str = "sgxbounds"
    policy: str = "drop-request"
    workers: int = 4
    fault_rate: float = 0.2
    seed: int = 1234
    size: str = "XS"
    arrivals_per_tick: int = 2
    tick_cycles: int = 5_000
    watchdog_budget: int = 200_000
    rewarm_scale: float = 1.0
    balance: str = "round-robin"
    queue_cap: int = 2
    max_attempts: int = 2
    hedge_stranded: bool = True
    breaker_threshold: int = 3
    breaker_cooldown: int = 25
    crash_loop_k: int = 3
    crash_loop_window: int = 60
    #: Client patience: a request still waiting (queued, not in flight)
    #: this many ticks after arrival times out as failed.
    deadline_ticks: int = 60
    #: Noisy-neighbour EPC thrash probability per request (0 = off).
    epc_spike_rate: float = 0.0
    #: Poison storm: ``(start_tick, end_tick, rate)`` — within the window
    #: arrivals are fuzzed at ``rate`` instead of ``fault_rate``.
    storm: Tuple[int, int, float] = ()
    #: Seeded attack payloads for the storm window: when non-empty the
    #: storm fuzzer draws exclusively from these (oob-probe strategy over
    #: the given bytes) instead of the app's chaos profile — this is how
    #: the redteam harness interleaves its attack catalog with legitimate
    #: traffic.  Empty keeps the storm exactly as before.
    storm_attacks: Tuple[bytes, ...] = ()
    #: Scripted livelock: ``(tick, worker, duration_ticks)`` — the worker
    #: hangs mid-request until the watchdog kills it.
    hang: Tuple[int, int, int] = ()
    #: Fail-safe bound on campaign length.
    max_ticks: int = 5_000
    #: Stateful recovery mode: "none" (default — exactly the pre-recovery
    #: fleet, fresh heap every restart), or one of
    #: :data:`repro.recovery.MODES` ("restart-fresh" for accounting-only
    #: baseline, "snapshot", "snapshot+wal", "replica").  Any mode other
    #: than "none" runs the app's RECOVERY_SOURCE build.
    recovery: str = "none"
    #: Ticks between sealed checkpoints (snapshot-taking modes).
    checkpoint_interval: int = 25
    #: Diff recovered state against the shadow oracle at campaign end.
    recovery_audit: bool = True
    #: Extra ``workload()`` kwargs as a tuple of pairs, e.g.
    #: ``(("set_every", 2),)`` for write-heavy memcached traffic.
    workload_kwargs: Tuple[Tuple[str, object], ...] = ()
    #: Overload protection mode: "off" (default — none of the overload
    #: machinery is even constructed), "naive" (priority classes and
    #: goodput accounting threaded through, but no admission gate, no
    #: retry budget, and expired queued requests rot in place as zombie
    #: work — the congestion-collapse baseline), or "protected"
    #: (deadline-aware admission + brownout shedding + budgeted client
    #: retries).  See :mod:`repro.overload`.
    overload: str = "off"
    #: Flash crowd: ``(start_tick, end_tick, extra)`` adds ``extra``
    #: arrivals per tick inside the window — the trigger for metastable
    #: collapse (overload campaigns).
    burst: Tuple[int, int, int] = ()
    #: Traffic priority mix ``((class, weight), ...)``; empty uses
    #: :data:`repro.overload.DEFAULT_MIX`.  Ignored when overload="off".
    priority_mix: Tuple[Tuple[str, int], ...] = ()
    #: Client-side retry ceiling per request (overload modes).
    client_retries: int = 3
    #: Retry-budget refill per success and bucket capacity (protected
    #: mode; the naive client retries unconditionally).
    retry_refill: float = 0.1
    retry_burst: float = 4.0


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    config: CampaignConfig
    ticks: int = 0
    slo: Dict[str, object] = field(default_factory=dict)
    supervisor: Dict[str, object] = field(default_factory=dict)
    breaker_opens: int = 0
    crashes: int = 0
    watchdog_kills: int = 0
    worker_cycles: int = 0
    fuzzed_requests: int = 0
    events: List[Tuple[int, str, int, str]] = field(default_factory=list)
    #: Forensics summary; None (and absent from :meth:`as_dict`) unless a
    #: flight recorder was attached, so default output stays byte-stable.
    forensics: Optional[Dict[str, object]] = None
    #: Recovery summary (RPO/RTO/sealing/audit); None (and absent from
    #: :meth:`as_dict`) unless the campaign ran with recovery enabled.
    recovery: Optional[Dict[str, object]] = None
    #: Overload summary (admission/brownout/client budgets); None (and
    #: absent from :meth:`as_dict`) unless the campaign ran with an
    #: overload mode other than "off".
    overload: Optional[Dict[str, object]] = None
    #: Observability summary (trace volume, critical-path attribution,
    #: burn-rate alerts); None (and absent from :meth:`as_dict`) unless
    #: an ``repro.obs.Observability`` handle was attached.
    obs: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        cfg = self.config
        out = {
            "config": {
                "app": cfg.app, "scheme": cfg.scheme, "policy": cfg.policy,
                "workers": cfg.workers, "fault_rate": cfg.fault_rate,
                "seed": cfg.seed, "size": cfg.size,
                "tick_cycles": cfg.tick_cycles,
                "watchdog_budget": cfg.watchdog_budget,
                "rewarm_scale": cfg.rewarm_scale, "balance": cfg.balance,
                "hedge_stranded": cfg.hedge_stranded,
            },
            "ticks": self.ticks,
            "slo": self.slo,
            "supervisor": self.supervisor,
            "breaker_opens": self.breaker_opens,
            "crashes": self.crashes,
            "watchdog_kills": self.watchdog_kills,
            "worker_cycles": self.worker_cycles,
            "fuzzed_requests": self.fuzzed_requests,
            "events": [list(e) for e in self.events],
        }
        if self.forensics is not None:
            out["forensics"] = self.forensics
        if self.recovery is not None:
            out["config"]["recovery"] = cfg.recovery
            out["config"]["checkpoint_interval"] = cfg.checkpoint_interval
            out["recovery"] = self.recovery
        if self.overload is not None:
            out["config"]["overload"] = cfg.overload
            out["config"]["deadline_ticks"] = cfg.deadline_ticks
            out["config"]["arrivals_per_tick"] = cfg.arrivals_per_tick
            if cfg.burst:
                out["config"]["burst"] = list(cfg.burst)
            out["overload"] = self.overload
        if self.obs is not None:
            out["obs"] = self.obs
        return out


def _profile(app: str):
    # Reuses the chaos harness protocol profiles (satellite of PR 1): the
    # fleet fuzzes traffic exactly the way the single-server chaos runs do.
    from repro.harness.chaos import PROFILES
    if app not in PROFILES:
        raise ValueError(f"unknown fleet app {app!r}; "
                         f"expected one of {sorted(PROFILES)}")
    return PROFILES[app]


def run_campaign(config: CampaignConfig, telemetry=None,
                 forensics=None, obs=None) -> CampaignResult:
    """Run one seeded campaign to completion; deterministic end to end."""
    from repro import forensics as forensics_mod
    from repro import obs as obs_mod
    from repro import telemetry as telemetry_mod
    from repro.harness.experiments import APP_CONFIG

    telemetry = telemetry if telemetry is not None \
        else telemetry_mod.get_default()
    forensics = forensics if forensics is not None \
        else forensics_mod.get_default()
    if forensics is not None and not forensics.enabled:
        forensics = None
    obs = obs if obs is not None else obs_mod.get_default()
    if obs is not None and not obs.enabled:
        obs = None
    if obs is not None:
        obs.begin_campaign(config, forensics=forensics)
    profile = _profile(config.app)
    mod = profile.module
    recovery_on = config.recovery != "none"
    requests = mod.workload(mod.SIZES[config.size],
                            **dict(config.workload_kwargs))
    # apply() reseeds per call, so fuzz the whole trace up front (one draw
    # sequence per request, exactly like the single-server chaos runs) and
    # keep a parallel storm-rate copy for arrivals inside the storm window.
    fuzzer = RequestFuzzer(derive(config.seed, f"fleet-fuzz:{config.app}"),
                           config.fault_rate, profile.length_field,
                           profile.attacks, profile.weights)
    fuzzed_trace = fuzzer.apply(requests)
    storm_trace = None
    if config.storm:
        if config.storm_attacks:
            attacks = tuple((lambda p=p: p) for p in config.storm_attacks)
            storm_fuzzer = RequestFuzzer(
                derive(config.seed, f"fleet-storm:{config.app}"),
                config.storm[2], profile.length_field, attacks,
                {"oob-probe": 1.0})
        else:
            storm_fuzzer = RequestFuzzer(
                derive(config.seed, f"fleet-storm:{config.app}"),
                config.storm[2], profile.length_field, profile.attacks,
                profile.weights)
        storm_trace = storm_fuzzer.apply(requests)

    source = mod.SOURCE
    if recovery_on:
        # Recovery modes run the app's snapshot/restore-capable build;
        # the default build (and its cycle behaviour) is untouched.
        source = getattr(mod, "RECOVERY_SOURCE", None)
        if source is None:
            raise ValueError(
                f"app {config.app!r} has no recovery-enabled build")
    module = compile_source(source, config.app)
    enclave_config = replace(
        APP_CONFIG,
        cold_start=APP_CONFIG.cold_start.scaled(config.rewarm_scale))
    workers = [
        EnclaveWorker(wid, module, config.scheme, policy=config.policy,
                      config=enclave_config,
                      watchdog_budget=config.watchdog_budget,
                      epc_spike_rate=config.epc_spike_rate,
                      faults_seed=derive(config.seed, "fleet-epc"),
                      telemetry=telemetry, forensics=forensics, obs=obs)
        for wid in range(config.workers)]
    supervisor = Supervisor(
        [w.wid for w in workers],
        cold_start=enclave_config.cold_start,
        rewarm_scale=config.rewarm_scale,
        tick_cycles=config.tick_cycles,
        crash_loop_k=config.crash_loop_k,
        crash_loop_window=config.crash_loop_window,
        telemetry=telemetry, forensics=forensics)
    controls = None
    if config.overload != "off":
        from repro.overload import PRIORITIES, build_controls
        controls = build_controls(
            config.overload, config.scheme, config.deadline_ticks,
            priority_mix=config.priority_mix,
            client_retries=config.client_retries,
            retry_refill=config.retry_refill,
            retry_burst=config.retry_burst,
            telemetry=telemetry, forensics=forensics)
    balancer = Balancer(workers, supervisor, policy=config.balance,
                        queue_cap=config.queue_cap,
                        max_attempts=config.max_attempts,
                        hedge_stranded=config.hedge_stranded,
                        breaker_threshold=config.breaker_threshold,
                        breaker_cooldown=config.breaker_cooldown,
                        telemetry=telemetry, forensics=forensics,
                        admission=controls.admission
                        if controls is not None else None,
                        tick_cycles=config.tick_cycles
                        if controls is not None else None,
                        obs=obs)
    registry = telemetry.registry \
        if (telemetry is not None and telemetry.enabled) else None
    slo = SLOTracker(config.tick_cycles, registry=registry,
                     anomalies=forensics.monitor
                     if forensics is not None else None,
                     deadline_ticks=config.deadline_ticks
                     if controls is not None else None,
                     classes=PRIORITIES if controls is not None else (),
                     timeline_window=20 if controls is not None else 0)
    manager = None
    if recovery_on:
        from repro.recovery import RecoveryManager

        def _spare_worker(wid: int) -> EnclaveWorker:
            # Replicas and audit oracles: same build/scheme/policy as the
            # serving workers, but no telemetry/forensics/noise hookup —
            # they are standbys and measurement shadows, not chaos targets.
            return EnclaveWorker(wid, module, config.scheme,
                                 policy=config.policy, config=enclave_config,
                                 watchdog_budget=config.watchdog_budget)

        manager = RecoveryManager(
            config.recovery, mod, config.app,
            tick_cycles=config.tick_cycles,
            checkpoint_interval=config.checkpoint_interval,
            worker_factory=_spare_worker, audit=config.recovery_audit,
            telemetry=telemetry, forensics=forensics)
        for worker in workers:
            manager.attach(worker)
    result = CampaignResult(config)

    arrivals = iter(enumerate(requests))
    exhausted = False
    now = 0

    def settle(req) -> None:
        """Route one terminal request: through the client swarm (which
        may turn it into a retry) when overload is on, else straight to
        SLO accounting."""
        while req is not None:
            if controls is None:
                if obs is not None:
                    obs.on_settled(req)
                slo.on_terminal(req)
                return
            retry = controls.swarm.on_terminal(req, now)
            if retry is None:
                if obs is not None:
                    obs.on_settled(req)
                slo.on_terminal(req)
                return
            # offer() returns the retry itself if the gate rejects it.
            if obs is not None:
                # Same rid, same trace root: the resubmission is a new
                # branch of one causal request, not a fresh trace.
                obs.on_client_retry(retry, now)
            req = balancer.offer(retry, now)

    while now < config.max_ticks:
        # 1. Arrivals (fuzzed at the door, storm rate inside the window,
        #    flash-crowd extras inside the burst window).
        rate = config.arrivals_per_tick
        if config.burst and config.burst[0] <= now < config.burst[1]:
            rate += config.burst[2]
        for _ in range(rate):
            nxt = next(arrivals, None)
            if nxt is None:
                exhausted = True
                break
            rid, payload = nxt
            fuzzed = fuzzed_trace[rid]
            if (storm_trace is not None
                    and config.storm[0] <= now < config.storm[1]):
                fuzzed = storm_trace[rid]
            if fuzzed != payload:
                result.fuzzed_requests += 1
            if controls is not None:
                request = Request(rid, fuzzed, arrival=now,
                                  priority=controls.priority(rid))
                if obs is not None:
                    obs.on_submit(request, now)
                slo.on_submitted(priority=request.priority)
                rejected = balancer.offer(request, now)
                if rejected is not None:
                    settle(rejected)
            else:
                request = Request(rid, fuzzed, arrival=now)
                if obs is not None:
                    obs.on_submit(request, now)
                balancer.offer(request, now)
                slo.on_submitted()
        # 2. Scenario events.
        if config.hang and now == config.hang[0]:
            wid = config.hang[1]
            if supervisor.running(wid):
                workers[wid].inject_hang(config.hang[2])
                result.events.append((now, "hang_injected", wid, ""))
                if forensics is not None:
                    forensics.fleet_event("hang_injected", now, wid=wid,
                                          ticks=config.hang[2])
        # 3. Supervisor timers (promotions + reboots).
        for wid in supervisor.tick(now):
            workers[wid].boot()
            result.events.append((now, "restarted", wid, ""))
            if manager is not None:
                extra, rto = manager.on_restart(workers[wid], now,
                                                supervisor.startup_ticks)
                if extra:
                    supervisor.extend_start(wid, extra)
                if rto:
                    slo.on_recovery(rto)
        # 4. Dispatch.
        for req in balancer.dispatch(now):
            settle(req)
        # 5. Workers run, in wid order.
        for worker in workers:
            if not supervisor.running(worker.wid):
                continue
            report = worker.run_tick(config.tick_cycles)
            for rid, status in report.outcomes:
                req = balancer.on_outcome(worker.wid, rid, status, now)
                if req is None:
                    continue       # zombie completion: already settled
                if manager is not None and status == "served":
                    manager.on_served(worker.wid, req, now)
                settle(req)
            if report.crash is not None:
                result.crashes += 1
                if report.crash == "WatchdogTimeout":
                    result.watchdog_kills += 1
                result.events.append(
                    (now, "crash", worker.wid, report.crash))
                cost = supervisor.on_crash(worker, now, report.crash)
                if manager is not None:
                    manager.on_crash(worker.wid, now, dead=cost is None)
                for req in balancer.on_worker_crash(
                        worker.wid, report.stranded, now):
                    settle(req)
                if manager is not None and cost is None:
                    promoted = manager.promote(worker.wid, now, balancer,
                                               supervisor.startup_ticks)
                    if promoted is not None:
                        standby, extra, rto = promoted
                        workers[worker.wid] = standby
                        supervisor.revive(worker.wid, now, extra)
                        slo.on_recovery(rto)
                        result.events.append(
                            (now, "promoted", worker.wid, ""))
                        if obs is not None:
                            # Requeued requests keep their trace ids; the
                            # note marks where the serving enclave changed.
                            obs.tracer.note("failover_promoted", now,
                                            wid=worker.wid)
        # 5b. Recovery upkeep: replica apply + sealed checkpoints of
        # idle workers whose interval elapsed.
        if manager is not None:
            manager.tick(now, {w.wid: w for w in workers}, supervisor)
        # 6. Client deadlines: queued requests past their patience fail.
        #    The naive overload client walks away but its queued requests
        #    stay put (zombie work); everywhere else expiry removes them.
        for req in balancer.expire(now, config.deadline_ticks,
                                   abandon_in_place=controls is not None
                                   and controls.mode == "naive"):
            settle(req)
        if forensics is not None or controls is not None:
            epc_total = sum(w.total_epc_faults + w.vm.counters.epc_faults
                            for w in workers)
            if forensics is not None:
                forensics.monitor.observe_tick(
                    now,
                    epc_faults_total=epc_total,
                    p95=slo.latency.percentile_bucket(0.95)
                    if slo.served else None,
                    served=slo.served,
                    queue_depth=balancer.in_system()
                    if controls is not None else None)
            if controls is not None:
                controls.admission.observe_tick(now, balancer.in_system(),
                                                epc_total)
                slo.on_tick(now)
        # 6b. Burn-rate rules see every tick's cumulative good/bad totals.
        if obs is not None:
            obs.observe_tick(now, slo)
        # 7. Termination: all traffic is in, nothing left in the system.
        if exhausted and balancer.in_system() == 0:
            now += 1
            break
        now += 1
    else:
        # Fail-safe: time out everything still in the system as failed.
        for req in balancer.abandon(now):
            if obs is not None:
                obs.on_settled(req)
            slo.on_terminal(req)

    result.ticks = now
    result.slo = slo.summary()
    result.supervisor = supervisor.summary()
    result.breaker_opens = balancer.breaker_opens()
    result.worker_cycles = sum(w.total_cycles + w.cycles() for w in workers)
    if manager is not None:
        result.recovery = manager.finalize(
            {w.wid: w for w in workers}, supervisor, now)
    if controls is not None:
        result.overload = controls.summary()
    if obs is not None:
        result.obs = obs.summary()
    if forensics is not None:
        result.forensics = forensics.summary()
    if registry is not None:
        registry.gauge("fleet.availability").set(
            result.slo["availability"])
        registry.counter("fleet.ticks").inc(result.ticks)
    return result
