"""Fleet supervisor: the worker failure lifecycle on the tick clock.

States::

    starting ──► healthy ◄──► degraded
                    │             │
                    ▼             ▼
                 crashed ──► restarting ──► starting   (cold start priced)
                    │
                    ▼ (K crashes within a window)
                  dead

A crash is priced with :class:`repro.sgx.ColdStartModel` against the
*crashed* incarnation's working set — the supervisor asks the dead
enclave how many EPC pages it had warm, so a worker that crashed deep
into a large working set pays a longer restart than one that died on its
first request.  The cost lands on the simulated clock as ticks of
unavailability.  K crashes inside a sliding window mark the worker dead
(crash loop): the supervisor stops paying for restarts that never stick.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sgx import ColdStartModel

STARTING = "starting"
HEALTHY = "healthy"
DEGRADED = "degraded"
CRASHED = "crashed"
RESTARTING = "restarting"
DEAD = "dead"

#: States in which the balancer may hand a worker requests.
DISPATCHABLE = (HEALTHY, DEGRADED)
#: States in which the worker's VM executes during a tick.
RUNNING = (STARTING, HEALTHY, DEGRADED)


class WorkerRecord:
    """Supervisor-side view of one worker."""

    __slots__ = ("status", "ready_at", "crash_ticks", "crashes", "restarts",
                 "restart_cycles", "crash_reasons")

    def __init__(self) -> None:
        self.status = STARTING
        self.ready_at = 0          # tick at which the next promotion fires
        #: Crash timestamps still inside the crash-loop window; pruned on
        #: every crash and tick so a long campaign's history stays O(K).
        self.crash_ticks: List[int] = []
        self.crashes = 0           # lifetime total (crash_ticks is pruned)
        self.restarts = 0
        self.restart_cycles = 0
        self.crash_reasons: List[str] = []

    def prune(self, now: int, window: int) -> None:
        """Forget crash timestamps older than the crash-loop window."""
        if self.crash_ticks and now - self.crash_ticks[0] > window:
            self.crash_ticks = [t for t in self.crash_ticks
                                if now - t <= window]


class Supervisor:
    """Owns worker state; prices restarts; detects crash loops."""

    def __init__(self, worker_ids, cold_start: Optional[ColdStartModel] = None,
                 rewarm_scale: float = 1.0, tick_cycles: int = 5_000,
                 startup_ticks: int = 1, crash_loop_k: int = 3,
                 crash_loop_window: int = 60, telemetry=None,
                 forensics=None):
        model = cold_start or ColdStartModel()
        self.model = model.scaled(rewarm_scale) \
            if rewarm_scale != model.rewarm_scale else model
        self.tick_cycles = tick_cycles
        self.startup_ticks = startup_ticks
        self.crash_loop_k = crash_loop_k
        self.crash_loop_window = crash_loop_window
        self.telemetry = telemetry \
            if (telemetry is not None and telemetry.enabled) else None
        self.forensics = forensics \
            if (forensics is not None and forensics.enabled) else None
        self.records: Dict[int, WorkerRecord] = {
            wid: WorkerRecord() for wid in worker_ids}
        for record in self.records.values():
            record.ready_at = startup_ticks
        self.total_restart_cycles = 0
        self.deaths = 0

    # ------------------------------------------------------------------
    def status(self, wid: int) -> str:
        return self.records[wid].status

    def dispatchable(self, wid: int) -> bool:
        return self.records[wid].status in DISPATCHABLE

    def running(self, wid: int) -> bool:
        return self.records[wid].status in RUNNING

    def alive_count(self) -> int:
        return sum(1 for r in self.records.values() if r.status != DEAD)

    # ------------------------------------------------------------------
    def on_outcome(self, wid: int, status: str) -> None:
        """Health tracking from request outcomes: errors degrade, a
        served request restores full health."""
        record = self.records[wid]
        if record.status not in DISPATCHABLE:
            return
        record.status = HEALTHY if status == "served" else DEGRADED

    def on_crash(self, worker, now: int, reason: str) -> Optional[int]:
        """Price the crash; returns restart cost in cycles, or None when
        the worker crossed the crash-loop threshold and is dead."""
        record = self.records[worker.wid]
        record.status = CRASHED
        record.prune(now, self.crash_loop_window)
        record.crash_ticks.append(now)
        record.crashes += 1
        record.crash_reasons.append(reason)
        if self.forensics is not None:
            self.forensics.fleet_crash(now, worker.wid, reason)
        if len(record.crash_ticks) >= self.crash_loop_k:
            record.status = DEAD
            self.deaths += 1
            if self.telemetry is not None:
                self.telemetry.fleet_event("dead", worker.wid, now,
                                           detail=reason)
            if self.forensics is not None:
                self.forensics.fleet_event("worker_dead", now,
                                           wid=worker.wid, reason=reason)
            return None
        cost = worker.vm.enclave.cold_start_cycles(self.model)
        record.restarts += 1
        record.restart_cycles += cost
        self.total_restart_cycles += cost
        record.status = RESTARTING
        # The replacement is serving again once the cold start has been
        # paid down, one tick of simulated cycles at a time.
        record.ready_at = now + max(1, -(-cost // self.tick_cycles))
        if self.telemetry is not None:
            self.telemetry.fleet_event("crash", worker.wid, now,
                                       detail=reason)
        return cost

    def tick(self, now: int) -> List[int]:
        """Advance lifecycle timers; returns worker ids to (re)boot now."""
        boots: List[int] = []
        for wid in sorted(self.records):
            record = self.records[wid]
            record.prune(now, self.crash_loop_window)
            if record.status == RESTARTING and now >= record.ready_at:
                record.status = STARTING
                record.ready_at = now + self.startup_ticks
                boots.append(wid)
                if self.telemetry is not None:
                    self.telemetry.fleet_event("restart", wid, now)
                if self.forensics is not None:
                    self.forensics.fleet_event("worker_restart", now,
                                               wid=wid)
            elif record.status == STARTING and now >= record.ready_at:
                record.status = HEALTHY
        return boots

    # ------------------------------------------------------------------
    def extend_start(self, wid: int, extra_ticks: int) -> None:
        """Recovery hook: restoring sealed state stretches the startup
        window of a booting worker by ``extra_ticks``."""
        if extra_ticks > 0:
            self.records[wid].ready_at += extra_ticks

    def revive(self, wid: int, now: int, extra_ticks: int = 0) -> None:
        """Failover hook: a replica was promoted into a DEAD slot.  The
        slot re-enters the lifecycle at STARTING; ``extra_ticks`` prices
        the promotion drain."""
        record = self.records[wid]
        record.status = STARTING
        record.ready_at = now + self.startup_ticks + max(0, extra_ticks)
        if self.telemetry is not None:
            self.telemetry.fleet_event("promote", wid, now)
        if self.forensics is not None:
            self.forensics.fleet_event("replica_promoted", now, wid=wid)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "restarts": sum(r.restarts for r in self.records.values()),
            "deaths": self.deaths,
            "restart_cycles": self.total_restart_cycles,
            "per_worker": {
                wid: {"status": r.status, "restarts": r.restarts,
                      "crashes": r.crashes,
                      "restart_cycles": r.restart_cycles,
                      "crash_reasons": list(r.crash_reasons)}
                for wid, r in sorted(self.records.items())},
        }
