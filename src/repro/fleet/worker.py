"""One fleet worker: an enclave incarnation serving requests depth-1.

A worker wraps the exact single-server substrate of
:func:`repro.harness.runner.run_server` — same scheme instrumentation,
same enclave, same VM — but drives it cooperatively: the app's ``main``
loop parks in a blocking ``net_recv`` between requests, the balancer
pushes one request at a time, and :meth:`EnclaveWorker.run_tick` advances
the VM by a bounded number of simulated cycles so many workers interleave
on one global tick clock.

Failure semantics match the single-server harness: a violation under
``drop-request`` rolls back to the request checkpoint and surfaces an
error reply; under ``abort`` (or any unrecoverable fault — OOM, hijack,
watchdog) the incarnation crashes and the supervisor prices a cold start.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import (
    ControlFlowHijack,
    OutOfMemory,
    ReproError,
    RequestAborted,
    SegmentationFault,
    TrapError,
    WatchdogTimeout,
)
from repro.faults import FaultInjector, derive
from repro.harness.runner import build_server_vm
from repro.vm import machine as vm_mod
from repro.vm import policy as violation_policy
from repro.workloads import NetworkSim
from repro.workloads.netsim import ERROR_MARKER, REJECTED_MARKER

#: Iteration bound handed to the app's ``main(n, threads)``: effectively
#: infinite — the blocking recv paces the loop, not the bound.
SERVER_ITERATIONS = 1 << 30

#: Outcome status values reported per request.
SERVED = "served"
ERROR = "error"


class TickReport:
    """What one :meth:`EnclaveWorker.run_tick` produced."""

    __slots__ = ("outcomes", "crash", "stranded")

    def __init__(self, outcomes: List[Tuple[int, str]],
                 crash: Optional[str] = None,
                 stranded: Optional[int] = None):
        self.outcomes = outcomes    # [(rid, SERVED | ERROR), ...]
        self.crash = crash          # crash reason, None while alive
        self.stranded = stranded    # rid in flight at the crash, if any


class EnclaveWorker:
    """One supervised enclave; reincarnated by ``boot()`` after a crash."""

    def __init__(self, wid: int, module, scheme_name: str,
                 policy: Optional[str] = None, config=None,
                 scheme_kwargs=None, watchdog_budget: int = 200_000,
                 epc_spike_rate: float = 0.0,
                 faults_seed: Optional[int] = None, telemetry=None,
                 forensics=None, mutates=None, obs=None):
        self.wid = wid
        self.module = module              # compiled, uninstrumented base
        self.scheme_name = scheme_name
        self.policy = policy
        self.config = config
        self.scheme_kwargs = scheme_kwargs
        self.watchdog_budget = watchdog_budget
        self.epc_spike_rate = epc_spike_rate
        self.faults_seed = faults_seed
        self.telemetry = telemetry
        self.forensics = forensics \
            if (forensics is not None and forensics.enabled) else None
        #: Optional ``repro.obs.Observability``; when attached, each
        #: completed service attempt reports its counter delta (exact
        #: because workers are depth-1) for critical-path attribution.
        self.obs = obs if (obs is not None and obs.enabled) else None
        #: Predicate classifying request payloads as state-mutating; only
        #: set when the campaign runs with stateful recovery enabled.
        self.mutates = mutates
        #: Recovery manager back-reference (set by ``RecoveryManager.attach``)
        #: so ``submit`` can write-ahead-log mutating requests.
        self.recovery = None
        self.deduped = 0                  # mutations skipped as duplicates
        self.incarnations = 0
        self.served = 0
        self.error_replies = 0
        self.crashes = 0
        self.total_cycles = 0             # summed over dead incarnations
        self.total_epc_faults = 0         # likewise (anomaly detection)
        self.vm = None
        self.boot()

    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Build a fresh incarnation (new scheme clone, enclave, VM)."""
        self.incarnations += 1
        vm, scheme = build_server_vm(
            self.module, self.scheme_name, config=self.config,
            scheme_kwargs=self.scheme_kwargs, policy=self.policy,
            telemetry=self.telemetry, forensics=self.forensics)
        vm.net_blocking = True
        vm.net = NetworkSim()
        vm.worker_id = self.wid
        if self.forensics is not None:
            # The balancer's rid is the request identity fleet-wide; the
            # worker stamps it at submit, so recv must not overwrite it
            # with the NetworkSim message id.
            vm.external_rids = True
            vm.net.forensics = self.forensics
            vm.net.clock = (lambda v=vm: v.counters.instructions)
        if self.epc_spike_rate > 0.0 and self.faults_seed is not None:
            # Noisy-neighbour analog: a co-tenant occasionally thrashes
            # the shared EPC; seeded per incarnation so restarts do not
            # replay the same spike schedule.
            vm.faults = FaultInjector(
                derive(self.faults_seed,
                       f"epc:w{self.wid}:i{self.incarnations}"),
                epc_spike_rate=self.epc_spike_rate)
        self.conn = vm.net.connect()
        main_fn = vm.program.functions["main"]
        vm.new_thread(main_fn, (SERVER_ITERATIONS, 1))
        self.vm = vm
        self.scheme = scheme
        self.inflight: Optional[Tuple[int, bytes]] = None
        self.last_error: Optional[Exception] = None
        self._fault_thread = None
        self._dispatch_instr = 0
        self._sent_seen = 0
        self._hang_ticks = 0
        self._pause_ticks = 0
        self._dedup_ack = False
        self._obs_snap = None
        #: Mutating request ids whose effects are in this incarnation's
        #: state (repopulated by recovery replay after a restart); the
        #: dedup check in ``submit`` consults it so a hedged or retried
        #: duplicate is acked without re-applying.
        self.applied_rids = set()

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return 0 if self.inflight is None else 1

    def cycles(self) -> int:
        """Simulated cycles of the live incarnation."""
        return self.vm.enclave.cycles()

    def submit(self, rid: int, payload: bytes, priority: str = "normal",
               waited_cycles: int = 0, trace: Optional[str] = None) -> None:
        """Hand one request to the worker (depth-1: caller checks idle).

        ``waited_cycles`` backdates the watchdog clock by the simulated
        cycles the request already spent in the worker's ingress queue,
        so the per-request instruction budget is measured from *dispatch*
        (balancer assignment) rather than dequeue — a request cannot hide
        unbounded queueing time from the watchdog.  The default of 0
        keeps the pre-overload behaviour exactly."""
        vm = self.vm
        mutating = self.mutates is not None and self.mutates(payload)
        if mutating and rid in self.applied_rids:
            # Idempotence under hedged/retried dispatch: this mutation is
            # already in the live state, so ack it without touching the VM
            # (re-applying a SET after an interleaved write to the same
            # key would resurrect the older value).
            self.inflight = (rid, payload)
            self._dedup_ack = True
            self.deduped += 1
            if self.forensics is not None:
                self.forensics.record(
                    "dedup", ts=vm.counters.instructions, cat="fleet",
                    rid=rid, wid=self.wid)
            return
        if mutating and self.recovery is not None:
            self.recovery.on_dispatch(self.wid, rid, payload)
        self.inflight = (rid, payload)
        self._sent_seen = len(vm.net.sent(self.conn))
        self._dispatch_instr = vm.counters.instructions - max(0, waited_cycles)
        if self.obs is not None:
            from repro.telemetry.profiler import ATTRIB_FIELDS
            self._obs_snap = (
                tuple(getattr(vm.counters, f) for f in ATTRIB_FIELDS),
                vm.enclave.cycles())
        mid = vm.net.push(self.conn, payload, priority=priority, trace=trace)
        if self.forensics is not None:
            vm.request_id = rid
            vm.request_payload = payload
            self.forensics.record(
                "dispatch", ts=vm.counters.instructions, cat="fleet",
                rid=rid, wid=self.wid, conn=self.conn, mid=mid)
        vm.unblock_net_waiters(self.conn)

    def inject_hang(self, ticks: int) -> None:
        """Scenario hook: the worker livelocks for ``ticks`` ticks,
        burning instructions without progress (watchdog fodder)."""
        self._hang_ticks = max(self._hang_ticks, ticks)

    def pause(self, ticks: int) -> None:
        """Recovery hook: the worker stalls for ``ticks`` ticks while a
        checkpoint seals.  Only taken when idle, so unlike a hang it can
        never trip the watchdog."""
        self._pause_ticks += ticks

    # ------------------------------------------------------------------
    def run_tick(self, cycle_budget: int) -> TickReport:
        """Advance the incarnation by about ``cycle_budget`` cycles."""
        vm = self.vm
        outcomes: List[Tuple[int, str]] = []
        if self._dedup_ack:
            self._dedup_ack = False
            rid, _ = self.inflight
            self.inflight = None
            self.served += 1
            return TickReport([(rid, SERVED)])
        if self._pause_ticks > 0:
            # Sealing a checkpoint: the enclave is busy with EGETKEY/GCM
            # work already charged to its clock; no requests progress.
            self._pause_ticks -= 1
            return TickReport(outcomes)
        if self._hang_ticks > 0:
            self._hang_ticks -= 1
            # A stuck enclave spins: the cycles pass, nothing completes.
            vm.charge(cycle_budget)
            if self._watchdog_fired():
                return self._crash_report("WatchdogTimeout", outcomes)
            return TickReport(outcomes)
        start = vm.enclave.cycles()
        while vm.enclave.cycles() - start < cycle_budget:
            thread = next((t for t in vm.threads
                           if t.state == vm_mod.RUNNABLE), None)
            if thread is None:
                break                      # parked in blocking recv
            try:
                vm._step(thread, vm.quantum)
            except RequestAborted as drop:
                vm.current = None
                if not vm._recover_request(thread, drop.violation):
                    self.last_error = drop.violation
                    self._fault_thread = thread
                    return self._crash_report(
                        type(drop.violation).__name__, outcomes)
            except (SegmentationFault, ControlFlowHijack, TrapError) as err:
                vm.current = None
                if (vm.scheme.policy != violation_policy.DROP_REQUEST
                        or not vm._recover_request(thread, err)):
                    self.last_error = err
                    self._fault_thread = thread
                    return self._crash_report(type(err).__name__, outcomes)
            except OutOfMemory as err:
                self.last_error = err
                self._fault_thread = thread
                return self._crash_report("OOM", outcomes)
            except ReproError as err:
                self.last_error = err
                self._fault_thread = thread
                return self._crash_report(type(err).__name__, outcomes)
            outcomes.extend(self._drain_replies())
            if self._watchdog_fired():
                self._fault_thread = thread
                return self._crash_report("WatchdogTimeout", outcomes)
        outcomes.extend(self._drain_replies())
        return TickReport(outcomes)

    # ------------------------------------------------------------------
    def drive_control(self, payload: bytes,
                      max_cycles: int = 50_000_000) -> Tuple[List[bytes], int]:
        """Synchronously run one control request (snapshot dump, restore
        row, WAL replay) through the live VM and return
        ``(reply_messages, cycles_spent)``.

        Only the recovery machinery calls this, and only while the worker
        is idle — control traffic never races client requests and never
        arms the watchdog.  Cycles land on the enclave clock like any
        other work; the caller converts them into stall ticks.  Faults
        propagate as :class:`repro.errors.ReproError` for the caller to
        translate into a failed recovery.
        """
        if self.inflight is not None:
            raise RuntimeError("drive_control on a busy worker")
        vm = self.vm
        seen = len(vm.net.sent(self.conn))
        start = vm.enclave.cycles()
        vm.net.push(self.conn, payload)
        vm.unblock_net_waiters(self.conn)
        while True:
            thread = next((t for t in vm.threads
                           if t.state == vm_mod.RUNNABLE), None)
            if thread is None:
                break                      # parked back in blocking recv
            vm._step(thread, vm.quantum)
            if vm.enclave.cycles() - start > max_cycles:
                raise RuntimeError(
                    f"control request runaway on worker {self.wid}")
        messages = list(vm.net.sent(self.conn)[seen:])
        self._sent_seen = len(vm.net.sent(self.conn))
        return messages, vm.enclave.cycles() - start

    # ------------------------------------------------------------------
    def _watchdog_fired(self) -> bool:
        if self.inflight is None:
            return False
        spent = self.vm.counters.instructions - self._dispatch_instr
        if spent <= self.watchdog_budget:
            return False
        self.last_error = WatchdogTimeout(self.watchdog_budget, spent,
                                          request_id=self.inflight[0])
        return True

    def _drain_replies(self) -> List[Tuple[int, str]]:
        if self.inflight is None:
            return []
        sent = self.vm.net.sent(self.conn)
        # Rejection notices share the client connection but are addressed
        # to the client, not replies to the in-flight request.
        while (self._sent_seen < len(sent)
               and sent[self._sent_seen] == REJECTED_MARKER):
            self._sent_seen += 1
        if len(sent) <= self._sent_seen:
            return []
        reply = sent[self._sent_seen]
        self._sent_seen = len(sent)       # swallow multi-part replies
        rid, payload = self.inflight
        self.inflight = None
        if self.obs is not None and self._obs_snap is not None:
            from repro.telemetry.profiler import ATTRIB_FIELDS
            snap, cycles0 = self._obs_snap
            self._obs_snap = None
            now = tuple(getattr(self.vm.counters, f)
                        for f in ATTRIB_FIELDS)
            delta = {f: now[i] - snap[i]
                     for i, f in enumerate(ATTRIB_FIELDS)}
            self.obs.enclave_sample(rid, self.wid, delta,
                                    self.vm.enclave.cycles() - cycles0)
        if reply == ERROR_MARKER:
            self.error_replies += 1
            return [(rid, ERROR)]
        if self.mutates is not None and self.mutates(payload):
            self.applied_rids.add(rid)
        self.served += 1
        return [(rid, SERVED)]

    def _crash_report(self, reason: str,
                      outcomes: List[Tuple[int, str]]) -> TickReport:
        self.crashes += 1
        self.total_cycles += self.vm.enclave.cycles()
        self.total_epc_faults += self.vm.counters.epc_faults
        stranded = self.inflight[0] if self.inflight is not None else None
        if (self.forensics is not None and self.last_error is not None
                and not getattr(self.last_error,
                                "_postmortem_captured", False)):
            payload = self.inflight[1] if self.inflight is not None else None
            self.forensics.capture(
                self.vm, self.last_error, reason=reason, rid=stranded,
                payload=payload, wid=self.wid, thread=self._fault_thread)
        self.inflight = None
        self._obs_snap = None     # cycles died with the incarnation
        return TickReport(outcomes, crash=reason, stranded=stranded)
