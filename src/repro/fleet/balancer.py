"""Deterministic load balancer: dispatch, circuit breakers, retries.

Everything here runs on the campaign's tick clock with no randomness at
all — worker iteration order is worker-id order, round-robin keeps an
explicit cursor — so two campaigns with the same seed produce identical
dispatch sequences regardless of host hashing or timing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.fleet.supervisor import Supervisor

ROUND_ROBIN = "round-robin"
LEAST_OUTSTANDING = "least-outstanding"
POLICIES = (ROUND_ROBIN, LEAST_OUTSTANDING)

# Circuit breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Dispatch order for classed pending queues, most important first.
#: (Kept local so the balancer never imports :mod:`repro.overload`; the
#: admission gate is duck-typed in.)
PRIORITY_ORDER = ("critical", "normal", "sheddable")


class Request:
    """One client request moving through the fleet."""

    __slots__ = ("rid", "payload", "arrival", "attempts", "status",
                 "completed_at", "worker", "detail", "priority",
                 "client_retries", "assigned_at", "started_at", "abandoned",
                 "first_arrival", "trace")

    def __init__(self, rid: int, payload: bytes, arrival: int,
                 priority: str = "normal", client_retries: int = 0,
                 first_arrival: Optional[int] = None):
        self.rid = rid
        self.payload = payload
        self.arrival = arrival
        #: Tick the *first* client attempt for this rid arrived; client
        #: retries restart ``arrival`` (each attempt gets fresh patience)
        #: but goodput timeliness is end-to-end from here.
        self.first_arrival = arrival if first_arrival is None \
            else first_arrival
        self.attempts = 0
        self.status: Optional[str] = None    # served|error|failed|rejected
        self.completed_at: Optional[int] = None
        self.worker: Optional[int] = None
        self.detail = ""
        self.priority = priority             # overload traffic class
        self.client_retries = client_retries  # client-side resubmissions
        self.assigned_at: Optional[int] = None   # bound to a worker queue
        self.started_at: Optional[int] = None    # entered service
        #: Client walked away (deadline) but the request stays queued at
        #: its worker, which will serve it anyway — zombie work, the
        #: wasted-capacity half of congestion collapse (naive mode only).
        self.abandoned = False
        #: Causal trace id, stamped by the observability layer at client
        #: submit; None (the default) on every path outside obs runs.
        self.trace: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status is not None


class CircuitBreaker:
    """closed → open after N consecutive failures; cooldown in ticks;
    half-open admits a single probe that decides reopen vs close."""

    __slots__ = ("threshold", "cooldown", "state", "failures", "open_until",
                 "probing", "opens")

    def __init__(self, threshold: int = 3, cooldown: int = 25):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.failures = 0
        self.open_until = 0
        self.probing = False
        self.opens = 0

    def allow(self, now: int) -> bool:
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now < self.open_until:
                return False
            self.state = HALF_OPEN
            self.probing = False
        # HALF_OPEN: admit exactly one in-flight probe.
        return not self.probing

    def on_dispatch(self) -> None:
        if self.state == HALF_OPEN:
            self.probing = True

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED
        self.probing = False

    def record_failure(self, now: int) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            self.state = OPEN
            self.open_until = now + self.cooldown
            self.failures = 0
            self.probing = False
            self.opens += 1


class Balancer:
    """Routes requests to workers; owns retry budgets and breakers."""

    def __init__(self, workers, supervisor: Supervisor,
                 policy: str = ROUND_ROBIN, queue_cap: int = 2,
                 max_attempts: int = 2, hedge_stranded: bool = True,
                 breaker_threshold: int = 3, breaker_cooldown: int = 25,
                 telemetry=None, forensics=None, admission=None,
                 tick_cycles: Optional[int] = None, obs=None):
        if policy not in POLICIES:
            raise ValueError(f"unknown balance policy {policy!r}; "
                             f"expected one of {POLICIES}")
        self.workers = {w.wid: w for w in workers}
        self.order = sorted(self.workers)
        self.supervisor = supervisor
        self.policy = policy
        self.queue_cap = queue_cap
        self.max_attempts = max_attempts
        self.hedge_stranded = hedge_stranded
        self.telemetry = telemetry \
            if (telemetry is not None and telemetry.enabled) else None
        self.forensics = forensics \
            if (forensics is not None and forensics.enabled) else None
        #: Optional ``repro.obs.Observability``; when attached every
        #: queue/dispatch/retry/hedge transition lands a hop in the
        #: request's causal trace.  None keeps every path below
        #: byte-identical to the obs-free balancer.
        self.obs = obs if (obs is not None and obs.enabled) else None
        self.pending: Deque[Request] = deque()
        self.queues: Dict[int, Deque[Request]] = {
            wid: deque() for wid in self.order}
        self.inflight: Dict[int, Request] = {}
        self.breakers: Dict[int, CircuitBreaker] = {
            wid: CircuitBreaker(breaker_threshold, breaker_cooldown)
            for wid in self.order}
        self._rr = 0
        self.failed_no_capacity = 0
        #: Optional ``repro.overload.AdmissionController``; None keeps
        #: every path below byte-identical to the pre-overload balancer.
        self.admission = admission
        self._protected = admission is not None and admission.enabled
        #: Ticks→cycles conversion for watchdog backdating; None (the
        #: default) disables backdating entirely.
        self.tick_cycles = tick_cycles
        self.rejected = 0

    # ------------------------------------------------------------------
    def offer(self, request: Request, now: int = 0) -> Optional[Request]:
        """Admit ``request`` into the pending queue.  With an admission
        gate attached a request can be turned away right here; the
        rejected (terminal) request is returned for the caller to
        account, None means it was queued."""
        if self.admission is not None:
            reason = self.admission.admit_offer(
                request, self.in_system(), self.supervisor.alive_count(),
                now)
            if reason is not None:
                return self._reject(request, reason, now)
        self.pending.append(request)
        if self.obs is not None:
            self.obs.tracer.hop(
                request.rid, "admission", now,
                gate="open" if self.admission is not None else "none")
        return None

    def _reject(self, request: Request, reason: str, now: int) -> Request:
        request.status = "rejected"
        request.detail = reason
        request.completed_at = now
        self.rejected += 1
        if self.obs is not None:
            self.obs.tracer.hop(request.rid, "rejected", now, reason=reason)
        self.admission.on_reject(request, reason, now)
        # Surface the distinct RJCT frame on a live worker's client
        # connection so NetworkSim's rejected counter (satellite of this
        # PR) sees fleet rejections; costs zero enclave cycles.
        for wid in self.order:
            if self.supervisor.dispatchable(wid):
                worker = self.workers[wid]
                worker.vm.net.reject_request(worker.conn)
                break
        if self.forensics is not None:
            self.forensics.fleet_event("request_rejected", now,
                                       rid=request.rid, reason=reason)
        return request

    def _next_pending(self) -> Request:
        """Head of the pending queue; under protection the classes form
        strict bands (critical drains before normal before sheddable)."""
        if self._protected and len(self.pending) > 1:
            for cls in PRIORITY_ORDER:
                for i, request in enumerate(self.pending):
                    if request.priority == cls:
                        del self.pending[i]
                        return request
        return self.pending.popleft()

    def outstanding(self, wid: int) -> int:
        return len(self.queues[wid]) + (1 if wid in self.inflight else 0)

    def in_system(self) -> int:
        return (len(self.pending) + len(self.inflight)
                + sum(len(q) for q in self.queues.values()))

    # ------------------------------------------------------------------
    def _eligible(self, now: int) -> List[int]:
        return [wid for wid in self.order
                if self.supervisor.dispatchable(wid)
                and self.breakers[wid].allow(now)
                and self.outstanding(wid) < self.queue_cap]

    def _pick(self, eligible: List[int]) -> int:
        if self.policy == LEAST_OUTSTANDING:
            return min(eligible, key=lambda w: (self.outstanding(w), w))
        # Round-robin over worker ids, skipping ineligible ones.
        n = max(self.order) + 1
        for offset in range(n):
            wid = (self._rr + offset) % n
            if wid in self.workers and wid in eligible:
                self._rr = (wid + 1) % n
                return wid
        return eligible[0]

    def dispatch(self, now: int) -> List[Request]:
        """Assign pending requests to worker queues, then start idle
        workers on the head of their queue.  Returns requests that went
        terminal here (backlog failed for lack of capacity, or rejected
        by the per-worker admission gate)."""
        terminal: List[Request] = []
        while self.pending:
            eligible = self._eligible(now)
            if not eligible:
                break
            request = self._next_pending()
            choices = eligible
            if self._protected and (request.attempts > 0
                                    or request.client_retries > 0):
                # Hedge suppression: a retried request never lands on a
                # worker mid-probe — a half-open breaker's single probe
                # slot is for establishing health, and stacking retries
                # onto a recovering worker is how hedges re-kill it.
                settled = [w for w in choices
                           if self.breakers[w].state != HALF_OPEN]
                if settled:
                    choices = settled
            wid = self._pick(choices)
            if self.admission is not None:
                reason = self.admission.admit_assign(
                    request, self.outstanding(wid), now)
                if reason is not None:
                    terminal.append(self._reject(request, reason, now))
                    continue
            request.assigned_at = now
            self.queues[wid].append(request)
            if self.obs is not None:
                self.obs.tracer.hop(request.rid, "assign", now, wid=wid)
        for wid in self.order:
            if wid in self.inflight or not self.queues[wid]:
                continue
            if not self.supervisor.dispatchable(wid):
                continue
            request = self.queues[wid].popleft()
            request.attempts += 1
            request.worker = wid
            request.started_at = now
            self.inflight[wid] = request
            self.breakers[wid].on_dispatch()
            if self.obs is not None:
                self.obs.tracer.hop(request.rid, "dispatch", now, wid=wid,
                                    attempt=request.attempts)
            # Stamped only by the observability layer; omitting the kwarg
            # otherwise keeps plain worker stand-ins signature-compatible.
            extra = {} if request.trace is None \
                else {"trace": request.trace}
            if self.tick_cycles is not None:
                assigned = request.assigned_at \
                    if request.assigned_at is not None else now
                self.workers[wid].submit(
                    request.rid, request.payload,
                    priority=request.priority,
                    waited_cycles=max(0, now - assigned) * self.tick_cycles,
                    **extra)
            else:
                self.workers[wid].submit(request.rid, request.payload,
                                         **extra)
        # Nobody left to serve the backlog: fail it fast.
        if self.supervisor.alive_count() == 0:
            terminal.extend(self._fail_backlog(now))
        return terminal

    # ------------------------------------------------------------------
    def on_outcome(self, wid: int, rid: int, status: str,
                   now: int) -> Optional[Request]:
        """A worker resolved a request (served or error reply)."""
        request = self.inflight.pop(wid, None)
        if request is None or request.rid != rid:
            raise RuntimeError(
                f"balancer: worker {wid} resolved rid {rid} but "
                f"{request.rid if request else None} was in flight")
        breaker = self.breakers[wid]
        if status == "served":
            breaker.record_success()
        else:
            was_open = breaker.state == OPEN
            breaker.record_failure(now)
            if breaker.state == OPEN and not was_open:
                if self.telemetry is not None:
                    self.telemetry.fleet_event("breaker_open", wid, now)
                if self.forensics is not None:
                    self.forensics.fleet_event("breaker_open", now, wid=wid)
        self.supervisor.on_outcome(wid, status)
        if (self.admission is not None and status == "served"
                and request.started_at is not None):
            self.admission.on_served(max(1, now - request.started_at + 1))
        if request.abandoned:
            # Zombie completion: the client recorded this request as
            # failed when it expired; the cycles just spent serving it
            # were pure waste and must not resurface as a success.
            if self.obs is not None:
                # The trace already closed at expiry, so this lands as a
                # zombie_done hop — wasted work made visible.
                self.obs.tracer.terminal(request.rid, now, status, wid=wid)
            return None
        request.status = status
        request.completed_at = now
        return request

    def on_worker_crash(self, wid: int, stranded_rid: Optional[int],
                        now: int) -> List[Request]:
        """Crash fallout: the in-flight request consumes an attempt (and
        retries if budget remains); queued requests either hedge back to
        the global pending queue or fail with the worker.  Returns
        requests that reached a terminal state here."""
        terminal: List[Request] = []
        breaker = self.breakers[wid]
        was_open = breaker.state == OPEN
        breaker.record_failure(now)
        if breaker.state == OPEN and not was_open:
            if self.telemetry is not None:
                self.telemetry.fleet_event("breaker_open", wid, now)
            if self.forensics is not None:
                self.forensics.fleet_event("breaker_open", now, wid=wid)
        request = self.inflight.pop(wid, None)
        if request is not None:
            if stranded_rid is not None and request.rid != stranded_rid:
                raise RuntimeError(
                    f"balancer: worker {wid} stranded rid {stranded_rid} "
                    f"but rid {request.rid} was in flight")
            if request.attempts < self.max_attempts:
                self.pending.appendleft(request)
                if self.obs is not None:
                    self.obs.tracer.hop(request.rid, "requeue", now,
                                        wid=wid, reason="crash")
                if self.forensics is not None:
                    self.forensics.fleet_event("request_requeued", now,
                                               wid=wid, rid=request.rid)
            else:
                request.status = "failed"
                request.detail = "crash; retries exhausted"
                request.completed_at = now
                terminal.append(request)
        queued = self.queues[wid]
        if self.hedge_stranded:
            # Hedged re-dispatch: queue assignment never consumed an
            # attempt, so hand the whole queue straight back (in order).
            # Zombies die with the worker — their client is long gone.
            while queued:
                waiting = queued.pop()
                if waiting.terminal:
                    continue
                self.pending.appendleft(waiting)
                if self.obs is not None:
                    self.obs.tracer.hop(waiting.rid, "requeue", now,
                                        wid=wid, reason="hedge")
        elif self.supervisor.status(wid) == "dead":
            while queued:
                waiting = queued.popleft()
                if waiting.terminal:
                    continue
                waiting.status = "failed"
                waiting.detail = "worker dead"
                waiting.completed_at = now
                terminal.append(waiting)
        # else: sticky queueing — requests wait out the restart in place.
        return terminal

    def _fail_backlog(self, now: int) -> List[Request]:
        failed: List[Request] = []
        while self.pending:
            request = self.pending.popleft()
            request.status = "failed"
            request.detail = "no capacity"
            request.completed_at = now
            failed.append(request)
            self.failed_no_capacity += 1
        return failed

    def expire(self, now: int, deadline_ticks: int,
               abandon_in_place: bool = False) -> List[Request]:
        """Client timeouts: fail queued/pending requests older than the
        deadline.  In-flight requests are left to finish — the worker is
        actively serving them — so expiry models a client abandoning its
        place in line, not cancelling server work.

        ``abandon_in_place`` (naive overload mode) models the nastier
        real-world version for requests already bound to a worker queue:
        the client gives up, but the request is still sitting in the
        worker's accept buffer and will be served anyway — too late to
        matter, at full service cost.  Those zombies are reported as
        failed here but stay queued, so their eventual completion burns
        capacity without producing goodput."""
        expired: List[Request] = []

        def sweep(queue: Deque[Request],
                  in_place: bool = False) -> Deque[Request]:
            kept: Deque[Request] = deque()
            while queue:
                request = queue.popleft()
                if request.terminal:
                    kept.append(request)     # zombie: already reported
                elif now - request.arrival >= deadline_ticks:
                    request.status = "failed"
                    request.detail = "deadline"
                    request.completed_at = now
                    expired.append(request)
                    if self.obs is not None:
                        self.obs.tracer.hop(
                            request.rid, "expired", now,
                            waited=now - request.arrival)
                    if in_place:
                        request.abandoned = True
                        kept.append(request)
                    if self.forensics is not None:
                        self.forensics.fleet_event("request_expired", now,
                                                   rid=request.rid)
                else:
                    kept.append(request)
            return kept

        self.pending = sweep(self.pending)
        for wid in self.order:
            self.queues[wid] = sweep(self.queues[wid],
                                     in_place=abandon_in_place)
        return expired

    def abandon(self, now: int) -> List[Request]:
        """Campaign timeout: fail everything still in the system."""
        failed = self._fail_backlog(now)
        for wid in self.order:
            queue = self.queues[wid]
            while queue:
                request = queue.popleft()
                if request.terminal:
                    continue             # zombie: already reported
                request.status = "failed"
                request.detail = "campaign timeout"
                request.completed_at = now
                failed.append(request)
            request = self.inflight.pop(wid, None)
            if request is not None:
                request.status = "failed"
                request.detail = "campaign timeout"
                request.completed_at = now
                failed.append(request)
        return failed

    # ------------------------------------------------------------------
    def replace_worker(self, wid: int, worker) -> None:
        """Failover: a promoted replica takes over ``wid``'s slot.  The
        queue, breaker, and retry bookkeeping carry over — clients see
        the same shard, served by a different enclave."""
        if wid not in self.workers:
            raise KeyError(f"balancer has no worker {wid}")
        if wid in self.inflight:
            raise RuntimeError(
                f"cannot replace worker {wid} with a request in flight")
        self.workers[wid] = worker

    # ------------------------------------------------------------------
    def breaker_opens(self) -> int:
        return sum(b.opens for b in self.breakers.values())
