"""SLO accounting: availability and latency percentiles for a campaign.

Latency is priced on the simulated clock — a request that arrived on
tick ``a`` and completed on tick ``c`` spent ``(c - a + 1) * tick_cycles``
cycles in the system, queueing and restarts included.  Percentiles come
from the deterministic fixed-bucket histograms of
:mod:`repro.telemetry.metrics` (a percentile is a bucket upper edge, so
two identical campaigns report identical numbers on any host).
"""

from __future__ import annotations

from typing import Dict

from repro.fleet.balancer import Request
from repro.telemetry.metrics import Histogram, exponential_bounds

#: Latency bucket edges in cycles: 1k .. ~1G, factor 2 — wide enough for
#: one-tick hits and for requests stuck behind a cold restart.
LATENCY_BOUNDS = exponential_bounds(start=1_000, factor=2, count=21)


class SLOTracker:
    """Prices terminal requests into availability + latency quantiles."""

    def __init__(self, tick_cycles: int, registry=None, anomalies=None):
        self.tick_cycles = tick_cycles
        #: Optional ``repro.forensics.anomaly.AnomalyMonitor``; when
        #: attached its alert tallies surface in :meth:`summary`.
        self.anomalies = anomalies
        if registry is not None:
            self.latency = registry.histogram("fleet.latency_cycles",
                                              LATENCY_BOUNDS)
        else:
            self.latency = Histogram("fleet.latency_cycles", LATENCY_BOUNDS)
        self.submitted = 0
        self.served = 0
        self.error_replies = 0
        self.failed = 0
        #: Recovery-time-objective samples (ticks from crash to serving
        #: again), populated only when stateful recovery is enabled.
        self.rto_ticks: list = []

    # ------------------------------------------------------------------
    def on_submitted(self, count: int = 1) -> None:
        self.submitted += count

    def on_terminal(self, request: Request) -> None:
        if request.status == "served":
            self.served += 1
            latency = (request.completed_at - request.arrival + 1) \
                * self.tick_cycles
            self.latency.observe(latency)
        elif request.status == "error":
            self.error_replies += 1
        else:
            self.failed += 1

    def on_recovery(self, rto_ticks: int) -> None:
        """One crash-to-serving recovery completed (restore or failover)."""
        self.rto_ticks.append(rto_ticks)

    # ------------------------------------------------------------------
    def availability(self) -> float:
        if not self.submitted:
            return 1.0
        return self.served / self.submitted

    def summary(self) -> Dict[str, object]:
        served = self.served
        out = {
            "submitted": self.submitted,
            "served": served,
            "error_replies": self.error_replies,
            "failed": self.failed,
            "availability": self.availability(),
            "latency_p50_cycles": self.latency.percentile_bucket(0.50)
            if served else None,
            "latency_p95_cycles": self.latency.percentile_bucket(0.95)
            if served else None,
            "latency_p99_cycles": self.latency.percentile_bucket(0.99)
            if served else None,
            "latency_mean_cycles": (self.latency.total / served)
            if served else None,
        }
        if self.rto_ticks:
            # Only when recovery populated it, so default summaries stay
            # byte-identical with recovery off.
            out["rto"] = {
                "count": len(self.rto_ticks),
                "mean_ticks": sum(self.rto_ticks) / len(self.rto_ticks),
                "max_ticks": max(self.rto_ticks),
            }
        if self.anomalies is not None:
            # Only when forensics is attached, so default summaries stay
            # byte-identical with the detector absent.
            out["alerts"] = self.anomalies.summary()
        return out
