"""SLO accounting: availability and latency percentiles for a campaign.

Latency is priced on the simulated clock — a request that arrived on
tick ``a`` and completed on tick ``c`` spent ``(c - a + 1) * tick_cycles``
cycles in the system, queueing and restarts included.  Percentiles come
from the deterministic fixed-bucket histograms of
:mod:`repro.telemetry.metrics` (a percentile is a bucket upper edge, so
two identical campaigns report identical numbers on any host).
"""

from __future__ import annotations

from typing import Dict

from repro.fleet.balancer import Request
from repro.telemetry.metrics import Histogram, exponential_bounds

#: Latency bucket edges in cycles: 1k .. ~1G, factor 2 — wide enough for
#: one-tick hits and for requests stuck behind a cold restart.
LATENCY_BOUNDS = exponential_bounds(start=1_000, factor=2, count=21)


def _class_counters() -> Dict[str, int]:
    return {"submitted": 0, "served": 0, "timely": 0, "error_replies": 0,
            "failed": 0, "rejected": 0}


class SLOTracker:
    """Prices terminal requests into availability + latency quantiles.

    The overload parameters are all opt-in: ``deadline_ticks`` switches
    on goodput accounting (*timely* = served within the deadline of its
    arrival), ``classes`` adds a per-priority-class breakdown, and
    ``timeline_window`` rolls timely counts into fixed windows so a
    metastable collapse is visible as a timeline, not just a total.
    None of them change a byte of the default summary when left unset.
    """

    def __init__(self, tick_cycles: int, registry=None, anomalies=None,
                 deadline_ticks=None, classes=(), timeline_window: int = 0):
        self.tick_cycles = tick_cycles
        #: Optional ``repro.forensics.anomaly.AnomalyMonitor``; when
        #: attached its alert tallies surface in :meth:`summary`.
        self.anomalies = anomalies
        if registry is not None:
            self.latency = registry.histogram("fleet.latency_cycles",
                                              LATENCY_BOUNDS)
        else:
            self.latency = Histogram("fleet.latency_cycles", LATENCY_BOUNDS)
        self.submitted = 0
        self.served = 0
        self.error_replies = 0
        self.failed = 0
        self.rejected = 0
        self.timely = 0
        self.deadline_ticks = deadline_ticks
        self.by_class: Dict[str, Dict[str, int]] = {
            cls: _class_counters() for cls in classes}
        self.timeline_window = timeline_window
        self.goodput_timeline: list = []
        self._window_timely = 0
        #: Request ids that already went terminal.  A rid reaches a
        #: terminal state at most once in SLO terms: hedged duplicates,
        #: client retries of the same rid, and zombie late-completions
        #: must never double-count a latency sample or an availability
        #: denominator.
        self._finalized: set = set()
        #: Recovery-time-objective samples (ticks from crash to serving
        #: again), populated only when stateful recovery is enabled.
        self.rto_ticks: list = []

    # ------------------------------------------------------------------
    def on_submitted(self, count: int = 1, priority=None) -> None:
        self.submitted += count
        if priority is not None and priority in self.by_class:
            self.by_class[priority]["submitted"] += count

    def on_terminal(self, request: Request) -> None:
        if request.rid in self._finalized:
            return
        self._finalized.add(request.rid)
        cls = self.by_class.get(request.priority) if self.by_class else None
        if request.status == "served":
            self.served += 1
            latency = (request.completed_at - request.arrival + 1) \
                * self.tick_cycles
            self.latency.observe(latency)
            if cls is not None:
                cls["served"] += 1
            # Timeliness is end-to-end: from the first client attempt,
            # not the latest retry's arrival — a request the client had
            # to resubmit three times did not meet its deadline just
            # because the last attempt was quick.
            if self.deadline_ticks is not None and \
                    request.completed_at - request.first_arrival \
                    <= self.deadline_ticks:
                self.timely += 1
                self._window_timely += 1
                if cls is not None:
                    cls["timely"] += 1
        elif request.status == "error":
            self.error_replies += 1
            if cls is not None:
                cls["error_replies"] += 1
        elif request.status == "rejected":
            self.rejected += 1
            if cls is not None:
                cls["rejected"] += 1
        else:
            self.failed += 1
            if cls is not None:
                cls["failed"] += 1

    def on_tick(self, now: int) -> None:
        """Roll the goodput timeline (overload campaigns only)."""
        if not self.timeline_window:
            return
        if (now + 1) % self.timeline_window == 0:
            self.goodput_timeline.append(self._window_timely)
            self._window_timely = 0

    def on_recovery(self, rto_ticks: int) -> None:
        """One crash-to-serving recovery completed (restore or failover)."""
        self.rto_ticks.append(rto_ticks)

    # ------------------------------------------------------------------
    def availability(self) -> float:
        if not self.submitted:
            return 1.0
        return self.served / self.submitted

    def summary(self) -> Dict[str, object]:
        served = self.served
        out = {
            "submitted": self.submitted,
            "served": served,
            "error_replies": self.error_replies,
            "failed": self.failed,
            "availability": self.availability(),
            "latency_p50_cycles": self.latency.percentile_bucket(0.50)
            if served else None,
            "latency_p95_cycles": self.latency.percentile_bucket(0.95)
            if served else None,
            "latency_p99_cycles": self.latency.percentile_bucket(0.99)
            if served else None,
            "latency_mean_cycles": (self.latency.total / served)
            if served else None,
        }
        if self.deadline_ticks is not None:
            # Only for overload campaigns, so default summaries stay
            # byte-identical with the overload layer absent.
            out["overload"] = {
                "deadline_ticks": self.deadline_ticks,
                "timely": self.timely,
                "rejected": self.rejected,
                "by_class": {cls: dict(counters) for cls, counters
                             in sorted(self.by_class.items())},
                "goodput_timeline": list(self.goodput_timeline)
                + ([self._window_timely] if self._window_timely else []),
            }
        if self.rto_ticks:
            # Only when recovery populated it, so default summaries stay
            # byte-identical with recovery off.
            out["rto"] = {
                "count": len(self.rto_ticks),
                "mean_ticks": sum(self.rto_ticks) / len(self.rto_ticks),
                "max_ticks": max(self.rto_ticks),
            }
        if self.anomalies is not None:
            # Only when forensics is attached, so default summaries stay
            # byte-identical with the detector absent.
            out["alerts"] = self.anomalies.summary()
        return out
