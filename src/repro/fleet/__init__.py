"""Enclave fleet: N workers behind a balancer, supervised crash-restart.

The paper's availability argument (§6.4) is about one enclave: fail-stop
turns every detected violation into a dead server, so tolerant policies
(drop-request, boundless) keep the service up.  Production shielded
services run *fleets*, where the real cost of fail-stop is the enclave
cold start — rebuild, re-attestation, and re-warming the working set into
a cold EPC — charged on every crash while the balancer routes around the
hole.  This package simulates that layer end to end:

* :mod:`repro.fleet.worker` — one enclave incarnation serving requests
  depth-1 through a blocking ``net_recv``;
* :mod:`repro.fleet.supervisor` — the failure lifecycle (starting →
  healthy → degraded → crashed → restarting → dead), restart cost on the
  simulated clock via :class:`repro.sgx.ColdStartModel`, watchdog budgets
  and crash-loop detection;
* :mod:`repro.fleet.balancer` — deterministic dispatch (round-robin /
  least-outstanding), per-worker circuit breakers, bounded retries and
  hedged re-dispatch of stranded requests;
* :mod:`repro.fleet.slo` — availability + latency percentiles from
  deterministic histograms;
* :mod:`repro.fleet.campaign` — seeded fault scenarios (poison storms,
  EPC-thrash noisy neighbours, watchdog hangs) scripted into one
  reproducible run.

Campaigns can additionally run with stateful recovery
(:mod:`repro.recovery`): sealed checkpoints, write-ahead replay of
acknowledged mutations, and replica failover — see
:class:`repro.fleet.campaign.CampaignConfig.recovery` — and with
overload protection (:mod:`repro.overload`): deadline-aware admission
at the ingress queues, brownout priority shedding, and budgeted client
retries — see :class:`repro.fleet.campaign.CampaignConfig.overload`.
"""

from repro.fleet.balancer import Balancer, CircuitBreaker, Request
from repro.fleet.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.fleet.slo import SLOTracker
from repro.fleet.supervisor import (
    CRASHED,
    DEAD,
    DEGRADED,
    HEALTHY,
    RESTARTING,
    STARTING,
    Supervisor,
)
from repro.fleet.worker import EnclaveWorker, TickReport

__all__ = [
    "Balancer",
    "CircuitBreaker",
    "Request",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "SLOTracker",
    "Supervisor",
    "STARTING",
    "HEALTHY",
    "DEGRADED",
    "CRASHED",
    "RESTARTING",
    "DEAD",
    "EnclaveWorker",
    "TickReport",
]
