"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig1 fig7 tab4
    python -m repro fig7 --size S
    python -m repro all
    python -m repro profile fig07 --size XS --trace-out trace.json \\
        --metrics-out metrics.json

Any experiment accepts ``--trace-out``/``--metrics-out``: the run then
executes with telemetry attached and exports a Chrome-loadable trace and
a metrics-registry snapshot.  ``--log-out`` does the same with a
forensics flight recorder (structured event log, JSONL or text by file
extension).  ``profile`` additionally computes the per-function
scheme-vs-native overhead attribution (the paper's Table-3
decomposition) and, with ``--results-out``, drops a machine-readable
result into ``benchmarks/results/``.  ``postmortem <app>`` runs a seeded
fleet chaos campaign with forensics attached and prints the first crash
postmortem (decoded faulting pointer, MiniC stack, correlated events).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as exp

EXPERIMENTS = {
    "tab1": lambda args: exp.tab1_defenses(),
    "fig1": lambda args: exp.fig1_sqlite(),
    "fig7": lambda args: exp.fig7_phoenix_parsec(size=args.size),
    "fig8": lambda args: exp.fig8_working_set(),
    "fig9": lambda args: exp.fig9_multithreading(size=args.size),
    "fig10": lambda args: exp.fig10_optimizations(size=args.size),
    "tab4": lambda args: exp.tab4_ripe(),
    "fig11": lambda args: exp.fig11_spec_sgx(size=args.size),
    "fig12": lambda args: exp.fig12_spec_native(size=args.size),
    "fig13": lambda args: exp.fig13_case_studies(),
    "chaos": lambda args: _chaos(args),
    "fleet": lambda args: _fleet(args),
    "recover": lambda args: _recover(args),
    "redteam": lambda args: _redteam(args),
    "overload": lambda args: _overload(args),
    "observe": lambda args: _observe(args),
}

#: Experiments whose stdout must be byte-identical across runs (CI diffs
#: them); their wall-clock timing line goes to stderr instead.
_STDERR_TIMING = {"fleet", "recover", "redteam", "overload", "observe"}


def _postmortem(args) -> int:
    """``python -m repro postmortem <app>`` — seeded crash forensics.

    Runs one fleet chaos campaign (abort policy by default, so faults
    crash workers) with a flight recorder attached and prints the first
    captured postmortem.  Stdout is byte-identical per seed; the timing
    line goes to stderr so CI can diff two runs.
    """
    from repro import forensics as forensics_mod
    from repro.fleet.campaign import CampaignConfig, run_campaign
    from repro.telemetry import results as results_mod

    targets = args.experiments[1:] or ["memcached"]
    for target in targets:
        started = time.time()
        forensics = forensics_mod.Forensics()
        config = CampaignConfig(
            app=target, scheme="sgxbounds", policy=args.policy or "abort",
            workers=args.workers, fault_rate=args.fault_rate,
            seed=args.seed, size=args.size, balance=args.balance)
        try:
            result = run_campaign(config, forensics=forensics)
        except ValueError as err:
            print(f"postmortem: {err}", file=sys.stderr)
            return 2
        summary = forensics.summary()
        slo = result.slo
        print(f"== postmortem {target} (scheme={config.scheme} "
              f"policy={config.policy} seed={config.seed} "
              f"fault_rate={config.fault_rate}) ==")
        print(f"campaign: ticks={result.ticks} crashes={result.crashes} "
              f"watchdog_kills={result.watchdog_kills} "
              f"submitted={slo['submitted']} served={slo['served']} "
              f"failed={slo['failed']}")
        print(f"flight recorder: {summary['events_recorded']} events "
              f"({summary['events_retained']} retained, "
              f"{summary['events_dropped']} dropped)")
        alerts = summary["alerts"]
        by_detector = " ".join(
            f"{name}={count}"
            for name, count in sorted(alerts["by_detector"].items()))
        print(f"alerts: total={alerts['total']}"
              + (f" {by_detector}" if by_detector else ""))
        print(f"postmortems: {summary['postmortems']} captured, "
              f"{summary['postmortems_dropped']} dropped")
        if forensics.postmortems:
            print()
            print(forensics_mod.render_postmortem(forensics.postmortems[0]))
        if args.results_out:
            document = results_mod.result_document(
                f"postmortem_{target}",
                {"campaign": result.as_dict(),
                 "postmortems": forensics.postmortems})
            results_mod.write_json(args.results_out, document)
            print(f"[results -> {args.results_out}]")
        if args.log_out:
            forensics.write_log(args.log_out)
            print(f"[log -> {args.log_out}]")
        print(f"[postmortem {target}: {time.time() - started:.1f}s]",
              file=sys.stderr)
    return 0


def _chaos(args):
    from repro.harness.chaos import chaos_availability
    policies = ([args.policy] if args.policy
                else ["abort", "drop-request", "boundless"])
    return chaos_availability(policies=policies,
                              fault_rates=(0.0, args.fault_rate),
                              size=args.size, seed=args.seed)


def _fleet(args):
    policies = ([args.policy] if args.policy
                else ["abort", "drop-request", "boundless"])
    return exp.fleet_availability(app=args.app, workers=args.workers,
                                  fault_rate=args.fault_rate,
                                  seed=args.seed, size=args.size,
                                  policies=policies,
                                  rewarm_scales=args.rewarm_scales,
                                  balance=args.balance)


def _recover(args):
    """Stateful-recovery sweep.  Campaign shape (workers, fault rate,
    seed, write mix) is fixed by the experiment so deaths — and thus
    replica failover — deterministically occur; only the policy set and
    size are taken from the command line, keeping stdout diffable."""
    policies = ([args.policy] if args.policy
                else ["abort", "drop-request", "boundless"])
    data, text = exp.recovery_rpo(policies=policies, size=args.size)
    if args.results_out:
        from repro.telemetry import results as results_mod
        cells = {"/".join(map(str, key)): value
                 for key, value in data.items()}
        document = results_mod.result_document("recovery_rpo",
                                               {"cells": cells})
        results_mod.write_json(args.results_out, document)
        print(f"[results -> {args.results_out}]", file=sys.stderr)
    return data, text


def _redteam(args):
    """Attack-synthesis triage sweep + detection matrix (ISSUE 7).

    Stdout is byte-identical per seed (CI diffs two runs); with
    ``--results-out`` the versioned matrix artifact is written too."""
    from repro.redteam import matrix_document, run_matrix
    data, text = run_matrix(seed=args.seed)
    if args.results_out:
        from repro.telemetry import results as results_mod
        results_mod.write_json(args.results_out, matrix_document(data))
        print(f"[results -> {args.results_out}]", file=sys.stderr)
    return data, text


def _overload(args):
    """Overload-protection sweep (ISSUE 8): congestion collapse vs
    admission control + retry budgets + brownout shedding.

    Campaign shape (workers, fault rate, rates, deadline) is fixed by
    the experiment so saturation deterministically occurs; only size and
    seed come from the command line, keeping stdout diffable per seed."""
    data, text = exp.overload_goodput(size=args.size, seed=args.seed)
    if args.results_out:
        from repro.telemetry import results as results_mod
        cells = {"/".join(map(str, key)): value
                 for key, value in data.items()}
        document = results_mod.result_document("overload_goodput",
                                               {"cells": cells})
        results_mod.write_json(args.results_out, document)
        print(f"[results -> {args.results_out}]", file=sys.stderr)
    return data, text


def _observe(args):
    """Request observatory dashboard (ISSUE 9): causal traces,
    critical-path attribution, burn-rate alerts, unified export.

    Campaign shapes (healthy attribution fleet + the collapsing overload
    cell) are fixed by the driver so stdout is byte-identical per seed;
    app, workers, seed and size come from the command line.  Artifacts:
    ``--metrics-text-out`` writes the merged Prometheus exposition,
    ``--trace-out`` the exemplar campaign's Chrome trace, and
    ``--results-out`` the versioned machine-readable dashboard."""
    from repro.obs.dashboard import observe_fleet

    telemetry = None
    if args.metrics_text_out:
        from repro import telemetry as telemetry_mod
        telemetry = telemetry_mod.Telemetry()
    data, text = observe_fleet(app=args.app, workers=args.workers,
                               seed=args.seed, size=args.size,
                               telemetry=telemetry)
    if args.metrics_text_out:
        with open(args.metrics_text_out, "w") as handle:
            handle.write(data["exposition"])
        print(f"[metrics-text -> {args.metrics_text_out}]",
              file=sys.stderr)
    if args.trace_out:
        from repro import telemetry as telemetry_mod
        if telemetry_mod.get_default() is None:
            # Standalone observe: --trace-out means the fleet tracer's
            # causal hop trees (a global telemetry run owns it otherwise).
            from repro.telemetry import results as results_mod
            results_mod.write_json(args.trace_out, data["chrome_trace"])
            print(f"[trace -> {args.trace_out}]", file=sys.stderr)
    if args.results_out:
        from repro.telemetry import results as results_mod
        payload = {
            "app": data["app"], "size": data["size"],
            "seed": data["seed"], "workers": data["workers"],
            "schemes": data["schemes"], "exemplars": data["exemplars"],
            "alerts": data["alerts"],
        }
        document = results_mod.result_document("observe_dashboard",
                                               payload)
        results_mod.write_json(args.results_out, document)
        print(f"[results -> {args.results_out}]", file=sys.stderr)
    return data, text


def _profile(args) -> int:
    """``python -m repro profile <target>...`` — overhead attribution."""
    from repro.harness.profile import profile_experiment
    from repro.telemetry import results as results_mod

    targets = args.experiments[1:]
    if not targets:
        print("profile: expected at least one experiment id or workload "
              "name (e.g. 'python -m repro profile fig07')",
              file=sys.stderr)
        return 2
    for target in targets:
        started = time.time()
        try:
            data, text = profile_experiment(target, size=args.size)
        except KeyError as err:
            print(f"profile: {err.args[0]}", file=sys.stderr)
            return 2
        print(text)
        if args.trace_out:
            results_mod.write_json(args.trace_out, data["trace"])
            print(f"[trace -> {args.trace_out}]")
        if args.metrics_out:
            results_mod.write_json(
                args.metrics_out,
                results_mod.to_jsonable(
                    {key: data[key] for key in
                     ("experiment", "size", "schemes", "baseline",
                      "metrics")}))
            print(f"[metrics -> {args.metrics_out}]")
        if args.results_out:
            document = results_mod.result_document(
                f"profile_{data['experiment']}_{data['size']}",
                {key: data[key] for key in
                 ("experiment", "size", "schemes", "baseline", "metrics")})
            results_mod.write_json(args.results_out, document)
            print(f"[results -> {args.results_out}]")
        print(f"[profile {target}: {time.time() - started:.1f}s]\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SGXBounds paper's tables and figures "
                    "on the simulated SGX substrate.")
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (see 'list'), 'all', or "
                             "'profile <id>' for overhead attribution")
    parser.add_argument("--size", default="XS",
                        help="workload size for sweeps (XS/S/M/L/XL)")
    parser.add_argument("--policy", default=None,
                        help="violation policy for the chaos experiment "
                             "(abort/boundless/log-and-continue/"
                             "drop-request; default: compare all)")
    parser.add_argument("--fault-rate", type=float, default=0.2,
                        help="request corruption probability for chaos")
    parser.add_argument("--seed", type=int, default=1234,
                        help="chaos run seed (fuzzer/scheduler/clients)")
    parser.add_argument("--app", default="memcached",
                        help="fleet: server app (memcached/nginx/apache)")
    parser.add_argument("--workers", type=int, default=4,
                        help="fleet: number of enclave workers")
    parser.add_argument("--balance", default="round-robin",
                        help="fleet: dispatch policy (round-robin/"
                             "least-outstanding)")
    parser.add_argument("--rewarm-scales", type=float, nargs="+",
                        default=(1.0, 8.0), metavar="SCALE",
                        help="fleet: EPC re-warm multipliers to sweep "
                             "(restart cost knob)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export a Chrome trace_event JSON of the run")
    parser.add_argument("--metrics-text-out", default=None, metavar="PATH",
                        help="observe: write the merged Prometheus-style "
                             "text exposition snapshot")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="export the metrics-registry snapshot (for "
                             "'profile': the full attribution) as JSON")
    parser.add_argument("--results-out", default=None, metavar="PATH",
                        help="profile/postmortem: also write the versioned "
                             "result document (benchmarks/results/*.json)")
    parser.add_argument("--log-out", default=None, metavar="PATH",
                        help="attach a forensics flight recorder and export "
                             "the event log (.jsonl = JSONL, else text)")
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  profile <experiment|workload>")
        print("  postmortem <app>")
        return 0

    if args.experiments[0] == "profile":
        return _profile(args)

    if args.experiments[0] == "postmortem":
        return _postmortem(args)

    wanted = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments

    telemetry = None
    if (args.trace_out or args.metrics_out) and wanted != ["observe"]:
        # observe exports its own FleetTracer trace; when it runs alone,
        # --trace-out means that trace, not a global telemetry one.
        from repro import telemetry as telemetry_mod
        telemetry = telemetry_mod.Telemetry()
        telemetry_mod.set_default(telemetry)

    forensics = None
    if args.log_out:
        from repro import forensics as forensics_mod
        forensics = forensics_mod.Forensics()
        forensics_mod.set_default(forensics)
    for name in wanted:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        started = time.time()
        _, text = runner(args)
        print(text)
        timing = f"[{name}: {time.time() - started:.1f}s]\n"
        if name in _STDERR_TIMING:
            print(timing, file=sys.stderr)
        else:
            print(timing)

    if telemetry is not None:
        from repro.telemetry import results as results_mod
        from repro import telemetry as telemetry_mod
        telemetry_mod.set_default(None)
        if args.trace_out:
            results_mod.write_json(args.trace_out, telemetry.chrome_trace())
            print(f"[trace -> {args.trace_out}]")
        if args.metrics_out:
            results_mod.write_json(args.metrics_out,
                                   telemetry.metrics_snapshot())
            print(f"[metrics -> {args.metrics_out}]")
    if forensics is not None:
        from repro import forensics as forensics_mod
        forensics_mod.set_default(None)
        forensics.write_log(args.log_out)
        print(f"[log -> {args.log_out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
