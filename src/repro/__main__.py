"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig1 fig7 tab4
    python -m repro fig7 --size S
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as exp

EXPERIMENTS = {
    "tab1": lambda args: exp.tab1_defenses(),
    "fig1": lambda args: exp.fig1_sqlite(),
    "fig7": lambda args: exp.fig7_phoenix_parsec(size=args.size),
    "fig8": lambda args: exp.fig8_working_set(),
    "fig9": lambda args: exp.fig9_multithreading(size=args.size),
    "fig10": lambda args: exp.fig10_optimizations(size=args.size),
    "tab4": lambda args: exp.tab4_ripe(),
    "fig11": lambda args: exp.fig11_spec_sgx(size=args.size),
    "fig12": lambda args: exp.fig12_spec_native(size=args.size),
    "fig13": lambda args: exp.fig13_case_studies(),
    "chaos": lambda args: _chaos(args),
}


def _chaos(args):
    from repro.harness.chaos import chaos_availability
    policies = ([args.policy] if args.policy
                else ["abort", "drop-request", "boundless"])
    return chaos_availability(policies=policies,
                              fault_rates=(0.0, args.fault_rate),
                              size=args.size, seed=args.seed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SGXBounds paper's tables and figures "
                    "on the simulated SGX substrate.")
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (see 'list'), or 'all'")
    parser.add_argument("--size", default="XS",
                        help="workload size for sweeps (XS/S/M/L/XL)")
    parser.add_argument("--policy", default=None,
                        help="violation policy for the chaos experiment "
                             "(abort/boundless/log-and-continue/"
                             "drop-request; default: compare all)")
    parser.add_argument("--fault-rate", type=float, default=0.2,
                        help="request corruption probability for chaos")
    parser.add_argument("--seed", type=int, default=1234,
                        help="chaos run seed (fuzzer/scheduler/clients)")
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    wanted = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    for name in wanted:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        started = time.time()
        _, text = runner(args)
        print(text)
        print(f"[{name}: {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
