"""Convenience builder for emitting IR.

Operands are *encodings* (see ``repro.ir.instructions``): use :meth:`k` to
intern a constant, :meth:`gref`/:meth:`fref` for global/function addresses;
plain non-negative ints are register indices (as returned by every
value-producing method).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir import instructions as ops
from repro.ir.instructions import FuncRef, GlobalRef, Instr
from repro.ir.module import Block, Function

Operand = int


class IRBuilder:
    """Appends instructions to a current block of one function."""

    def __init__(self, fn: Function, block: Optional[Block] = None):
        self.fn = fn
        self.blk = block
        #: Current source line; codegen updates it at statement boundaries
        #: and :meth:`emit` stamps it into every instruction (0 = unknown).
        self.line = 0

    # -- block management -------------------------------------------------
    def new_block(self, name: str) -> Block:
        return self.fn.block(name)

    def set_block(self, block: Union[Block, str]) -> Block:
        if isinstance(block, str):
            block = self.fn.get_block(block)
        self.blk = block
        return block

    def emit(self, ins: Instr) -> Instr:
        if ins.line == 0:
            ins.line = self.line
        self.blk.instrs.append(ins)
        return ins

    # -- operands ---------------------------------------------------------
    def k(self, value: object) -> Operand:
        """Intern a constant (int, float, GlobalRef, FuncRef)."""
        return self.fn.intern_const(value)

    def gref(self, name: str) -> Operand:
        """Address of global ``name`` (resolved at load time)."""
        return self.fn.intern_const(GlobalRef(name))

    def fref(self, name: str) -> Operand:
        """Code address of function ``name`` (resolved at load time)."""
        return self.fn.intern_const(FuncRef(name))

    def reg(self, hint: str = "t") -> int:
        return self.fn.new_reg(hint)

    # -- moves / arithmetic -------------------------------------------------
    def mov(self, value: Operand, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.MOV, dest=dest, a=value))
        return dest

    def binop(self, op: int, a: Operand, b: Operand,
              dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(op, dest=dest, a=a, b=b))
        return dest

    def add(self, a, b, dest=None):
        return self.binop(ops.ADD, a, b, dest)

    def sub(self, a, b, dest=None):
        return self.binop(ops.SUB, a, b, dest)

    def mul(self, a, b, dest=None):
        return self.binop(ops.MUL, a, b, dest)

    def and_(self, a, b, dest=None):
        return self.binop(ops.AND, a, b, dest)

    def or_(self, a, b, dest=None):
        return self.binop(ops.OR, a, b, dest)

    def shl(self, a, b, dest=None):
        return self.binop(ops.SHL, a, b, dest)

    def lshr(self, a, b, dest=None):
        return self.binop(ops.LSHR, a, b, dest)

    def cmp(self, op: int, a: Operand, b: Operand,
            dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(op, dest=dest, a=a, b=b))
        return dest

    def select(self, cond: Operand, a: Operand, b: Operand,
               dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.SELECT, dest=dest, a=cond, b=a, c=b))
        return dest

    # -- memory -------------------------------------------------------------
    def load(self, ptr: Operand, size: int = 8, signed: bool = False,
             is_float: bool = False, is_pointer: bool = False,
             dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.LOAD, dest=dest, a=ptr, size=size, signed=signed,
                        is_float=is_float, is_pointer=is_pointer))
        return dest

    def store(self, value: Operand, ptr: Operand, size: int = 8,
              is_float: bool = False, is_pointer: bool = False) -> Instr:
        return self.emit(Instr(ops.STORE, a=ptr, b=value, size=size,
                               is_float=is_float, is_pointer=is_pointer))

    def gep(self, base: Operand, index: Optional[Operand] = None,
            scale: int = 1, offset: int = 0,
            dest: Optional[int] = None) -> int:
        """dest = base + index*scale + offset (byte addressing)."""
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.GEP, dest=dest, a=base, b=index, c=offset,
                        size=scale, is_pointer=True))
        return dest

    def alloca(self, size: int, align: int = 8,
               dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.ALLOCA, dest=dest, size=size, b=align))
        return dest

    # -- casts ----------------------------------------------------------------
    def trunc(self, value: Operand, size: int, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.TRUNC, dest=dest, a=value, size=size))
        return dest

    def sext(self, value: Operand, from_size: int,
             dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.SEXT, dest=dest, a=value, size=from_size))
        return dest

    def sitofp(self, value: Operand, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.SITOFP, dest=dest, a=value))
        return dest

    def fptosi(self, value: Operand, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.FPTOSI, dest=dest, a=value))
        return dest

    # -- control flow -----------------------------------------------------
    def call(self, callee: Union[str, Operand], args: Sequence[Operand] = (),
             want_result: bool = True, dest: Optional[int] = None) -> Optional[int]:
        """Direct call when ``callee`` is a name, indirect when an operand."""
        if want_result and dest is None:
            dest = self.fn.new_reg()
        if isinstance(callee, str):
            self.emit(Instr(ops.CALL, dest=dest, name=callee, args=args))
        else:
            self.emit(Instr(ops.CALL, dest=dest, a=callee, args=args))
        return dest

    def ret(self, value: Optional[Operand] = None) -> Instr:
        return self.emit(Instr(ops.RET, a=value))

    def br(self, cond: Operand, if_true: str, if_false: str) -> Instr:
        return self.emit(Instr(ops.BR, a=cond, t1=if_true, t2=if_false))

    def jmp(self, target: str) -> Instr:
        return self.emit(Instr(ops.JMP, t1=target))

    def trap(self, message: str = "trap") -> Instr:
        return self.emit(Instr(ops.TRAP, name=message))

    # -- atomics ------------------------------------------------------------
    def atomicrmw(self, kind: str, ptr: Operand, value: Operand,
                  size: int = 8, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.ATOMICRMW, dest=dest, a=ptr, b=value, size=size,
                        name=kind))
        return dest

    def cmpxchg(self, ptr: Operand, expected: Operand, desired: Operand,
                size: int = 8, dest: Optional[int] = None) -> int:
        dest = self.fn.new_reg() if dest is None else dest
        self.emit(Instr(ops.CMPXCHG, dest=dest, a=ptr, b=expected, c=desired,
                        size=size))
        return dest

    # -- MPX ----------------------------------------------------------------
    def bndmk(self, key_reg: int, base: Operand, size: Operand) -> Instr:
        return self.emit(Instr(ops.BNDMK, dest=key_reg, a=base, b=size))

    def bndcl(self, key_reg: int, ptr: Operand) -> Instr:
        return self.emit(Instr(ops.BNDCL, dest=key_reg, a=ptr))

    def bndcu(self, key_reg: int, ptr: Operand, size: int = 1) -> Instr:
        return self.emit(Instr(ops.BNDCU, dest=key_reg, a=ptr, size=size))

    def bndldx(self, key_reg: int, slot: Operand) -> Instr:
        return self.emit(Instr(ops.BNDLDX, dest=key_reg, a=slot))

    def bndstx(self, key_reg: int, slot: Operand) -> Instr:
        return self.emit(Instr(ops.BNDSTX, dest=key_reg, a=slot))
