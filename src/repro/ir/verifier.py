"""Structural IR verifier.

Run after building or transforming a module: catches dangling registers,
malformed blocks, bad branch targets and ill-formed instructions before the
interpreter turns them into confusing runtime faults.
"""

from __future__ import annotations

from typing import List

from repro.errors import IRVerifyError
from repro.ir import instructions as ops
from repro.ir.instructions import Instr, is_reg, slot_of
from repro.ir.module import Function, Module

_NEEDS_DEST = (
    ops.INT_BINOPS | ops.FLOAT_BINOPS | ops.INT_CMPS | ops.FLOAT_CMPS
    | {ops.MOV, ops.LOAD, ops.GEP, ops.ALLOCA, ops.SELECT, ops.TRUNC,
       ops.SEXT, ops.SITOFP, ops.FPTOSI, ops.ATOMICRMW, ops.CMPXCHG,
       ops.FNEG}
)


def _check_operand(fn: Function, ins: Instr, operand: int, errors: List[str]) -> None:
    if is_reg(operand):
        if operand >= fn.nregs:
            errors.append(
                f"{fn.name}: register r{operand} out of range in "
                f"{ops.OP_NAMES.get(ins.op)}")
    else:
        slot = slot_of(operand)
        if slot >= len(fn.consts):
            errors.append(f"{fn.name}: constant slot {slot} out of range")


def verify_function(fn: Function, module: Module, errors: List[str]) -> None:
    if not fn.blocks:
        errors.append(f"{fn.name}: function has no blocks")
        return
    block_names = {blk.name for blk in fn.blocks}
    if len(block_names) != len(fn.blocks):
        errors.append(f"{fn.name}: duplicate block names")
    for blk in fn.blocks:
        if not blk.instrs:
            errors.append(f"{fn.name}/{blk.name}: empty block")
            continue
        for pos, ins in enumerate(blk.instrs):
            terminal = ins.is_terminator()
            if terminal and pos != len(blk.instrs) - 1:
                errors.append(
                    f"{fn.name}/{blk.name}: terminator mid-block at {pos}")
            if ins.op in _NEEDS_DEST and ins.dest is None:
                errors.append(
                    f"{fn.name}/{blk.name}: {ops.OP_NAMES.get(ins.op)} "
                    f"lacks a destination")
            if ins.dest is not None and ins.dest >= fn.nregs:
                errors.append(
                    f"{fn.name}/{blk.name}: dest r{ins.dest} out of range")
            for operand in ins.operands():
                _check_operand(fn, ins, operand, errors)
            if ins.op == ops.BR:
                for target in (ins.t1, ins.t2):
                    if isinstance(target, str) and target not in block_names:
                        errors.append(
                            f"{fn.name}/{blk.name}: branch to unknown "
                            f"block {target!r}")
            elif ins.op == ops.JMP:
                if isinstance(ins.t1, str) and ins.t1 not in block_names:
                    errors.append(
                        f"{fn.name}/{blk.name}: jump to unknown "
                        f"block {ins.t1!r}")
            elif ins.op == ops.CALL:
                if ins.name is None and ins.a is None:
                    errors.append(
                        f"{fn.name}/{blk.name}: call with neither name "
                        f"nor callee operand")
            elif ins.op == ops.ALLOCA:
                if ins.size <= 0:
                    errors.append(
                        f"{fn.name}/{blk.name}: alloca of {ins.size} bytes")
            elif ins.op in (ops.LOAD, ops.STORE, ops.ATOMICRMW, ops.CMPXCHG):
                if ins.size not in (1, 2, 4, 8):
                    errors.append(
                        f"{fn.name}/{blk.name}: bad access size {ins.size}")
        if blk.terminator() is None:
            errors.append(f"{fn.name}/{blk.name}: block lacks a terminator")


def verify_module(module: Module) -> None:
    """Raise :class:`IRVerifyError` listing every problem found."""
    errors: List[str] = []
    for fn in module.functions.values():
        verify_function(fn, module, errors)
    for fn in module.functions.values():
        for blk in fn.blocks:
            for ins in blk.instrs:
                for operand in ins.operands():
                    if not is_reg(operand):
                        value = fn.consts[slot_of(operand)]
                        if isinstance(value, ops.GlobalRef) \
                                and value.name not in module.globals:
                            errors.append(
                                f"{fn.name}: reference to unknown global "
                                f"@{value.name}")
                        elif isinstance(value, ops.FuncRef) \
                                and value.name not in module.functions:
                            errors.append(
                                f"{fn.name}: reference to unknown function "
                                f"&{value.name}")
    if errors:
        raise IRVerifyError("; ".join(errors[:20]) +
                            (f" (+{len(errors) - 20} more)" if len(errors) > 20 else ""))
