"""Instruction set of the reproduction's IR.

The IR is a register machine with function-local mutable registers (no SSA
phis — instrumentation passes and the interpreter both get simpler, and
nothing in the paper depends on SSA form).  Design points that matter for
the reproduction:

* ``GEP`` is pointer arithmetic, kept distinct from ``ADD`` so the
  SGXBounds pass can *clamp* it to the low 32 bits (paper §3.2 "Pointer
  arithmetic") and the optimizer can reason about strides.
* ``BND*`` instructions model Intel MPX: bounds are associated with a
  *register* (the compiler-chosen bounds register), and ``BNDLDX``/
  ``BNDSTX`` translate through an in-memory Bounds Directory/Bounds Table —
  the traffic that melts MPX inside enclaves.
* Loads and stores carry an ``is_pointer`` flag so the MPX pass knows where
  bounds must travel through memory (§2.2, Fig. 4c lines 11/15).

Operand encoding: a non-negative ``int`` is a register index; a negative
``int`` ``-k-1`` indexes slot ``k`` of the function's constant pool.  The
pool may contain plain numbers, :class:`GlobalRef` or :class:`FuncRef`
placeholders that the loader resolves to addresses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

# --- opcodes ----------------------------------------------------------------
(
    NOP, MOV, ADD, SUB, MUL, SDIV, UDIV, SREM, UREM,
    AND, OR, XOR, SHL, LSHR, ASHR,
    FADD, FSUB, FMUL, FDIV, FNEG,
    EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE,
    FEQ, FNE, FLT, FLE, FGT, FGE,
    LOAD, STORE, GEP, ALLOCA, SELECT,
    TRUNC, SEXT, SITOFP, FPTOSI,
    CALL, RET, BR, JMP, TRAP,
    ATOMICRMW, CMPXCHG,
    BNDMK, BNDCL, BNDCU, BNDLDX, BNDSTX,
) = range(57)

OP_NAMES = {
    NOP: "nop", MOV: "mov", ADD: "add", SUB: "sub", MUL: "mul",
    SDIV: "sdiv", UDIV: "udiv", SREM: "srem", UREM: "urem",
    AND: "and", OR: "or", XOR: "xor", SHL: "shl", LSHR: "lshr", ASHR: "ashr",
    FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
    EQ: "eq", NE: "ne", SLT: "slt", SLE: "sle", SGT: "sgt", SGE: "sge",
    ULT: "ult", ULE: "ule", UGT: "ugt", UGE: "uge",
    FEQ: "feq", FNE: "fne", FLT: "flt", FLE: "fle", FGT: "fgt", FGE: "fge",
    LOAD: "load", STORE: "store", GEP: "gep", ALLOCA: "alloca",
    SELECT: "select", TRUNC: "trunc", SEXT: "sext",
    SITOFP: "sitofp", FPTOSI: "fptosi",
    CALL: "call", RET: "ret", BR: "br", JMP: "jmp", TRAP: "trap",
    ATOMICRMW: "atomicrmw", CMPXCHG: "cmpxchg",
    BNDMK: "bndmk", BNDCL: "bndcl", BNDCU: "bndcu",
    BNDLDX: "bndldx", BNDSTX: "bndstx",
}

#: Binary integer ops (dest = a op b).
INT_BINOPS = frozenset({ADD, SUB, MUL, SDIV, UDIV, SREM, UREM,
                        AND, OR, XOR, SHL, LSHR, ASHR})
FLOAT_BINOPS = frozenset({FADD, FSUB, FMUL, FDIV})
INT_CMPS = frozenset({EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE})
FLOAT_CMPS = frozenset({FEQ, FNE, FLT, FLE, FGT, FGE})
#: All comparisons — the predecoder's CMP+BR superinstruction heads.
CMP_OPS = INT_CMPS | FLOAT_CMPS
TERMINATORS = frozenset({RET, BR, JMP, TRAP})


class GlobalRef:
    """Constant-pool placeholder for the address of a global variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"@{self.name}"

    def __eq__(self, other) -> bool:
        return isinstance(other, GlobalRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("global", self.name))


class FuncRef:
    """Constant-pool placeholder for a function's code address."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"&{self.name}"

    def __eq__(self, other) -> bool:
        return isinstance(other, FuncRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("func", self.name))


class Instr:
    """One IR instruction.

    Field meanings vary by opcode (documented per-opcode in the VM); all
    operand fields (``a``, ``b``, ``c``, elements of ``args``) use the
    register/constant-pool encoding described in the module docstring.

    ``is_pointer`` marks loads/stores that move pointer values, and marks
    GEPs whose result is a pointer the MPX pass must track.  ``clamp``
    on a GEP requests 32-bit-only arithmetic (SGXBounds).  ``safe`` is set
    by the safe-access analysis to suppress instrumentation.  ``line`` is
    the MiniC source line the instruction was generated from (0 when
    unknown — e.g. pass-inserted instrumentation); the forensics stack
    capture maps a frame's pc to the nearest preceding stamped line.
    """

    __slots__ = ("op", "dest", "a", "b", "c", "size", "signed", "is_float",
                 "is_pointer", "clamp", "safe", "name", "args", "t1", "t2",
                 "comment", "line")

    def __init__(self, op: int, dest: Optional[int] = None,
                 a: Optional[int] = None, b: Optional[int] = None,
                 c: Optional[int] = None, size: int = 8,
                 signed: bool = False, is_float: bool = False,
                 is_pointer: bool = False, clamp: bool = False,
                 safe: bool = False, name: Optional[str] = None,
                 args: Sequence[int] = (), t1: Optional[object] = None,
                 t2: Optional[object] = None, comment: str = "",
                 line: int = 0):
        self.op = op
        self.dest = dest
        self.a = a
        self.b = b
        self.c = c
        self.size = size
        self.signed = signed
        self.is_float = is_float
        self.is_pointer = is_pointer
        self.clamp = clamp
        self.safe = safe
        self.name = name
        self.args = tuple(args)
        self.t1 = t1   # branch target: block name pre-finalize, index after
        self.t2 = t2
        self.comment = comment
        self.line = line

    def copy(self) -> "Instr":
        """Shallow copy (used by passes cloning functions)."""
        return Instr(self.op, self.dest, self.a, self.b, self.c, self.size,
                     self.signed, self.is_float, self.is_pointer, self.clamp,
                     self.safe, self.name, self.args, self.t1, self.t2,
                     self.comment, self.line)

    def operands(self) -> List[int]:
        """All operand encodings this instruction reads.

        GEP's ``c`` is a literal byte offset and ALLOCA's ``b``/``c`` are a
        literal alignment/frame offset — not operands.
        """
        if self.op == ALLOCA:
            return []
        if self.op == GEP:
            out = [self.a] if self.a is not None else []
            if self.b is not None:
                out.append(self.b)
        elif self.op in (BNDCL, BNDCU):
            # ``c`` carries the spill-cost annotation, not an operand.
            out = [self.a] if self.a is not None else []
        else:
            out = [x for x in (self.a, self.b, self.c) if x is not None]
        out.extend(self.args)
        return out

    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def __repr__(self) -> str:
        return f"<{OP_NAMES.get(self.op, self.op)} dest={self.dest}>"


def const_slot(index: int) -> int:
    """Encode constant-pool slot ``index`` as an operand."""
    return -index - 1


def slot_of(operand: int) -> int:
    """Decode a (negative) constant operand back to its pool index."""
    return -operand - 1


def is_reg(operand: int) -> bool:
    """Whether an operand encoding denotes a register."""
    return operand >= 0


Targets = Tuple[Optional[object], Optional[object]]
