"""Textual IR dump — the reproduction's analogue of ``llvm-dis``.

Used by tests and by ``examples/instrumentation_tour.py`` to show the
paper's Figure 4 side by side: the same kernel before and after each
scheme's instrumentation pass.
"""

from __future__ import annotations

from typing import List

from repro.ir import instructions as ops
from repro.ir.instructions import Instr, is_reg, slot_of
from repro.ir.module import Function, Module


def _operand_str(fn: Function, operand) -> str:
    if operand is None:
        return "_"
    if is_reg(operand):
        return f"%r{operand}"
    value = fn.consts[slot_of(operand)]
    if isinstance(value, float):
        return f"{value!r}"
    if isinstance(value, int):
        return f"{value}" if -4096 < value < 4096 else f"0x{value & (2**64-1):x}"
    return repr(value)


def format_instr(fn: Function, ins: Instr) -> str:
    name = ops.OP_NAMES.get(ins.op, f"op{ins.op}")
    parts: List[str] = []
    if ins.dest is not None:
        parts.append(f"%r{ins.dest} =")
    parts.append(name)
    if ins.op == ops.CALL:
        callee = ins.name if ins.name else _operand_str(fn, ins.a)
        args = ", ".join(_operand_str(fn, a) for a in ins.args)
        parts.append(f"{callee}({args})")
    elif ins.op in (ops.BR,):
        parts.append(f"{_operand_str(fn, ins.a)}, {ins.t1}, {ins.t2}")
    elif ins.op == ops.JMP:
        parts.append(f"{ins.t1}")
    elif ins.op == ops.LOAD:
        kind = "f64" if ins.is_float else f"{'i' if ins.signed else 'u'}{ins.size * 8}"
        ptr = " ptr" if ins.is_pointer else ""
        parts.append(f"{kind} [{_operand_str(fn, ins.a)}]{ptr}")
    elif ins.op == ops.STORE:
        kind = "f64" if ins.is_float else f"u{ins.size * 8}"
        ptr = " ptr" if ins.is_pointer else ""
        parts.append(
            f"{kind} {_operand_str(fn, ins.b)} -> [{_operand_str(fn, ins.a)}]{ptr}")
    elif ins.op == ops.GEP:
        text = _operand_str(fn, ins.a)
        if ins.b is not None:
            text += f" + {_operand_str(fn, ins.b)}*{ins.size}"
        if ins.c:
            text += f" + {ins.c}"
        if ins.clamp:
            text += "  (clamp32)"
        parts.append(text)
    elif ins.op == ops.ALLOCA:
        parts.append(f"{ins.size} bytes, align {ins.b}")
    elif ins.op == ops.TRAP:
        parts.append(repr(ins.name))
    else:
        operands = [
            _operand_str(fn, x) for x in (ins.a, ins.b, ins.c) if x is not None]
        if operands:
            parts.append(", ".join(operands))
        if ins.op in (ops.TRUNC, ops.SEXT):
            parts.append(f"(size {ins.size})")
    text = " ".join(parts)
    if ins.safe:
        text += "   ; safe"
    if ins.comment:
        text += f"   ; {ins.comment}"
    return text


def print_function(fn: Function) -> str:
    lines = [f"define {fn.name}({', '.join(f'%r{i}' for i in range(len(fn.params)))}) {{"]
    for blk in fn.blocks:
        lines.append(f"{blk.name}:")
        for ins in blk.instrs:
            lines.append(f"  {format_instr(fn, ins)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    chunks = [f"; module {module.name}"]
    for var in module.globals.values():
        const = " const" if var.is_const else ""
        chunks.append(f"@{var.name} = global {var.size} bytes{const}")
    for fn in module.functions.values():
        chunks.append(print_function(fn))
    return "\n\n".join(chunks)
