"""The reproduction's compiler IR (the analogue of LLVM IR in the paper)."""

from repro.ir import instructions as ops
from repro.ir.builder import IRBuilder
from repro.ir.instructions import FuncRef, GlobalRef, Instr, const_slot, is_reg, slot_of
from repro.ir.module import Block, Function, GlobalVar, Module
from repro.ir.printer import format_instr, print_function, print_module
from repro.ir.verifier import verify_module

__all__ = [
    "ops",
    "Instr",
    "GlobalRef",
    "FuncRef",
    "const_slot",
    "slot_of",
    "is_reg",
    "Block",
    "Function",
    "GlobalVar",
    "Module",
    "IRBuilder",
    "verify_module",
    "format_instr",
    "print_function",
    "print_module",
]
