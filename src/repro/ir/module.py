"""IR containers: globals, basic blocks, functions, modules.

A :class:`Function` is built as named basic blocks and *finalized* into a
flat instruction array with branch targets resolved to indices — the form
the interpreter executes.  Passes run on the block form and re-finalize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import IRVerifyError
from repro.ir.instructions import (
    ALLOCA,
    Instr,
    BR,
    JMP,
    OP_NAMES,
)
from repro.memory.layout import align_up


class GlobalVar:
    """A module-level variable (or string literal).

    ``array_elem`` records the element size when the global is an array —
    the safe-access analysis uses it to prove constant indices in bounds.
    """

    __slots__ = ("name", "size", "init", "align", "is_const", "array_elem",
                 "relocs")

    def __init__(self, name: str, size: int, init: bytes = b"",
                 align: int = 8, is_const: bool = False,
                 array_elem: int = 0, relocs=()):
        if len(init) > size:
            raise IRVerifyError(f"global {name}: initializer larger than size")
        self.name = name
        self.size = size
        self.init = init
        self.align = align
        self.is_const = is_const
        self.array_elem = array_elem
        #: Pointer fixups: (byte offset, GlobalRef-or-FuncRef) pairs the
        #: loader resolves after layout (u64 slots; tagged under SGXBounds).
        self.relocs = list(relocs)

    def __repr__(self) -> str:
        return f"GlobalVar({self.name!r}, size={self.size})"


class Block:
    """A named basic block: straight-line instructions + one terminator."""

    __slots__ = ("name", "instrs")

    def __init__(self, name: str):
        self.name = name
        self.instrs: List[Instr] = []

    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None


class Function:
    """One IR function.

    After :meth:`finalize`:

    * ``code`` is the flat instruction list (branch targets = indices);
    * ``frame_size`` is the stack frame in bytes, every ``ALLOCA``'s frame
      offset stored in its ``c`` field;
    * ``block_index`` maps block names to their first instruction index.
    """

    RET_SLOT = 8   # bytes reserved at the frame top for the return address

    def __init__(self, name: str, params: Sequence[str] = (),
                 varargs: bool = False):
        self.name = name
        self.params = list(params)       # parameter register names
        self.varargs = varargs
        self.blocks: List[Block] = []
        self.consts: List[object] = []
        self._const_index: Dict[object, int] = {}
        self.nregs = len(params)
        self.reg_names: List[str] = list(params)
        # Populated by finalize():
        self.code: List[Instr] = []
        self.frame_size = 0
        self.block_index: Dict[str, int] = {}
        # Predecode metadata: indices that start a basic block, i.e. the
        # only code positions a branch may land on.  The fast path's
        # superinstruction fuser refuses to swallow these as pair tails.
        self.block_starts: frozenset = frozenset()
        self.finalized = False

    # -- construction helpers -------------------------------------------
    def new_reg(self, hint: str = "t") -> int:
        index = self.nregs
        self.nregs += 1
        self.reg_names.append(f"{hint}{index}")
        return index

    def intern_const(self, value: object) -> int:
        """Operand encoding for constant ``value`` (pooled).

        The pool key includes the Python type: ``1`` and ``1.0`` compare
        equal but are distinct constants (int vs float semantics).
        """
        try:
            key = (type(value).__name__, value)
            slot = self._const_index.get(key)
        except TypeError:                     # unhashable — don't pool
            key = None
            slot = None
        if slot is None:
            slot = len(self.consts)
            self.consts.append(value)
            if key is not None:
                self._const_index[key] = slot
        return -slot - 1

    def block(self, name: str) -> Block:
        blk = Block(name)
        self.blocks.append(blk)
        return blk

    def get_block(self, name: str) -> Block:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(f"{self.name}: no block {name!r}")

    # -- finalization -----------------------------------------------------
    def finalize(self) -> "Function":
        """Flatten blocks, resolve branch targets, lay out the frame."""
        code: List[Instr] = []
        index: Dict[str, int] = {}
        for blk in self.blocks:
            if blk.name in index:
                raise IRVerifyError(f"{self.name}: duplicate block {blk.name!r}")
            index[blk.name] = len(code)
            code.extend(blk.instrs)
        offset = 0
        for ins in code:
            if ins.op == ALLOCA:
                align = max(ins.b or 8, 1)
                offset = align_up(offset, align)
                ins.c = offset
                offset += ins.size
        # Locals sit below the return-address slot; overflowing a local
        # buffer upward therefore reaches the return address, like x86.
        self.frame_size = align_up(offset, 16) + self.RET_SLOT
        for ins in code:
            if ins.op in (BR, JMP):
                for attr in ("t1", "t2"):
                    target = getattr(ins, attr)
                    if isinstance(target, str):
                        if target not in index:
                            raise IRVerifyError(
                                f"{self.name}: branch to unknown block {target!r}")
                        setattr(ins, attr, index[target])
        self.code = code
        self.block_index = index
        self.block_starts = frozenset(index.values())
        self.finalized = True
        return self

    def clone(self) -> "Function":
        """Deep-enough copy for passes: new blocks/instrs, shared consts
        values (the pool list itself is copied)."""
        other = Function(self.name, self.params, self.varargs)
        other.nregs = self.nregs
        other.reg_names = list(self.reg_names)
        other.consts = list(self.consts)
        other._const_index = dict(self._const_index)
        for blk in self.blocks:
            new = other.block(blk.name)
            new.instrs = [ins.copy() for ins in blk.instrs]
        return other

    def __repr__(self) -> str:
        return f"Function({self.name!r}, blocks={len(self.blocks)})"


class Module:
    """A linked program-to-be: functions + globals.

    ``meta`` carries pass-to-loader facts — e.g. the SGXBounds pass sets
    ``meta['scheme'] = 'sgxbounds'`` so the loader emits tagged global
    addresses and writes lower-bound metadata words.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}
        self.meta: Dict[str, object] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRVerifyError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise IRVerifyError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def add_string(self, text: bytes, name: Optional[str] = None) -> GlobalVar:
        """Intern a NUL-terminated string literal as a constant global."""
        if name is None:
            name = f".str{len(self.globals)}"
        data = text + b"\x00"
        return self.add_global(GlobalVar(name, len(data), data, align=1,
                                         is_const=True, array_elem=1))

    def finalize(self) -> "Module":
        for fn in self.functions.values():
            fn.finalize()
        return self

    def clone(self) -> "Module":
        other = Module(self.name)
        other.meta = dict(self.meta)
        other.globals = dict(self.globals)   # GlobalVars are immutable enough
        for name, fn in self.functions.items():
            other.functions[name] = fn.clone()
        return other

    def stats(self) -> Dict[str, int]:
        return {
            "functions": len(self.functions),
            "globals": len(self.globals),
            "instructions": sum(
                len(b.instrs) for f in self.functions.values() for b in f.blocks),
        }

    def __repr__(self) -> str:
        return (f"Module({self.name!r}, {len(self.functions)} fns, "
                f"{len(self.globals)} globals)")


def opcode_name(op: int) -> str:
    return OP_NAMES.get(op, f"op{op}")
