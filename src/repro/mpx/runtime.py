"""Intel MPX runtime model, adapted for enclaves as in paper §5.2.

The mechanics that matter for the reproduction:

* bounds live with the *register* holding the pointer (the VM propagates
  them through MOV/GEP/calls, modelling bounds registers + compiler
  tracking);
* whenever a pointer travels through memory, its bounds travel through the
  Bounds Directory → Bounds Table structure *in simulated enclave memory*
  (``bndldx``/``bndstx``), costing real loads/stores — this is the traffic
  and footprint that melts MPX inside enclaves;
* Bounds Tables are allocated on demand.  In the paper the BT-allocation
  logic moves from the kernel into the enclave (§5.2); here it lives in
  this runtime, the same effect.  Each BT reserves 4x the address range it
  covers (32-byte entry per 8-byte pointer slot — the 64-bit-mode ratio),
  so pointer-dense workloads blow up exactly like SQLite/dedup in the
  paper, up to ``OutOfMemory`` against the enclave commit limit.

Scaling: the paper's 32-bit layout uses 4 MiB tables covering 1 MiB of
address space.  Our workloads run at roughly 1/4 scale of that, so the
default ``bt_cover_shift`` of 18 gives 1 MiB tables covering 256 KiB —
the same 4:1 ratio at simulation scale (configurable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import BoundsViolation
from repro.memory.layout import ADDRESS_MASK
from repro.vm import policy as violation_policy
from repro.vm.scheme import SchemeRuntime

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.ir.module import Module
    from repro.vm.machine import VM

#: Bytes per bounds-table entry (lower, upper, reserved) — 64-bit layout.
BT_ENTRY_SIZE = 32
#: Bytes of pointer-slot granularity (one entry per 8-byte slot).
SLOT_SIZE = 8


class MPXScheme(SchemeRuntime):
    """Intel MPX-style protection."""

    name = "mpx"
    uses_register_bounds = True
    # MPX emits a BNDCL+BNDCU pair before every unsafe access; the fast
    # path may collapse the triple into one superinstruction.  The fused
    # handler advances PerfCounters check by check, so a violation raised
    # mid-triple carries the exact reference timestamp.
    fastpath_fusion = ("cmp_br", "gep_load", "gep_store", "bnd_access")

    def __init__(self, optimize_safe: bool = True, bt_cover_shift: int = 18,
                 policy: str = violation_policy.ABORT):
        super().__init__(policy=policy)
        self.optimize_safe = optimize_safe
        self.bt_cover_shift = bt_cover_shift
        self.bt_size = ((1 << bt_cover_shift) // SLOT_SIZE) * BT_ENTRY_SIZE
        self.bd_entries = (1 << 32) >> bt_cover_shift
        self.bd_base = 0
        self.bounds_tables = 0
        self._bt_cache: Dict[int, int] = {}

    # -- compile-time ----------------------------------------------------
    def instrument(self, module: "Module") -> "Module":
        from repro.passes.instrument_mpx import run_mpx_instrumentation
        from repro.passes.safe_access import run_safe_access
        module = module.clone()
        if self.optimize_safe:
            run_safe_access(module)
        return run_mpx_instrumentation(module)

    # -- lifecycle ----------------------------------------------------------
    def attach(self, vm: "VM") -> None:
        super().attach(vm)
        # Bounds Directory, allocated once at startup (32 KiB at the
        # paper's scale; ours scales with bt_cover_shift).
        self.bd_base = vm.enclave.heap.mmap.alloc(self.bd_entries * 8,
                                                  "mpx-bd")

    # -- BD/BT translation ------------------------------------------------------
    def _bt_for(self, vm: "VM", slot: int, create: bool) -> Optional[int]:
        region = slot >> self.bt_cover_shift
        cached = self._bt_cache.get(region)
        bd_entry = self.bd_base + region * 8
        if cached is not None:
            vm.counters.loads += 1    # BD lookup still touches memory
            return cached
        table = vm.space.read_u64(bd_entry)
        if table == 0:
            if not create:
                return None
            # On-demand BT allocation — inside the enclave (§5.2).
            table = vm.enclave.heap.mmap.alloc(self.bt_size, "mpx-bt")
            vm.space.write_u64(bd_entry, table)
            self.bounds_tables += 1
            vm.charge(200)    # exception + in-enclave allocation path
            if vm.telemetry is not None:
                registry = vm.telemetry.registry
                registry.counter("mpx.bounds_tables_allocated").inc()
                registry.gauge("mpx.bt_reserved_bytes").set(
                    self.bounds_tables * self.bt_size)
        self._bt_cache[region] = table
        return table

    def _entry_address(self, table: int, slot: int) -> int:
        index = (slot & ((1 << self.bt_cover_shift) - 1)) // SLOT_SIZE
        return table + index * BT_ENTRY_SIZE

    def bt_load(self, vm: "VM", slot: int) -> Optional[Tuple[int, int]]:
        table = self._bt_for(vm, slot, create=False)
        if table is None:
            return None
        entry = self._entry_address(table, slot)
        lower = vm.space.read_u64(entry)
        upper = vm.space.read_u64(entry + 8)
        if lower == 0 and upper == 0:
            return None    # INIT bounds: allow everything
        return (lower, upper)

    def bt_store(self, vm: "VM", slot: int,
                 bounds: Optional[Tuple[int, int]]) -> None:
        table = self._bt_for(vm, slot, create=True)
        entry = self._entry_address(table, slot)
        if bounds is None:
            vm.space.write_u64(entry, 0)
            vm.space.write_u64(entry + 8, 0)
        else:
            vm.space.write_u64(entry, bounds[0])
            vm.space.write_u64(entry + 8, bounds[1])

    # -- allocation --------------------------------------------------------------
    def alloc_bounds(self, ptr: int, size: int) -> Optional[Tuple[int, int]]:
        base = ptr & ADDRESS_MASK
        return (base, base + max(int(size), 1))

    # -- libc wrappers ---------------------------------------------------------------
    def libc_range(self, vm: "VM", ptr: int, size: int, is_write: bool,
                   arg_bounds=None) -> Tuple[int, int]:
        address = ptr & ADDRESS_MASK
        if arg_bounds is not None:
            lower, upper = arg_bounds
            vm.charge(2)    # bndcl + bndcu in the wrapper
            vm.counters.bounds_checks += 2
            if address < lower or address + size > upper:
                self.handle_violation(vm, BoundsViolation(
                    self.name, address, lower, upper, size,
                    access="write" if is_write else "read",
                    what="libc wrapper"))
                if self.policy != violation_policy.LOG_AND_CONTINUE:
                    # No overlay to redirect into: clamp to the register
                    # bounds so the wrapper stays inside the object.
                    return (address, max(0, min(address + size, upper)
                                         - max(address, lower)))
        return (address, size)

    # -- reporting -----------------------------------------------------------------------
    def memory_overhead_report(self, vm: "VM") -> Dict[str, int]:
        return {
            "bounds_tables": self.bounds_tables,
            "bt_reserved_bytes": self.bounds_tables * self.bt_size,
            "bd_reserved_bytes": self.bd_entries * 8,
            "violations": self.violations,
        }
