"""Intel MPX baseline (hardware bounds registers + bounds tables)."""

from repro.mpx.runtime import BT_ENTRY_SIZE, MPXScheme, SLOT_SIZE

__all__ = ["MPXScheme", "BT_ENTRY_SIZE", "SLOT_SIZE"]
